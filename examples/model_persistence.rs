//! Train → save → load → predict: the deployment loop a downstream user
//! runs. Also shows corpus/config JSON round-trips for interchange with
//! other tooling.
//!
//! ```sh
//! cargo run --release -p fieldswap-integration --example model_persistence
//! ```

use fieldswap_core::{augment_corpus, FieldSwapConfig, PairStrategy};
use fieldswap_datagen::{generate, Domain};
use fieldswap_eval::evaluate;
use fieldswap_extract::{Extractor, Lexicon, TrainConfig};

fn main() {
    let dir = std::env::temp_dir().join("fieldswap-example");
    std::fs::create_dir_all(&dir).expect("temp dir");

    // --- Train an augmented extractor.
    let train = generate(Domain::Brokerage, 21, 30);
    let test = generate(Domain::Brokerage, 22, 50);
    let mut config = FieldSwapConfig::new(train.schema.len());
    for (name, phrases) in Domain::Brokerage.generator().phrase_bank() {
        let id = train.schema.field_id(&name).unwrap();
        config.set_phrases(id, phrases);
    }
    config.set_pairs(PairStrategy::TypeToType.build(&train.schema, &config));

    // The FieldSwap configuration is a reviewable JSON artifact.
    let config_path = dir.join("fieldswap-config.json");
    std::fs::write(&config_path, config.to_json()).expect("write config");
    let config =
        FieldSwapConfig::from_json(&std::fs::read_to_string(&config_path).expect("read config"))
            .expect("parse config");
    println!("config round-tripped through {}", config_path.display());

    let (synths, _) = augment_corpus(&train, &config);
    let lexicon = Lexicon::pretrain(&generate(Domain::Invoices, 23, 150).documents);
    let extractor = Extractor::train_on(
        &train.schema,
        lexicon,
        &train,
        &synths,
        &TrainConfig {
            epochs: 5,
            synth_ratio: 2.0,
            seed: 3,
            ..TrainConfig::default()
        },
    );

    // --- Save the trained model.
    let model_path = dir.join("brokerage.fsmodel");
    std::fs::write(&model_path, extractor.to_bytes().expect("serialize model"))
        .expect("write model");
    let size = std::fs::metadata(&model_path).unwrap().len();
    println!(
        "saved model: {} ({:.1} MiB)",
        model_path.display(),
        size as f64 / (1 << 20) as f64
    );

    // --- Load it back and verify identical behavior.
    let bytes = std::fs::read(&model_path).expect("read model");
    let restored = Extractor::from_bytes(&bytes).expect("parse model");
    let before = evaluate(&extractor, &test);
    let after = evaluate(&restored, &test);
    println!(
        "macro-F1 before save: {:.2}   after load: {:.2}",
        before.macro_f1(),
        after.macro_f1()
    );
    assert_eq!(before, after, "round trip must be exact");
    println!("round trip exact ✓");
}
