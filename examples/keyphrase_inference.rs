//! Automatic key-phrase inference (paper Section II-A): pre-train the
//! candidate-based importance model on out-of-domain invoices, transfer
//! it to a small in-domain Earnings sample, and print the ranked key
//! phrases it infers per field next to the generator's oracle phrase
//! banks.
//!
//! ```sh
//! cargo run --release -p fieldswap-integration --example keyphrase_inference
//! ```

use fieldswap_datagen::{generate, Domain};
use fieldswap_keyphrase::{infer_key_phrases, ImportanceModel, InferenceConfig, ModelConfig};

fn main() {
    // 1. Pre-train the importance model on out-of-domain invoices
    //    (Section IV-B: the model never sees the target domain).
    let invoices = generate(Domain::Invoices, 11, 150);
    let mut model = ImportanceModel::new(
        ModelConfig {
            neighbors: 24,
            epochs: 2,
            ..ModelConfig::default()
        },
        invoices.schema.len(),
        7,
    );
    println!(
        "pre-training the importance model on {} invoices...",
        invoices.len()
    );
    let report = model.train(&invoices, 3);
    println!(
        "  loss {:.3} -> {:.3} over {} candidates/epoch\n",
        report.first_epoch_loss, report.last_epoch_loss, report.examples_per_epoch
    );

    // 2. A small in-domain training sample — all the labeled data we have.
    let sample = generate(Domain::Earnings, 21, 30);

    // 3. Infer key phrases: neighbor importance scores -> sparsemax ->
    //    OCR-line expansion -> noisy-or aggregation -> theta/top-k.
    let ranked = infer_key_phrases(&model, &sample, &InferenceConfig::default());

    // 4. Compare with the oracle banks the generator actually used.
    let bank = Domain::Earnings.generator().phrase_bank();
    println!(
        "{:<26} {:<40} oracle bank",
        "field", "inferred (importance)"
    );
    println!("{}", "-".repeat(110));
    for (name, oracle) in &bank {
        let id = sample.schema.field_id(name).unwrap();
        let inferred: Vec<String> = ranked[id as usize]
            .iter()
            .map(|r| format!("{} ({:.2})", r.phrase, r.importance))
            .collect();
        println!(
            "{:<26} {:<40} {}",
            name,
            if inferred.is_empty() {
                "-".to_string()
            } else {
                inferred.join(", ")
            },
            if oracle.is_empty() {
                "(no key phrase)".to_string()
            } else {
                oracle.join(" / ")
            }
        );
    }
    println!("\nNote: fields like employer_name have no key phrase by construction; the");
    println!("ground-truth-exclusion rule plus the theta filter keep them (mostly) empty,");
    println!("and a human expert would exclude them from FieldSwap entirely (Section III).");
}
