//! Quickstart: generate a small labeled corpus, configure FieldSwap with
//! hand-written key phrases, augment, train the extraction backbone, and
//! compare against the unaugmented baseline.
//!
//! ```sh
//! cargo run --release -p fieldswap-integration --example quickstart
//! ```

use fieldswap_core::{augment_corpus, FieldSwapConfig, PairStrategy};
use fieldswap_datagen::{generate, Domain};
use fieldswap_eval::evaluate;
use fieldswap_extract::{Extractor, Lexicon, TrainConfig};

fn main() {
    // 1. A tiny training set (the data-scarcity regime FieldSwap targets)
    //    and a hold-out test set from the same document type.
    let train = generate(Domain::Earnings, 1, 15);
    let test = generate(Domain::Earnings, 2, 100);
    println!(
        "training on {} paystubs, evaluating on {} ({} fields)",
        train.len(),
        test.len(),
        train.schema.len()
    );

    // 2. Configure FieldSwap: key phrases per field plus the pair
    //    strategy. Here a human supplies phrases (see the
    //    `keyphrase_inference` example for the automatic path).
    let mut config = FieldSwapConfig::new(train.schema.len());
    for (name, phrases) in Domain::Earnings.generator().phrase_bank() {
        let id = train.schema.field_id(&name).expect("schema field");
        config.set_phrases(id, phrases);
    }
    config.set_pairs(PairStrategy::TypeToType.build(&train.schema, &config));

    // 3. Augment. One synthetic document per (document, source->target
    //    pair, target phrase); unchanged-text synthetics are discarded.
    let (synthetics, stats) = augment_corpus(&train, &config);
    println!(
        "FieldSwap generated {} synthetic documents ({} discarded as unchanged)",
        stats.generated, stats.discarded_unchanged
    );

    // 4. Train twice with the same update budget: baseline vs augmented.
    let lexicon = Lexicon::pretrain(&generate(Domain::Invoices, 3, 200).documents);
    let cfg = TrainConfig {
        epochs: 6,
        synth_ratio: 2.0,
        seed: 7,
        ..TrainConfig::default()
    };
    let baseline = Extractor::train_on(&train.schema, lexicon.clone(), &train, &[], &cfg);
    let augmented = Extractor::train_on(&train.schema, lexicon, &train, &synthetics, &cfg);

    // 5. Evaluate end to end.
    let base = evaluate(&baseline, &test);
    let aug = evaluate(&augmented, &test);
    println!("\n                 macro-F1   micro-F1");
    println!(
        "baseline          {:>6.2}     {:>6.2}",
        base.macro_f1(),
        base.micro_f1()
    );
    println!(
        "with FieldSwap    {:>6.2}     {:>6.2}",
        aug.macro_f1(),
        aug.micro_f1()
    );
    println!(
        "delta             {:>+6.2}     {:>+6.2}",
        aug.macro_f1() - base.macro_f1(),
        aug.micro_f1() - base.micro_f1()
    );
}
