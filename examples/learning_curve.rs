//! A miniature Fig.-4 learning curve on one domain: baseline vs automatic
//! FieldSwap (type-to-type) vs human expert across training-set sizes,
//! using the experiment harness end to end.
//!
//! ```sh
//! cargo run --release -p fieldswap-integration --example learning_curve
//! ```

use fieldswap_datagen::Domain;
use fieldswap_eval::{Arm, Harness, HarnessOptions};

fn main() {
    let mut opts = HarnessOptions::quick();
    opts.test_cap = 100;
    // jobs = 0 (all cores): the whole curve runs as one parallel grid,
    // with results identical to a serial run.
    let harness = Harness::new(opts);
    let domain = Domain::Earnings;

    println!("learning curve on {} (quick protocol)\n", domain.name());
    println!(
        "{:<6} {:<30} {:>9} {:>9} {:>11}",
        "docs", "arm", "macro-F1", "micro-F1", "synthetics"
    );
    println!("{}", "-".repeat(70));
    let mut points = Vec::new();
    for size in [10usize, 50] {
        for arm in [Arm::Baseline, Arm::AutoTypeToType, Arm::HumanExpert] {
            points.push((domain, size, arm));
        }
    }
    let summaries = harness.run_grid(&points);
    for chunk in summaries.chunks(3) {
        for p in chunk {
            println!(
                "{:<6} {:<30} {:>9.2} {:>9.2} {:>11.0}",
                p.size, p.arm, p.macro_f1, p.micro_f1, p.synthetics
            );
        }
        println!();
    }
    println!("expected shape (paper Fig. 4): FieldSwap >= baseline, biggest gains at 10 docs,");
    println!("human expert >= automatic.");
}
