//! The paper's Fig. 1, as running code: a paystub snippet with a labeled
//! `current.salary` instance anchored by the phrase "Base Salary", from
//! which FieldSwap generates (a) a same-field synthetic using another
//! salary phrase and (b) a cross-field synthetic relabeled as
//! `current.overtime`.
//!
//! ```sh
//! cargo run --release -p fieldswap-integration --example paystub_augmentation
//! ```

use fieldswap_core::{augment_document, FieldSwapConfig};
use fieldswap_docmodel::{BBox, Document, DocumentBuilder, EntitySpan, Token};

fn build_fig1_snippet() -> Document {
    let mut b = DocumentBuilder::new("fig1-paystub");
    let put = |text: &str, x: f32, y: f32, b: &mut DocumentBuilder| {
        let w = 8.0 * text.len() as f32;
        b.push_token(Token::new(text, BBox::new(x, y, x + w, y + 12.0)));
    };
    // Row 1: "Base Salary     $3,308.62"   <- current.salary (field 0)
    put("Base", 10.0, 10.0, &mut b);
    put("Salary", 55.0, 10.0, &mut b);
    put("$3,308.62", 300.0, 10.0, &mut b);
    // Row 2: "Bonus           $500.00"     <- current.bonus (field 2)
    put("Bonus", 10.0, 40.0, &mut b);
    put("$500.00", 300.0, 40.0, &mut b);
    b.push_annotation(EntitySpan::new(0, 2, 3));
    b.push_annotation(EntitySpan::new(2, 4, 5));
    let mut d = b.build();
    fieldswap_ocr::detect_lines(&mut d);
    d
}

fn render(doc: &Document) -> String {
    let mut out = String::new();
    for line in &doc.lines {
        for &t in &line.tokens {
            let text = &doc.tokens[t as usize].text;
            let label = doc
                .annotations
                .iter()
                .find(|a| a.contains(t))
                .map(|a| format!("[{}]", field_name(a.field)))
                .unwrap_or_default();
            out.push_str(&format!("{text}{label} "));
        }
        out.push('\n');
    }
    out
}

fn field_name(f: u16) -> &'static str {
    ["current.salary", "current.overtime", "current.bonus"][f as usize]
}

fn main() {
    let doc = build_fig1_snippet();
    println!("original document:\n{}", render(&doc));

    // Key phrases: salary has two synonyms, overtime one (as in Fig. 1).
    let mut config = FieldSwapConfig::new(3);
    config.set_phrases(0, vec!["Base Salary".into(), "Base".into()]);
    config.set_phrases(1, vec!["Overtime".into()]);
    config.set_phrases(2, vec!["Bonus".into()]);

    // Fig. 1 bottom-left: same-field swap (S = T = current.salary).
    config.set_pairs(vec![(0, 0)]);
    let (same_field, _) = augment_document(&doc, &config);
    println!("same-field swap (label kept as current.salary):");
    for s in &same_field {
        println!("{}", render(s));
    }

    // Fig. 1 bottom-right: cross-field swap to current.overtime; the
    // instance is relabeled.
    config.set_pairs(vec![(0, 1)]);
    let (cross_field, _) = augment_document(&doc, &config);
    println!("cross-field swap (relabeled current.overtime):");
    for s in &cross_field {
        println!("{}", render(s));
    }

    // The contradictory case: swapping bonus -> salary using the phrase
    // "Bonus" for a field that also reads "Bonus" would leave the text
    // unchanged; the engine discards it.
    let mut same_phrase = FieldSwapConfig::new(3);
    same_phrase.set_phrases(0, vec!["Bonus".into()]); // deliberately wrong
    same_phrase.set_phrases(2, vec!["Bonus".into()]);
    same_phrase.set_pairs(vec![(2, 0)]);
    let (bad, stats) = augment_document(&doc, &same_phrase);
    println!(
        "same-phrase swap: {} synthetics, {} discarded as unchanged (the paper's guard)",
        bad.len(),
        stats.discarded_unchanged
    );
}
