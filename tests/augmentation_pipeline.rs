//! Cross-crate properties of the FieldSwap engine against generated
//! corpora: counting identities, the discard rule, and strategy ordering.

use fieldswap_core::{augment_corpus, augment_document, FieldSwapConfig, PairStrategy};
use fieldswap_datagen::{generate, Domain};

fn oracle_config(domain: Domain, schema: &fieldswap_docmodel::Schema) -> FieldSwapConfig {
    let mut config = FieldSwapConfig::new(schema.len());
    for (name, phrases) in domain.generator().phrase_bank() {
        let id = schema.field_id(&name).unwrap();
        config.set_phrases(id, phrases);
    }
    config
}

#[test]
fn type_to_type_generates_strictly_more_than_field_to_field() {
    for domain in [Domain::Earnings, Domain::Brokerage, Domain::FccForms] {
        let corpus = generate(domain, 71, 20);
        let mut f2f = oracle_config(domain, &corpus.schema);
        f2f.set_pairs(PairStrategy::FieldToField.build(&corpus.schema, &f2f));
        let mut t2t = oracle_config(domain, &corpus.schema);
        t2t.set_pairs(PairStrategy::TypeToType.build(&corpus.schema, &t2t));
        let (a, _) = augment_corpus(&corpus, &f2f);
        let (b, _) = augment_corpus(&corpus, &t2t);
        assert!(
            b.len() > a.len(),
            "{domain:?}: t2t {} should exceed f2f {}",
            b.len(),
            a.len()
        );
    }
}

#[test]
fn all_to_all_generates_at_least_as_many_as_type_to_type() {
    let corpus = generate(Domain::FccForms, 72, 15);
    let mut t2t = oracle_config(Domain::FccForms, &corpus.schema);
    t2t.set_pairs(PairStrategy::TypeToType.build(&corpus.schema, &t2t));
    let mut a2a = oracle_config(Domain::FccForms, &corpus.schema);
    a2a.set_pairs(PairStrategy::AllToAll.build(&corpus.schema, &a2a));
    let (b, _) = augment_corpus(&corpus, &t2t);
    let (c, _) = augment_corpus(&corpus, &a2a);
    assert!(c.len() >= b.len());
}

#[test]
fn stats_match_output_exactly() {
    let corpus = generate(Domain::Earnings, 73, 12);
    let mut config = oracle_config(Domain::Earnings, &corpus.schema);
    config.set_pairs(PairStrategy::TypeToType.build(&corpus.schema, &config));
    let (synths, stats) = augment_corpus(&corpus, &config);
    assert_eq!(synths.len(), stats.generated);
    // Contradictory pairs exist in Earnings (shared current/YTD phrases),
    // so the discard rule must have fired.
    assert!(
        stats.discarded_unchanged > 0,
        "expected same-phrase discards on Earnings"
    );
}

#[test]
fn synthetic_ids_are_unique() {
    let corpus = generate(Domain::LoanPayments, 74, 10);
    let mut config = oracle_config(Domain::LoanPayments, &corpus.schema);
    config.set_pairs(PairStrategy::TypeToType.build(&corpus.schema, &config));
    let (synths, _) = augment_corpus(&corpus, &config);
    let ids: std::collections::HashSet<&str> = synths.iter().map(|s| s.id.as_str()).collect();
    assert_eq!(ids.len(), synths.len());
}

#[test]
fn augmentation_is_deterministic() {
    let corpus = generate(Domain::Brokerage, 75, 10);
    let mut config = oracle_config(Domain::Brokerage, &corpus.schema);
    config.set_pairs(PairStrategy::TypeToType.build(&corpus.schema, &config));
    let (a, sa) = augment_corpus(&corpus, &config);
    let (b, sb) = augment_corpus(&corpus, &config);
    assert_eq!(a, b);
    assert_eq!(sa, sb);
}

#[test]
fn excluding_a_field_removes_its_synthetics() {
    let corpus = generate(Domain::Earnings, 76, 15);
    let schema = &corpus.schema;
    let mut config = oracle_config(Domain::Earnings, schema);
    config.set_pairs(PairStrategy::TypeToType.build(schema, &config));
    let net = schema.field_id("net_pay").unwrap();
    let (before, _) = augment_corpus(&corpus, &config);
    let had_net = before
        .iter()
        .any(|s| s.annotations.iter().any(|a| a.field == net));
    assert!(had_net);

    config.exclude_field(net);
    let (after, _) = augment_corpus(&corpus, &config);
    // No synthetic may have been *produced for* net_pay any more; net_pay
    // annotations may still appear as untouched co-labels of other swaps.
    assert!(after.len() < before.len());
    assert!(after.iter().all(|s| !s.id.contains(&format!("-{net}p"))));
}

#[test]
fn document_without_phrase_occurrence_yields_nothing() {
    // A document whose source-field phrase was OCR-corrupted beyond
    // recognition generates no synthetics for that pair.
    let corpus = generate(Domain::Earnings, 77, 5);
    let doc = &corpus.documents[0];
    let mut config = FieldSwapConfig::new(corpus.schema.len());
    let net = corpus.schema.field_id("net_pay").unwrap();
    config.set_phrases(net, vec!["Completely Absent Phrase".into()]);
    config.set_pairs(vec![(net, net)]);
    let (synths, stats) = augment_document(doc, &config);
    assert!(synths.is_empty());
    assert_eq!(stats.generated, 0);
}
