//! Robustness of the key-phrase and augmentation pipeline to OCR noise —
//! the failure mode the paper's noisy-or aggregation (Eq. 1) is designed
//! to tolerate (Section II-A1/II-A4).

use fieldswap_core::{augment_corpus, FieldSwapConfig, PairStrategy};
use fieldswap_datagen::{Domain, GenOptions};
use fieldswap_ocr::NoiseParams;

fn corpus_with_noise(noise: NoiseParams, n: usize) -> fieldswap_docmodel::Corpus {
    let opts = GenOptions {
        noise,
        ..GenOptions::default()
    };
    Domain::Earnings.generator().generate(101, n, &opts)
}

fn oracle_config(schema: &fieldswap_docmodel::Schema) -> FieldSwapConfig {
    let mut config = FieldSwapConfig::new(schema.len());
    for (name, phrases) in Domain::Earnings.generator().phrase_bank() {
        let id = schema.field_id(&name).unwrap();
        config.set_phrases(id, phrases);
    }
    config.set_pairs(PairStrategy::TypeToType.build(schema, &config));
    config
}

#[test]
fn mild_noise_degrades_synthetic_counts_gracefully() {
    let clean = corpus_with_noise(NoiseParams::default(), 25);
    let mild = corpus_with_noise(NoiseParams::mild(), 25);
    let config = oracle_config(&clean.schema);
    let (s_clean, _) = augment_corpus(&clean, &config);
    let (s_mild, _) = augment_corpus(&mild, &config);
    assert!(!s_clean.is_empty());
    // ~1% token noise should cost only a small fraction of synthetics:
    // corrupted phrases no longer match.
    assert!(
        s_mild.len() as f64 > s_clean.len() as f64 * 0.7,
        "mild noise wiped out augmentation: {} -> {}",
        s_clean.len(),
        s_mild.len()
    );
    assert!(s_mild.len() <= s_clean.len());
}

#[test]
fn harsh_noise_still_produces_valid_synthetics() {
    let harsh = corpus_with_noise(NoiseParams::harsh(), 25);
    let config = oracle_config(&harsh.schema);
    let (synths, _) = augment_corpus(&harsh, &config);
    for s in &synths {
        assert!(s.validate().is_ok());
    }
}

#[test]
fn noise_only_affects_text_never_structure() {
    let clean = corpus_with_noise(NoiseParams::default(), 10);
    let noisy = corpus_with_noise(NoiseParams::harsh(), 10);
    for (c, n) in clean.documents.iter().zip(&noisy.documents) {
        assert_eq!(c.tokens.len(), n.tokens.len());
        assert_eq!(c.annotations, n.annotations);
        for (ct, nt) in c.tokens.iter().zip(&n.tokens) {
            assert_eq!(ct.bbox, nt.bbox);
        }
    }
}

#[test]
fn extraction_survives_mild_noise() {
    use fieldswap_eval::evaluate;
    use fieldswap_extract::{Extractor, Lexicon, TrainConfig};
    let train = corpus_with_noise(NoiseParams::mild(), 40);
    let test = {
        let opts = GenOptions {
            noise: NoiseParams::mild(),
            ..GenOptions::default()
        };
        Domain::Earnings.generator().generate(102, 25, &opts)
    };
    let ex = Extractor::train_on(
        &train.schema,
        Lexicon::pretrain(&train.documents),
        &train,
        &[],
        &TrainConfig {
            epochs: 3,
            synth_ratio: 0.0,
            seed: 1,
            ..TrainConfig::default()
        },
    );
    let r = evaluate(&ex, &test);
    assert!(
        r.micro_f1() > 25.0,
        "mild OCR noise should not break extraction: {:.1}",
        r.micro_f1()
    );
}
