//! Integration coverage of the future-work extensions: name-derived
//! phrases, value swapping, cross-domain swapping, and model
//! serialization in a full train → save → load → predict flow.

use fieldswap_core::{
    apply_value_swap_all, augment_corpus, augment_cross_domain, cross_pairs_by_type,
    CrossDomainSpec, FieldSwapConfig, PairStrategy, ValueBank,
};
use fieldswap_datagen::{generate, Domain};
use fieldswap_extract::{Extractor, Lexicon, TrainConfig};
use fieldswap_keyphrase::config_from_schema;

#[test]
fn name_derived_config_generates_synthetics_on_every_domain() {
    for domain in Domain::EVAL {
        let corpus = generate(domain, 111, 15);
        let mut config = config_from_schema(&corpus.schema);
        config.set_pairs(PairStrategy::TypeToType.build(&corpus.schema, &config));
        let (synths, _) = augment_corpus(&corpus, &config);
        // FARA's phrase-less/one-off fields may produce few, but every
        // domain must produce something from names alone.
        assert!(!synths.is_empty(), "{domain:?}: zero synthetics from names");
        for s in synths.iter().take(10) {
            assert!(s.validate().is_ok());
        }
    }
}

#[test]
fn value_swapped_synthetics_use_observed_values() {
    let corpus = generate(Domain::Earnings, 112, 12);
    let mut config = FieldSwapConfig::new(corpus.schema.len());
    for (name, phrases) in Domain::Earnings.generator().phrase_bank() {
        let id = corpus.schema.field_id(&name).unwrap();
        config.set_phrases(id, phrases);
    }
    config.set_pairs(PairStrategy::TypeToType.build(&corpus.schema, &config));
    let (synths, _) = augment_corpus(&corpus, &config);
    let bank = ValueBank::collect(&corpus);

    // Every value in a swapped document must be one observed in the
    // original corpus for the same field.
    let mut originals: std::collections::HashMap<u16, std::collections::HashSet<String>> =
        std::collections::HashMap::new();
    for d in &corpus.documents {
        for a in &d.annotations {
            originals
                .entry(a.field)
                .or_default()
                .insert(d.span_text(a.start, a.end));
        }
    }
    for (k, s) in synths.iter().take(30).enumerate() {
        let swapped = apply_value_swap_all(s, &bank, k as u64);
        assert!(swapped.validate().is_ok());
        for a in &swapped.annotations {
            let text = swapped.span_text(a.start, a.end);
            assert!(
                originals
                    .get(&a.field)
                    .is_some_and(|set| set.contains(&text)),
                "field {} has unobserved value {:?}",
                a.field,
                text
            );
        }
    }
}

#[test]
fn cross_domain_synthetics_trainable() {
    // Cross-domain synthetics must at minimum be consumable by the
    // trainer without breaking anything.
    let invoices = generate(Domain::Invoices, 113, 15);
    let earnings = generate(Domain::Earnings, 114, 8);
    let mut src = FieldSwapConfig::new(invoices.schema.len());
    for (name, phrases) in Domain::Invoices.generator().phrase_bank() {
        let id = invoices.schema.field_id(&name).unwrap();
        src.set_phrases(id, phrases);
    }
    let tgt = config_from_schema(&earnings.schema);
    let pairs = cross_pairs_by_type(&invoices.schema, &earnings.schema, &src, &tgt);
    let (synths, stats) = augment_cross_domain(
        &invoices,
        &CrossDomainSpec {
            source_config: &src,
            target_config: &tgt,
            pairs,
        },
    );
    assert!(stats.generated > 0);
    let capped: Vec<_> = synths.into_iter().take(100).collect();
    let ex = Extractor::train_on(
        &earnings.schema,
        Lexicon::empty(),
        &earnings,
        &capped,
        &TrainConfig::tiny(),
    );
    // Predictions on earnings documents still valid.
    for d in &earnings.documents[..3] {
        for s in ex.predict(d) {
            assert!((s.field as usize) < earnings.schema.len());
        }
    }
}

#[test]
fn serialized_model_round_trip_end_to_end() {
    let train = generate(Domain::Brokerage, 115, 25);
    let test = generate(Domain::Brokerage, 116, 10);
    let lex = Lexicon::pretrain(&train.documents);
    let ex = Extractor::train_on(
        &train.schema,
        lex,
        &train,
        &[],
        &TrainConfig {
            epochs: 3,
            synth_ratio: 0.0,
            seed: 5,
            ..TrainConfig::default()
        },
    );
    let bytes = ex.to_bytes().expect("serialize");
    let restored = Extractor::from_bytes(&bytes).expect("round trip");
    for d in &test.documents {
        assert_eq!(ex.predict(d), restored.predict(d));
    }
}
