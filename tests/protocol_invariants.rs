//! Invariants of the experiment protocol (harness-level): determinism,
//! train/test separation, and metric sanity.

use fieldswap_datagen::{generate_paper_splits, Domain};
use fieldswap_eval::{Arm, Harness, HarnessOptions};

fn tiny_options(seed: u64) -> HarnessOptions {
    HarnessOptions {
        n_samples: 1,
        n_trials: 1,
        pretrain_docs: 25,
        lexicon_docs: 40,
        neighbors: 10,
        test_cap: 30,
        epochs: 2,
        synth_ratio: 1.0,
        synthetic_cap: 150,
        seed,
        jobs: 1,
        train_jobs: 1,
        sanitize: true,
        quantized: false,
    }
}

#[test]
fn train_pool_and_test_set_are_disjoint() {
    for domain in [Domain::Fara, Domain::Brokerage] {
        let (pool, test) = generate_paper_splits(domain, 91);
        let pool_ids: std::collections::HashSet<&str> =
            pool.documents.iter().map(|d| d.id.as_str()).collect();
        // Ids collide by construction (same naming scheme), so compare
        // content: no test document may be byte-identical to a pool one.
        let mut identical = 0;
        for t in &test.documents {
            if pool
                .documents
                .iter()
                .any(|p| p.tokens == t.tokens && p.annotations == t.annotations)
            {
                identical += 1;
            }
        }
        assert_eq!(identical, 0, "{domain:?}: test leaked into pool");
        assert!(!pool_ids.is_empty());
    }
}

#[test]
fn repeated_harness_runs_are_identical() {
    let run = || {
        let h = Harness::new(tiny_options(7));
        h.run_single(Domain::Fara, 8, Arm::AutoTypeToType, 0, 0)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn different_master_seeds_differ() {
    let h1 = Harness::new(tiny_options(1));
    let h2 = Harness::new(tiny_options(2));
    let a = h1.run_single(Domain::Fara, 8, Arm::Baseline, 0, 0);
    let b = h2.run_single(Domain::Fara, 8, Arm::Baseline, 0, 0);
    // Same protocol, different data draws: results should not be equal.
    assert_ne!(a, b);
}

#[test]
fn metrics_are_bounded() {
    let h = Harness::new(tiny_options(3));
    for arm in [Arm::Baseline, Arm::AutoFieldToField] {
        let r = h.run_single(Domain::FccForms, 10, arm, 0, 0);
        assert!((0.0..=100.0).contains(&r.macro_f1));
        assert!((0.0..=100.0).contains(&r.micro_f1));
        for f in r.per_field_f1.iter().flatten() {
            assert!((0.0..=100.0).contains(f));
        }
    }
}

#[test]
fn trials_vary_only_training_randomness() {
    let h = Harness::new(tiny_options(4));
    let a = h.run_single(Domain::Fara, 8, Arm::Baseline, 0, 0);
    let b = h.run_single(Domain::Fara, 8, Arm::Baseline, 0, 1);
    // Same sample, same synthetics; different training shuffle.
    assert_eq!(a.n_synthetics, b.n_synthetics);
    assert_eq!(a.n_train_docs, b.n_train_docs);
}

#[test]
fn macro_f1_at_least_reacts_to_training_size() {
    // 2 docs vs 40 docs must show a visible gap on FCC forms.
    let h = Harness::new(tiny_options(5));
    let small = h.run_single(Domain::FccForms, 2, Arm::Baseline, 0, 0);
    let large = h.run_single(Domain::FccForms, 40, Arm::Baseline, 0, 0);
    assert!(
        large.macro_f1 > small.macro_f1 + 3.0,
        "size effect missing: {small:?} vs {large:?}"
    );
}
