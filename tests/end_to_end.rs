//! End-to-end integration: corpus generation → FieldSwap augmentation →
//! backbone training → evaluation, across crates.

use fieldswap_core::{augment_corpus, FieldSwapConfig, PairStrategy};
use fieldswap_datagen::{generate, Domain};
use fieldswap_eval::evaluate;
use fieldswap_extract::{Extractor, Lexicon, TrainConfig};

fn oracle_config(domain: Domain, schema: &fieldswap_docmodel::Schema) -> FieldSwapConfig {
    let mut config = FieldSwapConfig::new(schema.len());
    for (name, phrases) in domain.generator().phrase_bank() {
        let id = schema.field_id(&name).unwrap();
        config.set_phrases(id, phrases);
    }
    config
}

#[test]
fn full_pipeline_beats_chance_on_every_domain() {
    for domain in Domain::EVAL {
        let train = generate(domain, 31, 40);
        let test = generate(domain, 32, 30);
        let lexicon = Lexicon::pretrain(&train.documents);
        let ex = Extractor::train_on(
            &train.schema,
            lexicon,
            &train,
            &[],
            &TrainConfig {
                epochs: 4,
                synth_ratio: 0.0,
                seed: 1,
                ..TrainConfig::default()
            },
        );
        let result = evaluate(&ex, &test);
        assert!(
            result.micro_f1() > 20.0,
            "{domain:?}: micro-F1 {:.1} too low for a trained model",
            result.micro_f1()
        );
    }
}

#[test]
fn augmentation_pipeline_is_neutral_or_better_at_low_data() {
    // The paper's headline claim, as an integration gate: at 10-15
    // training documents, type-to-type FieldSwap with good phrases does
    // not hurt (and usually helps) macro-F1.
    let domain = Domain::Earnings;
    let train = generate(domain, 41, 12);
    let test = generate(domain, 42, 80);
    let mut config = oracle_config(domain, &train.schema);
    config.set_pairs(PairStrategy::TypeToType.build(&train.schema, &config));
    let (synths, stats) = augment_corpus(&train, &config);
    assert!(stats.generated > 50, "too few synthetics: {stats:?}");

    let lexicon = Lexicon::pretrain(&generate(Domain::Invoices, 43, 100).documents);
    let cfg = TrainConfig {
        epochs: 5,
        synth_ratio: 2.0,
        seed: 2,
        ..TrainConfig::default()
    };
    let base = evaluate(
        &Extractor::train_on(&train.schema, lexicon.clone(), &train, &[], &cfg),
        &test,
    );
    let aug = evaluate(
        &Extractor::train_on(&train.schema, lexicon, &train, &synths, &cfg),
        &test,
    );
    assert!(
        aug.macro_f1() >= base.macro_f1() - 1.0,
        "augmentation hurt: baseline {:.2}, augmented {:.2}",
        base.macro_f1(),
        aug.macro_f1()
    );
}

#[test]
fn synthetic_documents_are_structurally_valid_across_domains() {
    for domain in [Domain::Earnings, Domain::LoanPayments, Domain::FccForms] {
        let train = generate(domain, 51, 10);
        let mut config = oracle_config(domain, &train.schema);
        config.set_pairs(PairStrategy::TypeToType.build(&train.schema, &config));
        let (synths, _) = augment_corpus(&train, &config);
        for s in &synths {
            assert!(s.validate().is_ok(), "{domain:?}: {:?}", s.validate());
            assert!(!s.lines.is_empty(), "{domain:?}: synthetic missing lines");
            assert!(
                !s.annotations.is_empty(),
                "{domain:?}: synthetic lost its annotations"
            );
        }
    }
}

#[test]
fn relabeling_preserves_values_verbatim() {
    // The swap must never alter labeled value text — only phrases change.
    let domain = Domain::Brokerage;
    let train = generate(domain, 61, 8);
    let mut config = oracle_config(domain, &train.schema);
    config.set_pairs(PairStrategy::TypeToType.build(&train.schema, &config));
    for doc in &train.documents {
        let originals: std::collections::HashSet<String> = doc
            .annotations
            .iter()
            .map(|a| doc.span_text(a.start, a.end))
            .collect();
        let (synths, _) = fieldswap_core::augment_document(doc, &config);
        for s in &synths {
            for a in &s.annotations {
                let text = s.span_text(a.start, a.end);
                assert!(
                    originals.contains(&text),
                    "synthetic introduced a value not in the original: {text:?}"
                );
            }
        }
    }
}
