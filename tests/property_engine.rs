//! Property-based cross-crate tests: the augmentation engine must uphold
//! its invariants for *arbitrary* phrase configurations and pair lists,
//! not just the curated ones.

use fieldswap_core::{augment_document, FieldSwapConfig};
use fieldswap_datagen::{generate, Domain};
use fieldswap_docmodel::Document;
use proptest::prelude::*;

/// A small pool of phrase fragments, some of which occur in Earnings
/// documents and some of which never do.
const PHRASES: [&str; 12] = [
    "Base Salary",
    "Overtime",
    "Bonus",
    "Net Pay",
    "Employee",
    "Pay Date",
    "zebra quantum",
    "Total",
    "PTO",
    "Vacation Pay",
    "completely absent phrase",
    "Earnings",
];

fn arbitrary_config(n_fields: usize) -> impl Strategy<Value = FieldSwapConfig> {
    let phrase_sets = proptest::collection::vec(
        proptest::collection::vec(0usize..PHRASES.len(), 0..3),
        n_fields,
    );
    let pairs = proptest::collection::vec((0..n_fields as u16, 0..n_fields as u16), 0..12);
    (phrase_sets, pairs).prop_map(move |(sets, pairs)| {
        let mut config = FieldSwapConfig::new(n_fields);
        for (f, set) in sets.iter().enumerate() {
            config.set_phrases(
                f as u16,
                set.iter().map(|&i| PHRASES[i].to_string()).collect(),
            );
        }
        // Keep only pairs whose fields have phrases (engine contract).
        let valid: Vec<(u16, u16)> = pairs
            .into_iter()
            .filter(|&(s, t)| config.has_phrases(s) && config.has_phrases(t))
            .collect();
        config.set_pairs(valid);
        config
    })
}

fn sample_docs() -> Vec<Document> {
    generate(Domain::Earnings, 777, 4).documents
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn synthetics_always_structurally_valid(config in arbitrary_config(23), doc_idx in 0usize..4) {
        let docs = sample_docs();
        let doc = &docs[doc_idx];
        let (synths, stats) = augment_document(doc, &config);
        prop_assert_eq!(synths.len(), stats.generated);
        for s in &synths {
            prop_assert!(s.validate().is_ok(), "{:?}", s.validate());
            prop_assert!(!s.lines.is_empty());
            // Annotation count preserved: relabeling never adds/drops.
            prop_assert_eq!(s.annotations.len(), doc.annotations.len());
        }
    }

    #[test]
    fn labeled_values_never_altered(config in arbitrary_config(23), doc_idx in 0usize..4) {
        let docs = sample_docs();
        let doc = &docs[doc_idx];
        let original_values: Vec<String> = doc
            .annotations
            .iter()
            .map(|a| doc.span_text(a.start, a.end))
            .collect();
        let (synths, _) = augment_document(doc, &config);
        for s in &synths {
            let values: Vec<String> = s
                .annotations
                .iter()
                .map(|a| s.span_text(a.start, a.end))
                .collect();
            // Same multiset of value texts (order may shift with indices).
            let mut a = original_values.clone();
            let mut b = values;
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn discard_rule_means_text_always_changes(config in arbitrary_config(23), doc_idx in 0usize..4) {
        let docs = sample_docs();
        let doc = &docs[doc_idx];
        let original: Vec<String> = doc.tokens.iter().map(|t| t.lower()).collect();
        let (synths, _) = augment_document(doc, &config);
        for s in &synths {
            let text: Vec<String> = s.tokens.iter().map(|t| t.lower()).collect();
            prop_assert_ne!(&text, &original, "unchanged synthetic escaped the discard rule");
        }
    }

    #[test]
    fn determinism(config in arbitrary_config(23)) {
        let docs = sample_docs();
        let (a, sa) = augment_document(&docs[0], &config);
        let (b, sb) = augment_document(&docs[0], &config);
        prop_assert_eq!(a, b);
        prop_assert_eq!(sa, sb);
    }
}
