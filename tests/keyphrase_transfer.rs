//! Cross-domain key-phrase inference: the importance model is trained on
//! invoices only and applied to every evaluation domain (the paper's
//! transfer setting, Section II-A2).

use fieldswap_datagen::{generate, Domain};
use fieldswap_keyphrase::{infer_key_phrases, ImportanceModel, InferenceConfig, ModelConfig};

fn trained_model() -> ImportanceModel {
    let invoices = generate(Domain::Invoices, 81, 100);
    let mut model = ImportanceModel::new(
        ModelConfig {
            neighbors: 16,
            epochs: 2,
            dim: 16,
            cand_dim: 4,
            lr: 0.02,
            max_candidates_per_doc: 12,
            ..ModelConfig::tiny()
        },
        invoices.schema.len(),
        5,
    );
    model.train(&invoices, 6);
    model
}

#[test]
fn transfer_infers_phrases_on_every_eval_domain() {
    let model = trained_model();
    for domain in Domain::EVAL {
        let sample = generate(domain, 82, 25);
        let ranked = infer_key_phrases(&model, &sample, &InferenceConfig::default());
        let total: usize = ranked.iter().map(Vec::len).sum();
        assert!(total > 0, "{domain:?}: transfer produced no phrases");
        // Per-field cap respected.
        assert!(ranked.iter().all(|l| l.len() <= 3));
    }
}

#[test]
fn inferred_phrases_never_contain_field_values() {
    let model = trained_model();
    for domain in [Domain::Earnings, Domain::Brokerage] {
        let sample = generate(domain, 83, 20);
        let ranked = infer_key_phrases(&model, &sample, &InferenceConfig::default());
        let mut values = std::collections::HashSet::new();
        for d in &sample.documents {
            for a in &d.annotations {
                values.insert(fieldswap_core::config::normalize_phrase(
                    &d.span_text(a.start, a.end),
                ));
            }
        }
        for list in &ranked {
            for r in list {
                assert!(
                    !values.contains(&r.phrase),
                    "{domain:?}: inferred phrase {:?} is a labeled value",
                    r.phrase
                );
            }
        }
    }
}

#[test]
fn more_training_data_never_reduces_anchored_field_coverage() {
    // With more labeled examples, the set of fields that get at least one
    // inferred phrase should not shrink for strongly anchored fields.
    let model = trained_model();
    let small = generate(Domain::Earnings, 84, 8);
    let large = generate(Domain::Earnings, 84, 60);
    let cfg = InferenceConfig::default();
    let rs = infer_key_phrases(&model, &small, &cfg);
    let rl = infer_key_phrases(&model, &large, &cfg);
    let covered = |r: &Vec<Vec<fieldswap_keyphrase::RankedPhrase>>| -> usize {
        r.iter().filter(|l| !l.is_empty()).count()
    };
    assert!(
        covered(&rl) + 2 >= covered(&rs),
        "coverage collapsed with more data: {} -> {}",
        covered(&rs),
        covered(&rl)
    );
}

#[test]
fn sparsemax_sparsity_controls_phrase_noise() {
    // theta = 1.0 admits nothing; theta = 0 admits the most.
    let model = trained_model();
    let sample = generate(Domain::FccForms, 85, 15);
    let strict = infer_key_phrases(
        &model,
        &sample,
        &InferenceConfig {
            theta: 1.0,
            ..InferenceConfig::default()
        },
    );
    assert!(strict.iter().all(|l| l.is_empty()));
    let loose = infer_key_phrases(
        &model,
        &sample,
        &InferenceConfig {
            theta: 0.0,
            top_k: 10,
            ..InferenceConfig::default()
        },
    );
    let strict_n: usize = strict.iter().map(Vec::len).sum();
    let loose_n: usize = loose.iter().map(Vec::len).sum();
    assert!(loose_n > strict_n);
}
