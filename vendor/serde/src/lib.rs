//! Offline stand-in for `serde`.
//!
//! The builder container cannot reach crates.io, so the workspace vendors
//! a minimal serialization framework under the `serde` name. Instead of
//! upstream's visitor-based data model, everything routes through a
//! single JSON-shaped [`Value`] tree: [`Serialize`] renders into it,
//! [`Deserialize`] reads out of it, and the `serde_json` companion crate
//! handles text. The derive macros (re-exported from `serde_derive`)
//! cover the shapes this workspace uses: structs with named fields
//! (honoring `#[serde(skip)]`) and enums with unit variants.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value tree — the interchange format between [`Serialize`],
/// [`Deserialize`], and the `serde_json` text layer. Object keys keep
/// insertion order so serialized output is stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (JSON number without fraction or exponent).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object value, or `None`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array value, or `None`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (integers included), or `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The non-negative integer payload, or `None`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// A (de)serialization error: a plain message, matching the error surface
/// the workspace relies on (`Display` + `std::error::Error`).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// The value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, or explains why the value does not fit.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ----------------------------------------------------

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::new(format!("integer {i} out of range for {}", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::new(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::Float(*self as f64),
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(i) => u64::try_from(*i).map_err(|_| Error::new("negative value for u64")),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as u64),
            other => Err(Error::new(format!("expected integer, found {other:?}"))),
        }
    }
}

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::new(format!("expected number, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::new(format!(
                "expected single-char string, found {other:?}"
            ))),
        }
    }
}

// ---- containers ---------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new(format!("expected array, found {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::new(format!("expected array of {N}, found {}", items.len())))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::new(format!("expected tuple array, found {v:?}")))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::new(format!(
                        "expected array of {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::new(format!("expected object, found {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::new(format!("expected object, found {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u16::from_value(&42u16.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u32>::from_value(&Option::<u32>::None.to_value()).unwrap(),
            None
        );
        let pair: (u16, u16) = Deserialize::from_value(&(3u16, 4u16).to_value()).unwrap();
        assert_eq!(pair, (3, 4));
    }

    #[test]
    fn out_of_range_int_errors() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }
}
