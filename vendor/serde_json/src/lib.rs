//! Offline stand-in for `serde_json`: renders the vendored
//! [`serde::Value`] tree to JSON text and parses JSON text back, exposing
//! the `to_string` / `to_string_pretty` / `from_str` / [`Error`] surface
//! the workspace uses.

pub use serde::{Error, Value};

/// Serializes `value` to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` to 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

// ---- writer -------------------------------------------------------------

fn write_value(
    v: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("JSON cannot represent NaN or infinity"));
            }
            // `{:?}` prints the shortest representation that round-trips,
            // always with a decimal point or exponent.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
    Ok(())
}

/// In pretty mode, starts a fresh line indented for `depth`.
fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else {
            // Integers that overflow i64 fall back to f64, like serde_json
            // with arbitrary_precision off.
            text.parse::<i64>().map(Value::Int).or_else(|_| {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::new(format!("invalid number {text:?}")))
            })
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let rest = &self.bytes[self.pos - 1..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::Int(1), Value::Float(2.5)]),
            ),
            ("b".into(), Value::Str("he\"llo\nworld".into())),
            ("c".into(), Value::Null),
            ("d".into(), Value::Bool(true)),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn floats_round_trip() {
        for f in [0.1, -1e-7, 1234.5678, 3.0] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "é😀");
    }
}
