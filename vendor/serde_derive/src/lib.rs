//! Derive macros for the vendored `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! two shapes this workspace uses — structs with named fields and enums
//! with unit variants — by walking the raw token stream (no `syn`
//! available offline). Supported attribute: `#[serde(skip)]` on a struct
//! field (omitted when serializing, `Default::default()` when
//! deserializing).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the derive input parsed into.
enum Input {
    /// Struct name + fields as `(name, skip)` pairs, in declaration order.
    Struct(String, Vec<(String, bool)>),
    /// Enum name + unit variant names, in declaration order.
    Enum(String, Vec<String>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Input::Struct(name, fields) => {
            let mut pushes = String::new();
            for (f, skip) in &fields {
                if *skip {
                    continue;
                }
                pushes.push_str(&format!(
                    "obj.push((\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         let mut obj: Vec<(String, serde::Value)> = Vec::new();\n\
                         {pushes}\
                         serde::Value::Object(obj)\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\",\n"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derived Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Input::Struct(name, fields) => {
            let mut inits = String::new();
            for (f, skip) in &fields {
                if *skip {
                    inits.push_str(&format!("{f}: Default::default(),\n"));
                } else {
                    inits.push_str(&format!(
                        "{f}: serde::Deserialize::from_value(obj.get(\"{f}\").ok_or_else(|| \
                         serde::Error::new(\"missing field `{f}` in {name}\"))?)?,\n"
                    ));
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         let obj = match v {{\n\
                             serde::Value::Object(_) => v,\n\
                             other => return Err(serde::Error::new(format!(\
                                 \"expected object for {name}, found {{other:?}}\"))),\n\
                         }};\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         let s = v.as_str().ok_or_else(|| serde::Error::new(format!(\
                             \"expected string for {name}, found {{v:?}}\")))?;\n\
                         match s {{\n\
                             {arms}\
                             other => Err(serde::Error::new(format!(\
                                 \"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derived Deserialize impl parses")
}

/// Parses the derive input token stream into [`Input`].
fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility ahead of the item keyword.
    let mut kind: Option<&'static str> = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // `#` + `[...]`
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1; // `pub(crate)` etc.
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                kind = Some("struct");
                i += 1;
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                kind = Some("enum");
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let kind = kind.expect("derive input is a struct or enum");
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;
    // Reject generics: the vendored derive does not support them.
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde derive does not support generic types ({name})");
    }
    let body = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("expected braced body for {name} (tuple structs unsupported)"));

    if kind == "struct" {
        Input::Struct(name, parse_struct_fields(body))
    } else {
        Input::Enum(name, parse_enum_variants(body))
    }
}

/// Walks a struct body, returning `(field_name, has_serde_skip)` pairs.
fn parse_struct_fields(body: TokenStream) -> Vec<(String, bool)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes (doc comments included).
        let mut skip = false;
        loop {
            match &tokens[i..] {
                [TokenTree::Punct(p), TokenTree::Group(g), ..] if p.as_char() == '#' => {
                    if attr_is_serde_skip(g.stream()) {
                        skip = true;
                    }
                    i += 2;
                }
                _ => break,
            }
        }
        // Visibility.
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        // Field name.
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other} (tuple structs unsupported)"),
        };
        i += 1;
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "expected `:` after field {name}"
        );
        i += 1;
        // Type: scan to the next comma outside angle brackets.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push((name, skip));
    }
    fields
}

/// Walks an enum body, returning unit-variant names.
fn parse_enum_variants(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes.
        while matches!(&tokens[i..], [TokenTree::Punct(p), TokenTree::Group(_), ..] if p.as_char() == '#')
        {
            i += 2;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                panic!("vendored serde derive supports unit enum variants only ({name})")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the comma.
                while i < tokens.len()
                    && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
                {
                    i += 1;
                }
                i += 1;
            }
            Some(other) => panic!("unexpected token {other} after variant {name}"),
        }
        variants.push(name);
    }
    variants
}

/// Whether a `#[...]` attribute body is exactly `serde(... skip ...)`.
fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match &tokens[..] {
        [TokenTree::Ident(id), TokenTree::Group(args)] if id.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}
