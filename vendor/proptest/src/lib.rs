//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait over
//! numeric ranges, tuples, `collection::vec`, and `prop_map`; the
//! [`test_runner::TestRunner`] driver; and the `proptest!` /
//! `prop_assert*!` macros. Cases are generated from a fixed-seed
//! deterministic RNG and failures report the offending input, but there
//! is **no shrinking** — a failing case prints as generated.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A source of arbitrary values: the generation half of proptest's
/// `Strategy`, without shrink trees.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// A `Vec` length specification: a fixed size or a half-open range.
    pub trait IntoVecLen {
        /// `(min, max)` bounds, max exclusive; `min == max` means fixed.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoVecLen for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoVecLen for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length is `len` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, len: impl IntoVecLen) -> VecStrategy<S> {
        let (min, max) = len.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.min >= self.max {
                self.min
            } else {
                rng.gen_range(self.min..self.max)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The test driver.
pub mod test_runner {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// A failed test case (the `Err` of a property closure).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// A failed property: the case error plus the input that triggered
    /// it (as generated — no shrinking).
    #[derive(Debug, Clone)]
    pub struct TestError {
        /// Failure message from the property.
        pub message: String,
        /// Debug rendering of the failing input.
        pub input: String,
    }

    impl std::fmt::Display for TestError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{} for input {}", self.message, self.input)
        }
    }

    impl std::error::Error for TestError {}

    /// Drives a property over `Config::cases` generated inputs.
    pub struct TestRunner {
        config: Config,
        rng: StdRng,
    }

    impl TestRunner {
        /// A runner with a fixed seed: every run generates the same
        /// cases.
        pub fn new(config: Config) -> Self {
            Self {
                config,
                rng: StdRng::seed_from_u64(0x9E3779B97F4A7C15),
            }
        }

        /// Runs `test` against `config.cases` values from `strategy`,
        /// stopping at the first failure.
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), TestError>
        where
            S: Strategy,
            S::Value: std::fmt::Debug,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            for _ in 0..self.config.cases {
                let value = strategy.generate(&mut self.rng);
                let rendered = format!("{value:?}");
                if let Err(e) = test(value) {
                    return Err(TestError {
                        message: e.message,
                        input: rendered,
                    });
                }
            }
            Ok(())
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Asserts a condition inside a property, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)+);
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                runner
                    .run(&( $($strat,)+ ), |( $($arg,)+ )| {
                        $body
                        ::core::result::Result::Ok(())
                    })
                    .unwrap();
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::{Config, TestRunner};

    #[test]
    fn runner_reports_failures_with_input() {
        let mut runner = TestRunner::new(Config::with_cases(50));
        let err = runner
            .run(&(0usize..100), |x| {
                prop_assert!(x < 10, "too big: {}", x);
                Ok(())
            })
            .unwrap_err();
        assert!(err.message.starts_with("too big"));
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut runner = TestRunner::new(Config::with_cases(100));
        runner
            .run(&crate::collection::vec(0f32..1.0, 2..7), |v| {
                prop_assert!((2..7).contains(&v.len()));
                for x in &v {
                    prop_assert!((0.0..1.0).contains(x));
                }
                Ok(())
            })
            .unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_form_works(x in 1usize..6, y in -1e3f32..1e3) {
            prop_assert!((1..6).contains(&x));
            prop_assert!((-1e3..1e3).contains(&y));
        }

        #[test]
        fn map_and_tuple(v in (0u16..4, 0u16..4).prop_map(|(a, b)| (a, b, a + b))) {
            prop_assert_eq!(v.2, v.0 + v.1);
        }
    }
}
