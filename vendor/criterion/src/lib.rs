//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use — [`Criterion`],
//! [`black_box`], `benchmark_group`, `criterion_group!`,
//! `criterion_main!` — with a simple wall-clock measurement loop: per
//! sample, the iteration count is calibrated to a minimum sample
//! duration, and the median ns/iter over `sample_size` samples is
//! reported to stdout. No statistics beyond that, no HTML reports.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work. Same contract as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver and its configuration.
pub struct Criterion {
    sample_size: usize,
    min_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            min_sample_time: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the routine under test.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            min_sample_time: self.min_sample_time,
            result: None,
        };
        f(&mut b);
        if let Some(median_ns) = b.result {
            println!("bench {id:<48} {:>12} ns/iter", format_ns(median_ns));
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and optional overrides.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let saved = self.parent.sample_size;
        if let Some(n) = self.sample_size {
            self.parent.sample_size = n;
        }
        self.parent.bench_function(&full, f);
        self.parent.sample_size = saved;
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Hands the routine under test to the measurement loop.
pub struct Bencher {
    sample_size: usize,
    min_sample_time: Duration,
    result: Option<f64>,
}

impl Bencher {
    /// Measures `routine`, storing the median ns/iter across samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fill min_sample_time?
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.min_sample_time || iters >= 1 << 20 {
                break;
            }
            let grow = if elapsed.is_zero() {
                16
            } else {
                (self.min_sample_time.as_nanos() / elapsed.as_nanos().max(1) + 1) as u64
            };
            iters = iters.saturating_mul(grow.clamp(2, 16)).min(1 << 20);
        }
        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result = Some(samples[samples.len() / 2]);
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.1}")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default().sample_size(2);
        c.min_sample_time = Duration::from_micros(50);
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count = count.wrapping_add(1)));
        assert!(count > 0);
    }

    #[test]
    fn group_overrides_sample_size_and_restores() {
        let mut c = Criterion::default().sample_size(4);
        c.min_sample_time = Duration::from_micros(50);
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("a", |b| b.iter(|| black_box(1 + 1)));
            g.finish();
        }
        assert_eq!(c.sample_size, 4);
    }
}
