//! Offline stand-in for the `rand` crate.
//!
//! The builder container has no network access to crates.io, so the
//! workspace vendors the narrow API subset it actually uses: the [`Rng`]
//! trait with `gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`] (`shuffle`/`choose`).
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — *not* the ChaCha12 generator of upstream `rand 0.8` — so
//! absolute numbers differ from a crates.io build. Everything in this
//! workspace treats the RNG as an opaque deterministic stream keyed by a
//! `u64` seed, which this crate honors: the same seed always yields the
//! same stream, on every platform and thread schedule.

use std::ops::{Range, RangeInclusive};

/// Types that can seed a generator from a single `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Deterministic: equal seeds
    /// produce equal streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types with a uniform sampling routine over an interval. Mirrors the
/// role of `rand::distributions::uniform::SampleUniform` so that
/// `gen_range` type inference behaves like upstream: the element type is
/// tied to the call's expected return type.
pub trait SampleUniform: Sized {
    /// A uniform sample from `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// A uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty gen_range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (hi - lo) * unit as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                // Treated as half-open, like upstream's float behavior
                // modulo rounding at the top end.
                assert!(lo <= hi, "empty gen_range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`]. Mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample using `rng` as the entropy source.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// The random-value trait: the `gen_range`/`gen_bool` subset of
/// `rand::Rng`, over a raw 64-bit word stream.
pub trait Rng {
    /// The next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed into the 256-bit state,
            // guaranteeing a non-zero state for any input seed.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }
    }

    /// Alias kept for API compatibility with upstream `rand`.
    pub type SmallRng = StdRng;
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// The `shuffle`/`choose` subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle, deterministic in the RNG stream.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1..=12u32);
            assert!((1..=12).contains(&w));
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let neg = rng.gen_range(-3_000_000..5_000_000i64);
            assert!((-3_000_000..5_000_000).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(5));
        b.shuffle(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([1, 2, 3].choose(&mut rng).is_some());
    }
}
