//! The model registry: immutable snapshots of loaded [`FrozenModel`]s,
//! template-match routing, and atomic hot reload.
//!
//! A [`RegistrySnapshot`] is built once (from a model directory or
//! in-memory) and never mutated; the live [`Registry`] holds the current
//! snapshot behind an `RwLock<Arc<…>>`, so a reload is one pointer swap —
//! requests in flight keep the snapshot they started with and can never
//! observe a half-loaded registry.

use fieldswap_docmodel::Document;
use fieldswap_extract::{FrozenModel, Lexicon};
use std::path::Path;
use std::sync::{Arc, RwLock};

/// One registered model: a domain key (the model file's stem), the
/// frozen model, and human-readable field names for responses.
pub struct ModelEntry {
    /// Routing/domain key, unique within a snapshot.
    pub name: String,
    /// The loaded inference snapshot.
    pub model: Arc<FrozenModel>,
    /// Display name per field id; padded with `field-<id>` when the
    /// sidecar names fewer fields than the model has.
    pub field_names: Vec<String>,
}

/// An immutable set of registered models, sorted by name.
pub struct RegistrySnapshot {
    entries: Vec<ModelEntry>,
}

/// File extension of serialized frozen models in a model directory.
pub const MODEL_EXT: &str = "fsm";

impl RegistrySnapshot {
    /// An empty snapshot (server can start before any model exists).
    pub fn empty() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Builds a snapshot from loaded entries (used by tests and
    /// benchmarks that skip the filesystem). Entries are sorted by name;
    /// duplicate names are an error.
    pub fn from_entries(mut entries: Vec<ModelEntry>) -> Result<Self, String> {
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        for pair in entries.windows(2) {
            if pair[0].name == pair[1].name {
                return Err(format!("duplicate model name {:?}", pair[0].name));
            }
        }
        Ok(Self { entries })
    }

    /// Loads every `*.fsm` model in `dir` (stem = model name, optional
    /// `<stem>.fields.json` sidecar naming the fields). With `quantized`
    /// set, each model's emission table is int8-quantized after load.
    /// Any unreadable or corrupt model fails the whole load — a reload
    /// either fully succeeds or leaves the previous registry in place.
    pub fn load_dir(dir: &Path, quantized: bool) -> Result<Self, String> {
        let mut entries = Vec::new();
        let listing =
            std::fs::read_dir(dir).map_err(|e| format!("reading model dir {dir:?}: {e}"))?;
        for item in listing {
            let path = item.map_err(|e| format!("listing {dir:?}: {e}"))?.path();
            if path.extension().and_then(|x| x.to_str()) != Some(MODEL_EXT) {
                continue;
            }
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| format!("non-utf8 model file name {path:?}"))?
                .to_string();
            let bytes = std::fs::read(&path).map_err(|e| format!("reading model {path:?}: {e}"))?;
            let model =
                FrozenModel::from_bytes(&bytes).map_err(|e| format!("loading {path:?}: {e}"))?;
            let model = if quantized { model.quantize() } else { model };
            let sidecar = path.with_extension("fields.json");
            let mut field_names: Vec<String> = if sidecar.exists() {
                let text = std::fs::read_to_string(&sidecar)
                    .map_err(|e| format!("reading {sidecar:?}: {e}"))?;
                serde_json::from_str(&text).map_err(|e| format!("parsing {sidecar:?}: {e}"))?
            } else {
                Vec::new()
            };
            for id in field_names.len()..model.n_fields() {
                field_names.push(format!("field-{id}"));
            }
            field_names.truncate(model.n_fields());
            entries.push(ModelEntry {
                name,
                model: Arc::new(model),
                field_names,
            });
        }
        Self::from_entries(entries)
    }

    /// The registered models, sorted by name.
    pub fn entries(&self) -> &[ModelEntry] {
        &self.entries
    }

    /// Looks up a model by name.
    pub fn get(&self, name: &str) -> Option<&ModelEntry> {
        self.entries
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Template-match dispatch: scores every registered model's lexicon
    /// against `doc` and returns the index of the best match plus its
    /// score. The score is the mean DF bucket of the document's tokens
    /// under the model's lexicon, normalized to `0..=1` — a document
    /// drawn from the model's template vocabulary scores high, a foreign
    /// one scores near zero. Ties break to the lexicographically first
    /// name (entries are sorted), so routing is deterministic.
    pub fn route(&self, doc: &Document) -> Option<(usize, f32)> {
        if self.entries.is_empty() {
            return None;
        }
        let mut best: Option<(usize, f32)> = None;
        let mut buf = String::new();
        for (i, entry) in self.entries.iter().enumerate() {
            let score = lexicon_overlap(entry.model.lexicon(), doc, &mut buf);
            match best {
                Some((_, b)) if b >= score => {}
                _ => best = Some((i, score)),
            }
        }
        best
    }
}

/// Template-match score of `doc` against `lexicon`: the mean DF bucket
/// of the document's tokens, scaled to `0..=1`. This is what
/// [`RegistrySnapshot::route`] maximizes; exposed so a pinned-model
/// request can still report its score.
pub fn match_score(lexicon: &Lexicon, doc: &Document) -> f32 {
    let mut buf = String::new();
    lexicon_overlap(lexicon, doc, &mut buf)
}

/// Mean DF bucket (0..=4, scaled to 0..=1) of `doc`'s tokens under
/// `lexicon`. `buf` is the reusable normalization buffer from
/// [`Lexicon::df_bucket_into`], so scoring allocates nothing once warm.
fn lexicon_overlap(lexicon: &Lexicon, doc: &Document, buf: &mut String) -> f32 {
    if doc.tokens.is_empty() {
        return 0.0;
    }
    let mut sum = 0u32;
    for t in &doc.tokens {
        sum += u32::from(lexicon.df_bucket_into(&t.text, buf));
    }
    sum as f32 / (4.0 * doc.tokens.len() as f32)
}

/// The live registry: the current [`RegistrySnapshot`] behind one
/// atomic pointer swap.
pub struct Registry {
    current: RwLock<Arc<RegistrySnapshot>>,
}

impl Registry {
    /// A registry serving `snapshot`.
    pub fn new(snapshot: RegistrySnapshot) -> Self {
        Self {
            current: RwLock::new(Arc::new(snapshot)),
        }
    }

    /// The current snapshot. Requests hold the `Arc` for their whole
    /// lifetime, so a concurrent [`Registry::replace`] never changes the
    /// models a request already routed against.
    ///
    /// Poison-safe: the guarded value is a plain `Arc` swap, so even if
    /// a holder panicked the pointer is intact — recover instead of
    /// propagating the poison into every future request.
    pub fn snapshot(&self) -> Arc<RegistrySnapshot> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Atomically replaces the served snapshot (poison-safe, as above).
    pub fn replace(&self, snapshot: RegistrySnapshot) {
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_datagen::{generate, Domain};
    use fieldswap_extract::{Extractor, TrainConfig};

    fn frozen_for(domain: Domain, seed: u64) -> (FrozenModel, Vec<Document>) {
        let corpus = generate(domain, seed, 15);
        let lex = Lexicon::pretrain(&corpus.documents);
        let ex = Extractor::train_on(&corpus.schema, lex, &corpus, &[], &TrainConfig::tiny());
        let probe = generate(domain, seed + 1, 5).documents;
        (ex.freeze(), probe)
    }

    #[test]
    fn routes_documents_to_their_domain() {
        let (fara, fara_docs) = frozen_for(Domain::Fara, 101);
        let (earnings, earnings_docs) = frozen_for(Domain::Earnings, 102);
        let snap = RegistrySnapshot::from_entries(vec![
            ModelEntry {
                name: "fara".into(),
                model: Arc::new(fara),
                field_names: Vec::new(),
            },
            ModelEntry {
                name: "earnings".into(),
                model: Arc::new(earnings),
                field_names: Vec::new(),
            },
        ])
        .unwrap();
        for d in &fara_docs {
            let (i, score) = snap.route(d).unwrap();
            assert_eq!(snap.entries()[i].name, "fara", "misrouted {}", d.id);
            assert!(score > 0.0);
        }
        for d in &earnings_docs {
            let (i, _) = snap.route(d).unwrap();
            assert_eq!(snap.entries()[i].name, "earnings", "misrouted {}", d.id);
        }
    }

    #[test]
    fn empty_registry_routes_nothing() {
        let snap = RegistrySnapshot::empty();
        let doc = generate(Domain::Fara, 1, 1).documents.remove(0);
        assert!(snap.route(&doc).is_none());
        assert!(snap.get("fara").is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let (m, _) = frozen_for(Domain::Fara, 103);
        let m = Arc::new(m);
        let Err(err) = RegistrySnapshot::from_entries(vec![
            ModelEntry {
                name: "x".into(),
                model: Arc::clone(&m),
                field_names: Vec::new(),
            },
            ModelEntry {
                name: "x".into(),
                model: m,
                field_names: Vec::new(),
            },
        ]) else {
            panic!("duplicate names accepted");
        };
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn replace_swaps_snapshots_atomically() {
        let registry = Registry::new(RegistrySnapshot::empty());
        let before = registry.snapshot();
        assert!(before.entries().is_empty());
        let (m, _) = frozen_for(Domain::Fara, 104);
        registry.replace(
            RegistrySnapshot::from_entries(vec![ModelEntry {
                name: "fara".into(),
                model: Arc::new(m),
                field_names: Vec::new(),
            }])
            .unwrap(),
        );
        // The old handle still sees the old world; a fresh one the new.
        assert!(before.entries().is_empty());
        assert_eq!(registry.snapshot().entries().len(), 1);
    }
}
