//! `fieldswap-serve` — the online extraction service CLI.
//!
//! Subcommands:
//!
//! * `serve --models DIR [--listen ADDR] [--workers N] [--quantized]
//!   [--max-inflight N] [--max-docs-per-request N]
//!   [--default-deadline-ms MS]` — load every `*.fsm` in DIR and serve
//!   until `POST /quitquitquit`. The binary defaults to a bounded
//!   admission budget (64 inflight extracts, 256 docs/request); pass 0
//!   to disable either limit. A hidden `--chaos SPEC` flag enables
//!   deterministic fault injection for the chaos harness.
//! * `train --domain KEY --models DIR [--seed S] [--docs N] [--epochs E]`
//!   — train a small model on generated documents for one domain and
//!   write `KEY.fsm` + `KEY.fields.json` into DIR.
//! * `sample --domain KEY --out PATH [--seed S]` — write a ready-to-POST
//!   `/v1/extract` request body containing one generated document.

use fieldswap_datagen::generate;
use fieldswap_extract::{Extractor, Lexicon, TrainConfig};
use fieldswap_serve::{domain_key, parse_domain, FaultPlan, ServeConfig, ServeHandle};
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&args) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "serve" => cmd_serve(rest),
        "train" => cmd_train(rest),
        "sample" => cmd_sample(rest),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: fieldswap-serve <serve|train|sample> [flags]\n\
     serve  --models DIR [--listen ADDR] [--workers N] [--quantized]\n\
            [--max-inflight N] [--max-docs-per-request N] [--default-deadline-ms MS]\n\
     train  --domain KEY --models DIR [--seed S] [--docs N] [--epochs E]\n\
     sample --domain KEY --out PATH [--seed S]"
        .into()
}

/// Pulls `--flag value` pairs and bare `--switch`es out of `args`.
struct Flags<'a> {
    args: &'a [String],
    used: Vec<bool>,
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Self {
            args,
            used: vec![false; args.len()],
        }
    }

    fn value(&mut self, name: &str) -> Result<Option<&'a str>, String> {
        for i in 0..self.args.len() {
            if self.args[i] == name {
                let v = self
                    .args
                    .get(i + 1)
                    .filter(|v| !v.starts_with("--"))
                    .ok_or_else(|| format!("flag {name} needs a value"))?;
                self.used[i] = true;
                self.used[i + 1] = true;
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    fn switch(&mut self, name: &str) -> bool {
        for i in 0..self.args.len() {
            if self.args[i] == name {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    fn finish(self) -> Result<(), String> {
        for (i, used) in self.used.iter().enumerate() {
            if !used {
                return Err(format!("unrecognized argument {:?}", self.args[i]));
            }
        }
        Ok(())
    }
}

fn parse_num<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("flag {name}: bad value {v:?}"))
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut flags = Flags::new(args);
    let models = flags
        .value("--models")?
        .ok_or("serve requires --models DIR")?
        .to_string();
    let listen = flags
        .value("--listen")?
        .unwrap_or("127.0.0.1:8080")
        .to_string();
    let workers = match flags.value("--workers")? {
        Some(v) => parse_num("--workers", v)?,
        None => 0,
    };
    let quantized = flags.switch("--quantized");
    let max_inflight = match flags.value("--max-inflight")? {
        Some(v) => parse_num("--max-inflight", v)?,
        None => 64usize,
    };
    let max_docs_per_request = match flags.value("--max-docs-per-request")? {
        Some(v) => parse_num("--max-docs-per-request", v)?,
        None => 256usize,
    };
    let default_deadline_ms = match flags.value("--default-deadline-ms")? {
        Some(v) => parse_num("--default-deadline-ms", v)?,
        None => 0u64,
    };
    // Hidden: deterministic fault injection for the chaos harness only.
    let chaos = match flags.value("--chaos")? {
        Some(spec) => Some(FaultPlan::parse(spec)?),
        None => None,
    };
    flags.finish()?;

    let handle = ServeHandle::start(ServeConfig {
        listen,
        models_dir: Some(PathBuf::from(models)),
        initial: None,
        workers,
        quantized,
        max_inflight,
        max_docs_per_request,
        default_deadline_ms,
        chaos,
    })?;
    println!("listening on {}", handle.addr());
    handle.wait_for_quit();
    // Let the quit response flush before tearing the listener down.
    std::thread::sleep(Duration::from_millis(200));
    handle.shutdown();
    println!("shut down cleanly");
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let mut flags = Flags::new(args);
    let key = flags
        .value("--domain")?
        .ok_or("train requires --domain KEY")?
        .to_string();
    let models = flags
        .value("--models")?
        .ok_or("train requires --models DIR")?
        .to_string();
    let seed = match flags.value("--seed")? {
        Some(v) => parse_num("--seed", v)?,
        None => 7u64,
    };
    let docs = match flags.value("--docs")? {
        Some(v) => parse_num("--docs", v)?,
        None => 40usize,
    };
    let epochs = match flags.value("--epochs")? {
        Some(v) => parse_num("--epochs", v)?,
        None => TrainConfig::tiny().epochs,
    };
    flags.finish()?;

    let domain = parse_domain(&key)
        .ok_or_else(|| format!("unknown domain {key:?} (try: fara, earnings)"))?;
    let corpus = generate(domain, seed, docs);
    let lex = Lexicon::pretrain(&corpus.documents);
    let cfg = TrainConfig {
        epochs,
        seed,
        ..TrainConfig::tiny()
    };
    let ex = Extractor::train_on(&corpus.schema, lex, &corpus, &[], &cfg);
    let frozen = ex.freeze();
    let bytes = frozen.to_bytes().map_err(|e| format!("serializing: {e}"))?;

    let dir = PathBuf::from(&models);
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {models:?}: {e}"))?;
    let model_path = dir.join(format!("{}.fsm", domain_key(domain)));
    std::fs::write(&model_path, &bytes).map_err(|e| format!("writing {model_path:?}: {e}"))?;
    let names: Vec<String> = (0..corpus.schema.len())
        .map(|id| corpus.schema.field(id as u16).name.clone())
        .collect();
    let sidecar = dir.join(format!("{}.fields.json", domain_key(domain)));
    std::fs::write(
        &sidecar,
        serde_json::to_string(&names).expect("string array"),
    )
    .map_err(|e| format!("writing {sidecar:?}: {e}"))?;
    println!(
        "trained {} ({} docs, {} epochs) -> {} ({} bytes)",
        domain_key(domain),
        docs,
        epochs,
        model_path.display(),
        bytes.len()
    );
    Ok(())
}

fn cmd_sample(args: &[String]) -> Result<(), String> {
    let mut flags = Flags::new(args);
    let key = flags
        .value("--domain")?
        .ok_or("sample requires --domain KEY")?
        .to_string();
    let out = flags
        .value("--out")?
        .ok_or("sample requires --out PATH")?
        .to_string();
    let seed = match flags.value("--seed")? {
        Some(v) => parse_num("--seed", v)?,
        None => 8u64,
    };
    flags.finish()?;

    let domain = parse_domain(&key).ok_or_else(|| format!("unknown domain {key:?}"))?;
    let doc = generate(domain, seed, 1).documents.remove(0);
    let body = serde::Value::Object(vec![(
        "documents".into(),
        serde::Value::Array(vec![serde::Serialize::to_value(&doc)]),
    )]);
    std::fs::write(&out, serde_json::to_string(&body).expect("document tree"))
        .map_err(|e| format!("writing {out:?}: {e}"))?;
    println!("wrote sample request for {key} to {out}");
    Ok(())
}
