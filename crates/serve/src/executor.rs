//! The inference executor: a persistent worker pool with per-worker
//! [`InferScratch`] reuse.
//!
//! Scratches are allocated once at startup and reused for every request,
//! so a warm server performs no per-request scratch allocation. The
//! scratch's own model-token check handles multi-model traffic: reusing
//! a scratch against a different model resets only its row cache.
//!
//! The [`WorkerPool`] broadcast protocol forbids overlapping batches, so
//! the pool sits behind a `Mutex` — concurrent batch requests serialize
//! on it. Single-document requests (the common online case) skip the
//! pool entirely and run on the connection thread with a round-robin
//! scratch, so they proceed concurrently with each other and with any
//! in-flight batch.

use fieldswap_docmodel::{Document, EntitySpan};
use fieldswap_extract::{FrozenModel, InferScratch};
use fieldswap_parallel::{effective_jobs, WorkerPool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Scored spans for one document: `(span, confidence)` pairs.
pub type ScoredSpans = Vec<(EntitySpan, f32)>;

/// A persistent inference executor. One per server.
pub struct Executor {
    pool: Mutex<WorkerPool>,
    scratches: Vec<Mutex<InferScratch>>,
    rr: AtomicUsize,
}

impl Executor {
    /// An executor with `jobs` workers (0 = all cores, 1 = run inline).
    pub fn new(jobs: usize) -> Self {
        let jobs = effective_jobs(jobs);
        Self {
            pool: Mutex::new(WorkerPool::new(jobs)),
            scratches: (0..jobs)
                .map(|_| Mutex::new(InferScratch::default()))
                .collect(),
            rr: AtomicUsize::new(0),
        }
    }

    /// Number of workers (and scratches).
    pub fn jobs(&self) -> usize {
        self.scratches.len()
    }

    /// Scored prediction for one document on the calling thread, using a
    /// round-robin scratch. No pool broadcast, so concurrent calls run
    /// truly in parallel across connection threads.
    pub fn predict_one(&self, model: &FrozenModel, doc: &Document) -> ScoredSpans {
        let i = self.rr.fetch_add(1, Ordering::Relaxed) % self.scratches.len();
        let mut scratch = self.scratches[i].lock().expect("scratch poisoned");
        model.predict_scored(doc, &mut scratch)
    }

    /// Scored predictions for a batch, fanned over the worker pool with
    /// each worker reusing its own scratch. `models[i]` is the routed
    /// model for `docs[i]` — a mixed-domain batch is fine.
    pub fn predict_batch(&self, models: &[&FrozenModel], docs: &[Document]) -> Vec<ScoredSpans> {
        assert_eq!(models.len(), docs.len());
        if docs.len() <= 1 {
            return docs
                .iter()
                .zip(models)
                .map(|(d, m)| self.predict_one(m, d))
                .collect();
        }
        let slots: Vec<Mutex<Option<ScoredSpans>>> =
            (0..docs.len()).map(|_| Mutex::new(None)).collect();
        {
            // Broadcasts must not overlap: hold the pool for the batch.
            let pool = self.pool.lock().expect("pool poisoned");
            pool.fill_slots(&slots, |worker, item| {
                let mut scratch = self.scratches[worker].lock().expect("scratch poisoned");
                models[item].predict_scored(&docs[item], &mut scratch)
            });
        }
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("slot poisoned")
                    .expect("slot unfilled")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_datagen::{generate, Domain};
    use fieldswap_extract::{Extractor, Lexicon, TrainConfig};

    #[test]
    fn batch_matches_serial_prediction_across_models() {
        let mk = |domain, seed| {
            let corpus = generate(domain, seed, 12);
            let lex = Lexicon::pretrain(&corpus.documents);
            Extractor::train_on(&corpus.schema, lex, &corpus, &[], &TrainConfig::tiny()).freeze()
        };
        let fara = mk(Domain::Fara, 51);
        let earn = mk(Domain::Earnings, 52);
        let mut docs = generate(Domain::Fara, 53, 4).documents;
        docs.extend(generate(Domain::Earnings, 54, 4).documents);
        let models: Vec<&FrozenModel> = (0..8).map(|i| if i < 4 { &fara } else { &earn }).collect();

        let ex = Executor::new(3);
        let batch = ex.predict_batch(&models, &docs);
        let mut scratch = InferScratch::default();
        for (i, (m, d)) in models.iter().zip(&docs).enumerate() {
            let serial = m.predict_scored(d, &mut scratch);
            assert_eq!(batch[i], serial, "batch drift on doc {i}");
            // The single-doc fast path agrees too.
            assert_eq!(ex.predict_one(m, d), serial, "fast-path drift on doc {i}");
        }
    }

    #[test]
    fn concurrent_single_doc_requests_are_consistent() {
        let corpus = generate(Domain::Fara, 55, 12);
        let lex = Lexicon::pretrain(&corpus.documents);
        let frozen =
            Extractor::train_on(&corpus.schema, lex, &corpus, &[], &TrainConfig::tiny()).freeze();
        let probe = generate(Domain::Fara, 56, 6).documents;
        let mut scratch = InferScratch::default();
        let expected: Vec<_> = probe
            .iter()
            .map(|d| frozen.predict_scored(d, &mut scratch))
            .collect();
        let ex = Executor::new(4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for (d, want) in probe.iter().zip(&expected) {
                        assert_eq!(&ex.predict_one(&frozen, d), want);
                    }
                });
            }
        });
    }
}
