//! The inference executor: a persistent worker pool with per-worker
//! [`InferScratch`] reuse and per-document panic isolation.
//!
//! Scratches are allocated once at startup and reused for every request,
//! so a warm server performs no per-request scratch allocation. The
//! scratch's own model-token check handles multi-model traffic: reusing
//! a scratch against a different model resets only its row cache.
//!
//! Panic isolation: every prediction runs under `catch_unwind` *inside*
//! the scratch lock, so a panicking decode (a model bug, or an injected
//! chaos fault) is caught before it can unwind through the mutex guard —
//! the mutex is never poisoned on this path. The panicked scratch is
//! replaced with a fresh [`InferScratch`] (its buffers may be mid-write,
//! so reuse would be unsound for correctness even though it is plain
//! data) and only the offending document's result becomes an error.
//! Should a scratch mutex be poisoned by some other path anyway, locking
//! recovers by swapping in a fresh scratch instead of panicking forever —
//! the pre-PR `.expect("scratch poisoned")` turned one panic into a
//! permanently dead executor.
//!
//! The [`WorkerPool`] broadcast protocol forbids overlapping batches, so
//! the pool sits behind a `Mutex` — concurrent batch requests serialize
//! on it. Single-document requests (the common online case) skip the
//! pool entirely and run on the connection thread with a round-robin
//! scratch, so they proceed concurrently with each other and with any
//! in-flight batch.

use crate::chaos::Chaos;
use fieldswap_docmodel::{Document, EntitySpan};
use fieldswap_extract::{FrozenModel, InferScratch};
use fieldswap_parallel::{effective_jobs, WorkerPool};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Scored spans for one document: `(span, confidence)` pairs.
pub type ScoredSpans = Vec<(EntitySpan, f32)>;

/// One document's prediction outcome: spans, or the rendered panic
/// payload if the decode panicked. The executor never panics outward.
pub type PredictResult = Result<ScoredSpans, String>;

/// A persistent inference executor. One per server.
pub struct Executor {
    pool: Mutex<WorkerPool>,
    scratches: Vec<Mutex<InferScratch>>,
    rr: AtomicUsize,
    chaos: Option<Arc<Chaos>>,
}

/// Renders a `catch_unwind` payload as text.
fn payload_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Executor {
    /// An executor with `jobs` workers (0 = all cores, 1 = run inline).
    pub fn new(jobs: usize) -> Self {
        Self::with_chaos(jobs, None)
    }

    /// An executor with an optional fault-injection plan. `None` is the
    /// production configuration and runs the exact clean-path code.
    pub fn with_chaos(jobs: usize, chaos: Option<Arc<Chaos>>) -> Self {
        let jobs = effective_jobs(jobs);
        Self {
            pool: Mutex::new(WorkerPool::new(jobs)),
            scratches: (0..jobs)
                .map(|_| Mutex::new(InferScratch::default()))
                .collect(),
            rr: AtomicUsize::new(0),
            chaos,
        }
    }

    /// Number of workers (and scratches).
    pub fn jobs(&self) -> usize {
        self.scratches.len()
    }

    /// Locks scratch `i`, recovering from poisoning by replacing the
    /// scratch with a fresh one — a poisoned scratch must cost one
    /// warmup, never the executor.
    fn lock_scratch(&self, i: usize) -> MutexGuard<'_, InferScratch> {
        match self.scratches[i].lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                fieldswap_obs::counter_add("fieldswap_serve_scratch_replaced_total", 1);
                self.scratches[i].clear_poison();
                let mut guard = poisoned.into_inner();
                *guard = InferScratch::default();
                guard
            }
        }
    }

    /// One panic-isolated prediction on worker `worker`'s scratch.
    fn predict_guarded(&self, worker: usize, model: &FrozenModel, doc: &Document) -> PredictResult {
        let mut scratch = self.lock_scratch(worker);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(chaos) = &self.chaos {
                chaos.on_infer();
            }
            model.predict_scored(doc, &mut scratch)
        }));
        outcome.map_err(|payload| {
            // The scratch may be mid-write; replace it rather than trust
            // its invariants. The mutex itself was never poisoned — the
            // unwind stopped inside the guard's lifetime.
            *scratch = InferScratch::default();
            fieldswap_obs::counter_add("fieldswap_serve_panics_total", 1);
            let text = payload_text(payload);
            fieldswap_obs::warn!("inference panic on doc {:?}: {text}", doc.id);
            text
        })
    }

    /// Scored prediction for one document on the calling thread, using a
    /// round-robin scratch. No pool broadcast, so concurrent calls run
    /// truly in parallel across connection threads.
    pub fn predict_one(&self, model: &FrozenModel, doc: &Document) -> PredictResult {
        let i = self.rr.fetch_add(1, Ordering::Relaxed) % self.scratches.len();
        self.predict_guarded(i, model, doc)
    }

    /// Scored predictions for a batch, fanned over the worker pool with
    /// each worker reusing its own scratch. `models[i]` is the routed
    /// model for `docs[i]` — a mixed-domain batch is fine. A panicking
    /// document yields `Err` in its own slot; the rest of the batch
    /// completes normally.
    pub fn predict_batch(&self, models: &[&FrozenModel], docs: &[Document]) -> Vec<PredictResult> {
        assert_eq!(models.len(), docs.len());
        if docs.len() <= 1 {
            return docs
                .iter()
                .zip(models)
                .map(|(d, m)| self.predict_one(m, d))
                .collect();
        }
        let slots: Vec<Mutex<Option<PredictResult>>> =
            (0..docs.len()).map(|_| Mutex::new(None)).collect();
        {
            // Broadcasts must not overlap: hold the pool for the batch.
            // The closure below never unwinds (predict_guarded catches),
            // so the pool mutex cannot be poisoned by a decode panic;
            // recover anyway rather than add a new panic path.
            let pool = self
                .pool
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            pool.fill_slots(&slots, |worker, item| {
                self.predict_guarded(worker, models[item], &docs[item])
            });
        }
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .unwrap_or_else(|| Err("batch slot left unfilled".to_string()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::FaultPlan;
    use fieldswap_datagen::{generate, Domain};
    use fieldswap_extract::{Extractor, Lexicon, TrainConfig};

    fn train(domain: Domain, seed: u64, docs: usize) -> FrozenModel {
        let corpus = generate(domain, seed, docs);
        let lex = Lexicon::pretrain(&corpus.documents);
        Extractor::train_on(&corpus.schema, lex, &corpus, &[], &TrainConfig::tiny()).freeze()
    }

    #[test]
    fn batch_matches_serial_prediction_across_models() {
        let fara = train(Domain::Fara, 51, 12);
        let earn = train(Domain::Earnings, 52, 12);
        let mut docs = generate(Domain::Fara, 53, 4).documents;
        docs.extend(generate(Domain::Earnings, 54, 4).documents);
        let models: Vec<&FrozenModel> = (0..8).map(|i| if i < 4 { &fara } else { &earn }).collect();

        let ex = Executor::new(3);
        let batch = ex.predict_batch(&models, &docs);
        let mut scratch = InferScratch::default();
        for (i, (m, d)) in models.iter().zip(&docs).enumerate() {
            let serial = m.predict_scored(d, &mut scratch);
            assert_eq!(
                batch[i].as_ref().unwrap(),
                &serial,
                "batch drift on doc {i}"
            );
            // The single-doc fast path agrees too.
            assert_eq!(
                ex.predict_one(m, d).unwrap(),
                serial,
                "fast-path drift on doc {i}"
            );
        }
    }

    #[test]
    fn concurrent_single_doc_requests_are_consistent() {
        let frozen = train(Domain::Fara, 55, 12);
        let probe = generate(Domain::Fara, 56, 6).documents;
        let mut scratch = InferScratch::default();
        let expected: Vec<_> = probe
            .iter()
            .map(|d| frozen.predict_scored(d, &mut scratch))
            .collect();
        let ex = Executor::new(4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for (d, want) in probe.iter().zip(&expected) {
                        assert_eq!(&ex.predict_one(&frozen, d).unwrap(), want);
                    }
                });
            }
        });
    }

    #[test]
    fn injected_panic_fails_one_doc_and_the_next_request_succeeds() {
        // Regression test for poisoned-mutex permanence: before this PR
        // a panic inside predict_scored poisoned the scratch mutex and
        // every later request panicked on `.expect("scratch poisoned")`.
        let frozen = train(Domain::Fara, 57, 12);
        let probe = generate(Domain::Fara, 58, 3).documents;
        let mut scratch = InferScratch::default();
        let expected: Vec<_> = probe
            .iter()
            .map(|d| frozen.predict_scored(d, &mut scratch))
            .collect();

        // One worker, so the panicked scratch is the only scratch: the
        // very next request must reuse (and have recovered) it.
        let chaos = Arc::new(Chaos::new(FaultPlan::parse("panic-doc=0").unwrap()));
        let ex = Executor::with_chaos(1, Some(chaos));
        let err = ex.predict_one(&frozen, &probe[0]).unwrap_err();
        assert!(err.contains("chaos"), "{err}");
        for (d, want) in probe.iter().zip(&expected) {
            assert_eq!(&ex.predict_one(&frozen, d).unwrap(), want);
        }
    }

    #[test]
    fn batch_with_panicking_doc_fails_only_that_slot() {
        let frozen = train(Domain::Fara, 59, 12);
        let docs = generate(Domain::Fara, 60, 5).documents;
        let models: Vec<&FrozenModel> = docs.iter().map(|_| &frozen).collect();
        let mut scratch = InferScratch::default();
        let expected: Vec<_> = docs
            .iter()
            .map(|d| frozen.predict_scored(d, &mut scratch))
            .collect();

        // Exactly one of the 5 docs panics (which slot depends on pool
        // scheduling, the count does not).
        let chaos = Arc::new(Chaos::new(FaultPlan::parse("panic-doc=2").unwrap()));
        let ex = Executor::with_chaos(2, Some(chaos));
        let batch = ex.predict_batch(&models, &docs);
        let failed = batch.iter().filter(|r| r.is_err()).count();
        assert_eq!(failed, 1, "{batch:?}");
        // The survivors are bitwise-correct, and a clean follow-up batch
        // is fully correct again.
        for (i, r) in batch.iter().enumerate() {
            if let Ok(spans) = r {
                assert_eq!(spans, &expected[i]);
            }
        }
        let clean = ex.predict_batch(&models, &docs);
        for (i, r) in clean.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &expected[i], "post-panic drift on {i}");
        }
    }

    #[test]
    fn poisoned_scratch_mutex_is_replaced_not_fatal() {
        let frozen = train(Domain::Fara, 61, 12);
        let doc = generate(Domain::Fara, 62, 1).documents.remove(0);
        let mut scratch = InferScratch::default();
        let expected = frozen.predict_scored(&doc, &mut scratch);

        let ex = Executor::new(1);
        // Poison the only scratch mutex the hard way: panic while
        // holding its guard.
        let poison = catch_unwind(AssertUnwindSafe(|| {
            let _guard = ex.scratches[0].lock().unwrap();
            panic!("poison the scratch");
        }));
        assert!(poison.is_err());
        assert!(ex.scratches[0].is_poisoned());
        assert_eq!(ex.predict_one(&frozen, &doc).unwrap(), expected);
        assert!(!ex.scratches[0].is_poisoned());
    }
}
