//! The HTTP/JSON service: endpoint dispatch, request parsing, routed
//! batched inference, and per-stage instrumentation.
//!
//! Built on the dependency-free [`HttpServer`] from `fieldswap-obs`, so
//! the whole service — observability included — runs on `std` alone.
//!
//! Endpoints:
//!
//! * `POST /v1/extract` — body `{"documents": [Document, …], "model":
//!   "name"?}`. Each document is routed (or pinned to `"model"`) and
//!   decoded on the frozen fast path; the response carries per-field
//!   values, confidences, and boxes.
//! * `GET /models` — the registered models and their fields.
//! * `POST /reload` — atomically reload the registry from the model
//!   directory; in-flight requests keep the snapshot they started with.
//! * `GET /metrics` — Prometheus exposition (request counters, per-stage
//!   latency histograms `fieldswap_serve_stage_ms{stage=…}`).
//! * `GET /healthz` — liveness.
//! * `POST /quitquitquit` — orderly shutdown (for CI and scripts).

use crate::executor::Executor;
use crate::registry::{match_score, ModelEntry, Registry, RegistrySnapshot};
use fieldswap_docmodel::Document;
use fieldswap_extract::FrozenModel;
use fieldswap_obs::{Collector, Handler, HttpRequest, HttpResponse, HttpServer};
use serde::{Deserialize, Value};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Server configuration.
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 for ephemeral).
    pub listen: String,
    /// Model directory for startup load and `/reload`. `None` disables
    /// reload (registry fixed to `initial`).
    pub models_dir: Option<PathBuf>,
    /// A pre-built registry to serve instead of loading `models_dir` at
    /// startup (tests and benchmarks).
    pub initial: Option<RegistrySnapshot>,
    /// Inference workers (0 = all cores).
    pub workers: usize,
    /// Quantize models to int8 at (re)load time.
    pub quantized: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".into(),
            models_dir: None,
            initial: None,
            workers: 0,
            quantized: false,
        }
    }
}

struct ServeState {
    registry: Registry,
    executor: Executor,
    models_dir: Option<PathBuf>,
    quantized: bool,
    collector: &'static Collector,
    quit_tx: Mutex<Sender<()>>,
}

/// A running extraction server.
pub struct ServeHandle {
    http: HttpServer,
    quit_rx: Receiver<()>,
}

impl ServeHandle {
    /// Loads the registry and starts serving. Metrics recording on the
    /// global collector is enabled so `/metrics` is live from the start.
    pub fn start(cfg: ServeConfig) -> Result<ServeHandle, String> {
        let snapshot = match (cfg.initial, &cfg.models_dir) {
            (Some(snap), _) => snap,
            (None, Some(dir)) => RegistrySnapshot::load_dir(dir, cfg.quantized)?,
            (None, None) => RegistrySnapshot::empty(),
        };
        let collector = fieldswap_obs::global();
        collector.enable_metrics();
        let (quit_tx, quit_rx) = std::sync::mpsc::channel();
        let state = Arc::new(ServeState {
            registry: Registry::new(snapshot),
            executor: Executor::new(cfg.workers),
            models_dir: cfg.models_dir,
            quantized: cfg.quantized,
            collector,
            quit_tx: Mutex::new(quit_tx),
        });
        let handler: Handler = Arc::new(move |req: &HttpRequest| state.handle(req));
        let http = HttpServer::start(&cfg.listen, "fieldswap-serve", handler)
            .map_err(|e| format!("binding listener: {e}"))?;
        Ok(ServeHandle { http, quit_rx })
    }

    /// The bound address (resolves an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.http.addr()
    }

    /// Blocks until a client POSTs `/quitquitquit`.
    pub fn wait_for_quit(&self) {
        let _ = self.quit_rx.recv();
    }

    /// Stops accepting connections and joins the accept thread.
    pub fn shutdown(self) {
        self.http.shutdown()
    }
}

/// A request failure: status code + message for the body.
struct Reject(u16, String);

impl ServeState {
    fn handle(&self, req: &HttpRequest) -> HttpResponse {
        let endpoint = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => "healthz",
            ("GET", "/metrics") => "metrics",
            ("GET", "/models") => "models",
            ("POST", "/reload") => "reload",
            ("POST", "/v1/extract") => "extract",
            ("POST", "/quitquitquit") => "quit",
            (
                _,
                "/healthz" | "/metrics" | "/models" | "/reload" | "/v1/extract" | "/quitquitquit",
            ) => return self.reject(Reject(405, "method not allowed\n".into())),
            _ => return self.reject(Reject(404, "not found\n".into())),
        };
        self.collector.counter_add(
            &format!("fieldswap_serve_requests_total{{endpoint=\"{endpoint}\"}}"),
            1,
        );
        match endpoint {
            "healthz" => HttpResponse::text(200, "ok\n"),
            "metrics" => HttpResponse {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: self.collector.render_prometheus().into_bytes(),
            },
            "models" => self.models_response(),
            "reload" => match self.reload() {
                Ok(n) => HttpResponse::json(200, format!("{{\"reloaded\":true,\"models\":{n}}}\n")),
                Err(Reject(status, msg)) => self.reject(Reject(status, msg)),
            },
            "quit" => {
                let _ = self.quit_tx.lock().expect("quit poisoned").send(());
                HttpResponse::text(200, "shutting down\n")
            }
            _ => match self.extract(&req.body) {
                Ok(resp) => resp,
                Err(r) => self.reject(r),
            },
        }
    }

    fn reject(&self, Reject(status, msg): Reject) -> HttpResponse {
        self.collector.counter_add(
            &format!("fieldswap_serve_errors_total{{code=\"{status}\"}}"),
            1,
        );
        HttpResponse::text(status, msg)
    }

    fn observe_stage(&self, stage: &str, since: Instant) {
        self.collector.observe(
            &format!("fieldswap_serve_stage_ms{{stage=\"{stage}\"}}"),
            since.elapsed().as_secs_f64() * 1e3,
        );
    }

    fn models_response(&self) -> HttpResponse {
        let snap = self.registry.snapshot();
        let models: Vec<Value> = snap
            .entries()
            .iter()
            .map(|e| {
                Value::Object(vec![
                    ("name".into(), Value::Str(e.name.clone())),
                    (
                        "fields".into(),
                        Value::Array(
                            e.field_names
                                .iter()
                                .map(|f| Value::Str(f.clone()))
                                .collect(),
                        ),
                    ),
                    ("quantized".into(), Value::Bool(e.model.is_quantized())),
                ])
            })
            .collect();
        let body = Value::Object(vec![("models".into(), Value::Array(models))]);
        HttpResponse::json(200, serde_json::to_string(&body).expect("static shape"))
    }

    fn reload(&self) -> Result<usize, Reject> {
        let Some(dir) = &self.models_dir else {
            return Err(Reject(409, "server has no model directory\n".into()));
        };
        let snap = RegistrySnapshot::load_dir(dir, self.quantized)
            .map_err(|e| Reject(500, format!("reload failed: {e}\n")))?;
        let n = snap.entries().len();
        self.registry.replace(snap);
        self.collector
            .counter_add("fieldswap_serve_reloads_total", 1);
        Ok(n)
    }

    fn extract(&self, body: &[u8]) -> Result<HttpResponse, Reject> {
        // Parse: bytes -> JSON -> validated documents.
        let t_parse = Instant::now();
        let text = std::str::from_utf8(body)
            .map_err(|_| Reject(400, "body is not valid UTF-8\n".into()))?;
        let value: Value = serde_json::from_str(text)
            .map_err(|e| Reject(400, format!("malformed JSON: {e}\n")))?;
        let docs_value = value
            .get("documents")
            .ok_or_else(|| Reject(422, "missing \"documents\" array\n".into()))?;
        let docs: Vec<Document> = Vec::deserialize_docs(docs_value)
            .map_err(|e| Reject(422, format!("bad document: {e}\n")))?;
        for d in &docs {
            d.validate()
                .map_err(|e| Reject(422, format!("invalid document {:?}: {e}\n", d.id)))?;
        }
        let pinned = match value.get("model") {
            None | Some(Value::Null) => None,
            Some(Value::Str(name)) => Some(name.clone()),
            Some(_) => return Err(Reject(422, "\"model\" must be a string\n".into())),
        };
        self.observe_stage("parse", t_parse);

        // Route: resolve each document to a registered model.
        let t_route = Instant::now();
        let snap = self.registry.snapshot();
        if snap.entries().is_empty() {
            return Err(Reject(503, "no models registered\n".into()));
        }
        let routed: Vec<(&ModelEntry, f32)> = if let Some(name) = &pinned {
            let entry = snap
                .get(name)
                .ok_or_else(|| Reject(404, format!("unknown model {name:?}\n")))?;
            docs.iter()
                .map(|d| (entry, match_score(entry.model.lexicon(), d)))
                .collect()
        } else {
            docs.iter()
                .map(|d| {
                    let (i, score) = snap.route(d).expect("non-empty registry");
                    (&snap.entries()[i], score)
                })
                .collect()
        };
        self.observe_stage("route", t_route);

        // Infer: batched over the worker pool, per-worker scratch.
        let t_infer = Instant::now();
        let models: Vec<&FrozenModel> = routed.iter().map(|(e, _)| e.model.as_ref()).collect();
        let predictions = self.executor.predict_batch(&models, &docs);
        self.observe_stage("infer", t_infer);
        self.collector
            .counter_add("fieldswap_serve_documents_total", docs.len() as u64);

        // Respond: render values, confidences, and boxes.
        let t_respond = Instant::now();
        let results: Vec<Value> = docs
            .iter()
            .zip(&routed)
            .zip(&predictions)
            .map(|((doc, (entry, route_score)), spans)| {
                let fields: Vec<Value> = spans
                    .iter()
                    .map(|(s, confidence)| {
                        let b = doc.span_bbox(s.start, s.end);
                        Value::Object(vec![
                            ("field".into(), Value::Int(i64::from(s.field))),
                            (
                                "name".into(),
                                Value::Str(
                                    entry
                                        .field_names
                                        .get(s.field as usize)
                                        .cloned()
                                        .unwrap_or_else(|| format!("field-{}", s.field)),
                                ),
                            ),
                            ("value".into(), Value::Str(doc.span_text(s.start, s.end))),
                            ("confidence".into(), Value::Float(f64::from(*confidence))),
                            ("start".into(), Value::Int(i64::from(s.start))),
                            ("end".into(), Value::Int(i64::from(s.end))),
                            (
                                "box".into(),
                                Value::Object(vec![
                                    ("x0".into(), Value::Float(f64::from(b.x0))),
                                    ("y0".into(), Value::Float(f64::from(b.y0))),
                                    ("x1".into(), Value::Float(f64::from(b.x1))),
                                    ("y1".into(), Value::Float(f64::from(b.y1))),
                                ]),
                            ),
                        ])
                    })
                    .collect();
                Value::Object(vec![
                    ("doc_id".into(), Value::Str(doc.id.clone())),
                    ("model".into(), Value::Str(entry.name.clone())),
                    ("route_score".into(), Value::Float(f64::from(*route_score))),
                    ("fields".into(), Value::Array(fields)),
                ])
            })
            .collect();
        let body = Value::Object(vec![("results".into(), Value::Array(results))]);
        let rendered = serde_json::to_string(&body).expect("static shape");
        self.observe_stage("respond", t_respond);
        Ok(HttpResponse::json(200, rendered))
    }
}

/// Helper trait so document deserialization reads as one call above.
trait DeserializeDocs: Sized {
    fn deserialize_docs(v: &Value) -> Result<Self, serde::Error>;
}

impl DeserializeDocs for Vec<Document> {
    fn deserialize_docs(v: &Value) -> Result<Self, serde::Error> {
        Deserialize::from_value(v)
    }
}
