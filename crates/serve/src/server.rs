//! The HTTP/JSON service: endpoint dispatch, request parsing, routed
//! batched inference, per-stage instrumentation, and the overload
//! armor — admission control, per-request deadlines, panic isolation,
//! and a `/reload` circuit breaker.
//!
//! Built on the dependency-free [`HttpServer`] from `fieldswap-obs`, so
//! the whole service — observability included — runs on `std` alone.
//!
//! Endpoints:
//!
//! * `POST /v1/extract` — body `{"documents": [Document, …], "model":
//!   "name"?, "timeout_ms": N?}`. Each document is routed (or pinned to
//!   `"model"`) and decoded on the frozen fast path; the response
//!   carries per-field values, confidences, and boxes.
//! * `GET /models` — the registered models and their fields.
//! * `POST /reload` — atomically reload the registry from the model
//!   directory; in-flight requests keep the snapshot they started with.
//! * `GET /metrics` — Prometheus exposition (request counters, per-stage
//!   latency histograms `fieldswap_serve_stage_ms{stage=…}`).
//! * `GET /healthz` — liveness.
//! * `POST /quitquitquit` — orderly shutdown (for CI and scripts).
//!
//! Overload semantics (see README "Overload, deadlines, and fault
//! tolerance"):
//!
//! * **Admission control** — `/v1/extract` holds a slot in a bounded
//!   inflight budget (`max_inflight`); when the budget is full the
//!   request is shed immediately with `503` + `Retry-After` and
//!   `fieldswap_serve_shed_total` ticks. `/healthz` and `/metrics` are
//!   never shed — liveness and visibility must survive overload.
//!   Requests carrying more than `max_docs_per_request` documents get
//!   `413` before any work is done.
//! * **Deadlines** — a request may carry `"timeout_ms"`; the server may
//!   also impose `default_deadline_ms`. The effective deadline (the
//!   tighter of the two) is checked between the parse → route → infer →
//!   respond stages — in particular *before* dispatching to the worker
//!   pool — and an exceeded deadline returns `504`, counted per stage in
//!   `fieldswap_serve_deadline_exceeded_total{stage=…}`.
//! * **Panic isolation** — a panicking decode fails only its own request
//!   with `500` (`fieldswap_serve_panics_total`); the worker scratch is
//!   replaced and every other request proceeds.
//! * **Reload circuit breaker** — after
//!   [`RELOAD_BREAKER_THRESHOLD`] consecutive `/reload` failures the
//!   breaker opens: reload answers `503` + `Retry-After` instantly for
//!   [`RELOAD_BREAKER_COOLDOWN`] instead of re-reading a known-bad
//!   directory, then half-opens to admit one probe attempt.

use crate::chaos::{Chaos, FaultPlan};
use crate::executor::Executor;
use crate::registry::{match_score, ModelEntry, Registry, RegistrySnapshot};
use fieldswap_docmodel::Document;
use fieldswap_extract::FrozenModel;
use fieldswap_obs::{Collector, Handler, HttpRequest, HttpResponse, HttpServer};
use serde::{Deserialize, Value};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Consecutive `/reload` failures that open the circuit breaker.
pub const RELOAD_BREAKER_THRESHOLD: u32 = 3;

/// How long an open reload breaker answers `503` before half-opening.
pub const RELOAD_BREAKER_COOLDOWN: Duration = Duration::from_secs(2);

/// `Retry-After` seconds advertised on shed (`503`) responses.
pub const RETRY_AFTER_SECS: u64 = 1;

/// Server configuration.
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 for ephemeral).
    pub listen: String,
    /// Model directory for startup load and `/reload`. `None` disables
    /// reload (registry fixed to `initial`).
    pub models_dir: Option<PathBuf>,
    /// A pre-built registry to serve instead of loading `models_dir` at
    /// startup (tests and benchmarks).
    pub initial: Option<RegistrySnapshot>,
    /// Inference workers (0 = all cores).
    pub workers: usize,
    /// Quantize models to int8 at (re)load time.
    pub quantized: bool,
    /// Admission budget for `/v1/extract`: concurrent requests beyond
    /// this are shed with `503` + `Retry-After`. 0 disables admission
    /// control (the library default, preserving pre-PR behavior; the
    /// `fieldswap-serve serve` binary defaults to a bounded budget).
    pub max_inflight: usize,
    /// Maximum documents per `/v1/extract` request (`413` beyond it).
    /// 0 disables the cap.
    pub max_docs_per_request: usize,
    /// Server-imposed deadline for `/v1/extract` in milliseconds,
    /// measured from request handling start. 0 disables it. A request's
    /// own `"timeout_ms"` can only tighten the effective deadline.
    pub default_deadline_ms: u64,
    /// Deterministic fault injection (the hidden `--chaos` flag). `None`
    /// — the default — runs the exact clean-path code.
    pub chaos: Option<FaultPlan>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".into(),
            models_dir: None,
            initial: None,
            workers: 0,
            quantized: false,
            max_inflight: 0,
            max_docs_per_request: 0,
            default_deadline_ms: 0,
            chaos: None,
        }
    }
}

struct ServeState {
    registry: Registry,
    executor: Executor,
    models_dir: Option<PathBuf>,
    quantized: bool,
    collector: &'static Collector,
    // `Sender` is `Sync` for `()` sends; no lock (and no lock-poison
    // panic path) needed.
    quit_tx: Sender<()>,
    max_inflight: usize,
    max_docs_per_request: usize,
    default_deadline_ms: u64,
    inflight: AtomicUsize,
    chaos: Option<Arc<Chaos>>,
    /// Consecutive `/reload` failures (reset on success).
    reload_failures: AtomicU32,
    /// While `Some(t)` and `now < t`, the reload breaker is open.
    breaker_until: Mutex<Option<Instant>>,
}

/// A running extraction server.
pub struct ServeHandle {
    http: HttpServer,
    quit_rx: Receiver<()>,
}

impl ServeHandle {
    /// Loads the registry and starts serving. Metrics recording on the
    /// global collector is enabled so `/metrics` is live from the start.
    pub fn start(cfg: ServeConfig) -> Result<ServeHandle, String> {
        let snapshot = match (cfg.initial, &cfg.models_dir) {
            (Some(snap), _) => snap,
            (None, Some(dir)) => RegistrySnapshot::load_dir(dir, cfg.quantized)?,
            (None, None) => RegistrySnapshot::empty(),
        };
        let collector = fieldswap_obs::global();
        collector.enable_metrics();
        let (quit_tx, quit_rx) = std::sync::mpsc::channel();
        let chaos = cfg.chaos.map(|plan| Arc::new(Chaos::new(plan)));
        let state = Arc::new(ServeState {
            registry: Registry::new(snapshot),
            executor: Executor::with_chaos(cfg.workers, chaos.clone()),
            models_dir: cfg.models_dir,
            quantized: cfg.quantized,
            collector,
            quit_tx,
            max_inflight: cfg.max_inflight,
            max_docs_per_request: cfg.max_docs_per_request,
            default_deadline_ms: cfg.default_deadline_ms,
            inflight: AtomicUsize::new(0),
            chaos,
            reload_failures: AtomicU32::new(0),
            breaker_until: Mutex::new(None),
        });
        let handler: Handler = Arc::new(move |req: &HttpRequest| state.handle(req));
        let http = HttpServer::start(&cfg.listen, "fieldswap-serve", handler)
            .map_err(|e| format!("binding listener: {e}"))?;
        Ok(ServeHandle { http, quit_rx })
    }

    /// The bound address (resolves an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.http.addr()
    }

    /// Blocks until a client POSTs `/quitquitquit`.
    pub fn wait_for_quit(&self) {
        let _ = self.quit_rx.recv();
    }

    /// Stops accepting connections and joins the accept thread.
    pub fn shutdown(self) {
        self.http.shutdown()
    }
}

/// A request failure: status code + message for the body, plus an
/// optional `Retry-After` (seconds) header for shed responses.
struct Reject {
    status: u16,
    msg: String,
    retry_after: Option<u64>,
}

impl Reject {
    fn new(status: u16, msg: impl Into<String>) -> Self {
        Self {
            status,
            msg: msg.into(),
            retry_after: None,
        }
    }

    fn retry_after(mut self, secs: u64) -> Self {
        self.retry_after = Some(secs);
        self
    }
}

/// RAII admission slot: decrements the inflight count (and refreshes
/// the gauge) on drop, so the budget survives any exit path — including
/// a panicking handler.
struct InflightSlot<'a>(&'a ServeState);

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        let now = self.0.inflight.fetch_sub(1, Ordering::AcqRel) - 1;
        self.0
            .collector
            .gauge_set("fieldswap_serve_inflight", now as f64);
    }
}

impl ServeState {
    fn handle(&self, req: &HttpRequest) -> HttpResponse {
        let endpoint = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => "healthz",
            ("GET", "/metrics") => "metrics",
            ("GET", "/models") => "models",
            ("POST", "/reload") => "reload",
            ("POST", "/v1/extract") => "extract",
            ("POST", "/quitquitquit") => "quit",
            (
                _,
                "/healthz" | "/metrics" | "/models" | "/reload" | "/v1/extract" | "/quitquitquit",
            ) => return self.reject(Reject::new(405, "method not allowed\n")),
            _ => return self.reject(Reject::new(404, "not found\n")),
        };
        self.collector.counter_add(
            &format!("fieldswap_serve_requests_total{{endpoint=\"{endpoint}\"}}"),
            1,
        );
        match endpoint {
            // Liveness and visibility are never shed: they bypass
            // admission control entirely so overload stays observable.
            "healthz" => HttpResponse::text(200, "ok\n"),
            "metrics" => HttpResponse::with_body(
                200,
                "text/plain; version=0.0.4",
                self.collector.render_prometheus().into_bytes(),
            ),
            "models" => self.models_response(),
            "reload" => match self.reload() {
                Ok(n) => HttpResponse::json(200, format!("{{\"reloaded\":true,\"models\":{n}}}\n")),
                Err(r) => self.reject(r),
            },
            "quit" => {
                let _ = self.quit_tx.send(());
                HttpResponse::text(200, "shutting down\n")
            }
            _ => {
                let _slot = match self.admit() {
                    Ok(slot) => slot,
                    Err(r) => return self.reject(r),
                };
                match self.extract(&req.body) {
                    Ok(resp) => resp,
                    Err(r) => self.reject(r),
                }
            }
        }
    }

    /// Admission control for `/v1/extract`: claims an inflight slot or
    /// sheds with `503` + `Retry-After` when the budget is exhausted.
    fn admit(&self) -> Result<InflightSlot<'_>, Reject> {
        let prev = self.inflight.fetch_add(1, Ordering::AcqRel);
        if self.max_inflight > 0 && prev >= self.max_inflight {
            // Over budget: hand the increment straight back via the
            // slot's drop and shed.
            drop(InflightSlot(self));
            self.collector.counter_add("fieldswap_serve_shed_total", 1);
            return Err(Reject::new(
                503,
                format!(
                    "server at capacity ({} inflight requests); retry later\n",
                    self.max_inflight
                ),
            )
            .retry_after(RETRY_AFTER_SECS));
        }
        self.collector
            .gauge_set("fieldswap_serve_inflight", (prev + 1) as f64);
        Ok(InflightSlot(self))
    }

    fn reject(&self, reject: Reject) -> HttpResponse {
        self.collector.counter_add(
            &format!("fieldswap_serve_errors_total{{code=\"{}\"}}", reject.status),
            1,
        );
        let resp = HttpResponse::text(reject.status, reject.msg);
        match reject.retry_after {
            Some(secs) => resp.with_header("Retry-After", secs.to_string()),
            None => resp,
        }
    }

    /// Fails with `504` when `deadline` has passed. Called between the
    /// request stages — `stage` names the one just finished, so the
    /// `route` check is also the dispatch barrier: an already-expired
    /// request never reaches the worker pool.
    fn check_deadline(&self, deadline: Option<Instant>, stage: &str) -> Result<(), Reject> {
        let Some(deadline) = deadline else {
            return Ok(());
        };
        if Instant::now() >= deadline {
            self.collector.counter_add(
                &format!("fieldswap_serve_deadline_exceeded_total{{stage=\"{stage}\"}}"),
                1,
            );
            return Err(Reject::new(
                504,
                format!("deadline exceeded after {stage} stage\n"),
            ));
        }
        Ok(())
    }

    fn observe_stage(&self, stage: &str, since: Instant) {
        self.collector.observe(
            &format!("fieldswap_serve_stage_ms{{stage=\"{stage}\"}}"),
            since.elapsed().as_secs_f64() * 1e3,
        );
    }

    fn models_response(&self) -> HttpResponse {
        let snap = self.registry.snapshot();
        let models: Vec<Value> = snap
            .entries()
            .iter()
            .map(|e| {
                Value::Object(vec![
                    ("name".into(), Value::Str(e.name.clone())),
                    (
                        "fields".into(),
                        Value::Array(
                            e.field_names
                                .iter()
                                .map(|f| Value::Str(f.clone()))
                                .collect(),
                        ),
                    ),
                    ("quantized".into(), Value::Bool(e.model.is_quantized())),
                ])
            })
            .collect();
        let body = Value::Object(vec![("models".into(), Value::Array(models))]);
        match serde_json::to_string(&body) {
            Ok(s) => HttpResponse::json(200, s),
            Err(e) => self.reject(Reject::new(500, format!("serialization failed: {e}\n"))),
        }
    }

    fn reload(&self) -> Result<usize, Reject> {
        let Some(dir) = &self.models_dir else {
            return Err(Reject::new(409, "server has no model directory\n"));
        };
        // Circuit breaker: after RELOAD_BREAKER_THRESHOLD consecutive
        // failures, answer 503 instantly for the cool-down instead of
        // re-reading a known-bad directory; afterwards admit one probe.
        {
            let mut until = self.breaker_until.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(t) = *until {
                if Instant::now() < t {
                    self.collector
                        .counter_add("fieldswap_serve_reload_breaker_open_total", 1);
                    return Err(
                        Reject::new(503, "reload circuit breaker open; cooling down\n")
                            .retry_after(RELOAD_BREAKER_COOLDOWN.as_secs()),
                    );
                }
                // Cool-down elapsed: half-open, let this probe through.
                *until = None;
            }
        }
        let loaded = if self.chaos.as_ref().is_some_and(|c| c.fail_reload()) {
            Err("chaos: injected corrupt model directory".to_string())
        } else {
            RegistrySnapshot::load_dir(dir, self.quantized)
        };
        match loaded {
            Ok(snap) => {
                let n = snap.entries().len();
                self.registry.replace(snap);
                self.reload_failures.store(0, Ordering::Relaxed);
                self.collector
                    .counter_add("fieldswap_serve_reloads_total", 1);
                Ok(n)
            }
            Err(e) => {
                let failures = self.reload_failures.fetch_add(1, Ordering::Relaxed) + 1;
                if failures >= RELOAD_BREAKER_THRESHOLD {
                    *self.breaker_until.lock().unwrap_or_else(|e| e.into_inner()) =
                        Some(Instant::now() + RELOAD_BREAKER_COOLDOWN);
                }
                Err(Reject::new(500, format!("reload failed: {e}\n")))
            }
        }
    }

    fn extract(&self, body: &[u8]) -> Result<HttpResponse, Reject> {
        let start = Instant::now();

        // Parse: bytes -> JSON -> validated documents.
        let t_parse = Instant::now();
        let text =
            std::str::from_utf8(body).map_err(|_| Reject::new(400, "body is not valid UTF-8\n"))?;
        let value: Value = serde_json::from_str(text)
            .map_err(|e| Reject::new(400, format!("malformed JSON: {e}\n")))?;
        // The effective deadline is the tighter of the request's own
        // "timeout_ms" and the server default, measured from entry.
        let timeout_ms = match value.get("timeout_ms") {
            None | Some(Value::Null) => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                Reject::new(422, "\"timeout_ms\" must be a non-negative integer\n")
            })?),
        };
        let effective_ms = match (timeout_ms, self.default_deadline_ms) {
            (Some(t), 0) => Some(t),
            (Some(t), d) => Some(t.min(d)),
            (None, 0) => None,
            (None, d) => Some(d),
        };
        let deadline = effective_ms.map(|ms| start + Duration::from_millis(ms));
        let docs_value = value
            .get("documents")
            .ok_or_else(|| Reject::new(422, "missing \"documents\" array\n"))?;
        let docs: Vec<Document> = Vec::deserialize_docs(docs_value)
            .map_err(|e| Reject::new(422, format!("bad document: {e}\n")))?;
        if self.max_docs_per_request > 0 && docs.len() > self.max_docs_per_request {
            return Err(Reject::new(
                413,
                format!(
                    "request carries {} documents; the per-request cap is {}\n",
                    docs.len(),
                    self.max_docs_per_request
                ),
            ));
        }
        for d in &docs {
            d.validate()
                .map_err(|e| Reject::new(422, format!("invalid document {:?}: {e}\n", d.id)))?;
        }
        let pinned = match value.get("model") {
            None | Some(Value::Null) => None,
            Some(Value::Str(name)) => Some(name.clone()),
            Some(_) => return Err(Reject::new(422, "\"model\" must be a string\n")),
        };
        self.observe_stage("parse", t_parse);
        self.check_deadline(deadline, "parse")?;

        // Route: resolve each document to a registered model.
        let t_route = Instant::now();
        let snap = self.registry.snapshot();
        if snap.entries().is_empty() {
            return Err(Reject::new(503, "no models registered\n"));
        }
        let routed: Vec<(&ModelEntry, f32)> = if let Some(name) = &pinned {
            let entry = snap
                .get(name)
                .ok_or_else(|| Reject::new(404, format!("unknown model {name:?}\n")))?;
            docs.iter()
                .map(|d| (entry, match_score(entry.model.lexicon(), d)))
                .collect()
        } else {
            docs.iter()
                .map(|d| {
                    snap.route(d)
                        .map(|(i, score)| (&snap.entries()[i], score))
                        .ok_or_else(|| Reject::new(500, "routing failed on a non-empty registry\n"))
                })
                .collect::<Result<_, _>>()?
        };
        self.observe_stage("route", t_route);
        // The "route" check doubles as the dispatch barrier: an expired
        // request never reaches the worker pool.
        self.check_deadline(deadline, "route")?;

        // Infer: batched over the worker pool, per-worker scratch.
        let t_infer = Instant::now();
        let models: Vec<&FrozenModel> = routed.iter().map(|(e, _)| e.model.as_ref()).collect();
        let outcomes = self.executor.predict_batch(&models, &docs);
        self.observe_stage("infer", t_infer);
        self.collector
            .counter_add("fieldswap_serve_documents_total", docs.len() as u64);
        self.check_deadline(deadline, "infer")?;
        let mut predictions = Vec::with_capacity(outcomes.len());
        for (doc, outcome) in docs.iter().zip(outcomes) {
            match outcome {
                Ok(spans) => predictions.push(spans),
                Err(e) => {
                    return Err(Reject::new(
                        500,
                        format!("inference failed on document {:?}: {e}\n", doc.id),
                    ));
                }
            }
        }

        // Respond: render values, confidences, and boxes.
        let t_respond = Instant::now();
        let results: Vec<Value> = docs
            .iter()
            .zip(&routed)
            .zip(&predictions)
            .map(|((doc, (entry, route_score)), spans)| {
                let fields: Vec<Value> = spans
                    .iter()
                    .map(|(s, confidence)| {
                        let b = doc.span_bbox(s.start, s.end);
                        Value::Object(vec![
                            ("field".into(), Value::Int(i64::from(s.field))),
                            (
                                "name".into(),
                                Value::Str(
                                    entry
                                        .field_names
                                        .get(s.field as usize)
                                        .cloned()
                                        .unwrap_or_else(|| format!("field-{}", s.field)),
                                ),
                            ),
                            ("value".into(), Value::Str(doc.span_text(s.start, s.end))),
                            ("confidence".into(), Value::Float(f64::from(*confidence))),
                            ("start".into(), Value::Int(i64::from(s.start))),
                            ("end".into(), Value::Int(i64::from(s.end))),
                            (
                                "box".into(),
                                Value::Object(vec![
                                    ("x0".into(), Value::Float(f64::from(b.x0))),
                                    ("y0".into(), Value::Float(f64::from(b.y0))),
                                    ("x1".into(), Value::Float(f64::from(b.x1))),
                                    ("y1".into(), Value::Float(f64::from(b.y1))),
                                ]),
                            ),
                        ])
                    })
                    .collect();
                Value::Object(vec![
                    ("doc_id".into(), Value::Str(doc.id.clone())),
                    ("model".into(), Value::Str(entry.name.clone())),
                    ("route_score".into(), Value::Float(f64::from(*route_score))),
                    ("fields".into(), Value::Array(fields)),
                ])
            })
            .collect();
        let body = Value::Object(vec![("results".into(), Value::Array(results))]);
        let rendered = serde_json::to_string(&body)
            .map_err(|e| Reject::new(500, format!("response serialization failed: {e}\n")))?;
        self.observe_stage("respond", t_respond);
        self.check_deadline(deadline, "respond")?;
        Ok(HttpResponse::json(200, rendered))
    }
}

/// Helper trait so document deserialization reads as one call above.
trait DeserializeDocs: Sized {
    fn deserialize_docs(v: &Value) -> Result<Self, serde::Error>;
}

impl DeserializeDocs for Vec<Document> {
    fn deserialize_docs(v: &Value) -> Result<Self, serde::Error> {
        Deserialize::from_value(v)
    }
}
