//! Load generator for the extraction service: starts an in-process
//! server with freshly trained models, hammers it with concurrent
//! clients over real TCP sockets, and reports sustained throughput and
//! p50/p99 latency. `--json PATH` writes the additive-versioned
//! `BENCH_serve.json` consumed by `bench_gate serve`.

use fieldswap_datagen::{generate, Domain};
use fieldswap_extract::{Extractor, Lexicon, TrainConfig};
use fieldswap_serve::{domain_key, ModelEntry, RegistrySnapshot, ServeConfig, ServeHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Additive-versioned schema of `BENCH_serve.json`. Bump when adding
/// fields; the gate only reads fields it knows.
const SCHEMA_VERSION: u64 = 1;

struct Args {
    requests: usize,
    concurrency: usize,
    docs_per_request: usize,
    workers: usize,
    train_docs: usize,
    seed: u64,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        requests: 400,
        concurrency: 4,
        docs_per_request: 1,
        workers: 0,
        train_docs: 15,
        seed: 7,
        json: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = |i: usize| -> Result<&str, String> {
            argv.get(i + 1)
                .map(|s| s.as_str())
                .filter(|v| !v.starts_with("--"))
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag {
            "--requests" => args.requests = num(flag, value(i)?)?,
            "--concurrency" => args.concurrency = num(flag, value(i)?)?,
            "--docs-per-request" => args.docs_per_request = num(flag, value(i)?)?,
            "--workers" => args.workers = num(flag, value(i)?)?,
            "--train-docs" => args.train_docs = num(flag, value(i)?)?,
            "--seed" => args.seed = num(flag, value(i)?)?,
            "--json" => args.json = Some(value(i)?.to_string()),
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    if args.requests == 0 || args.concurrency == 0 || args.docs_per_request == 0 {
        return Err("requests, concurrency, and docs-per-request must be positive".into());
    }
    Ok(args)
}

fn num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("flag {flag}: bad value {v:?}"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn train_entry(domain: Domain, seed: u64, docs: usize) -> ModelEntry {
    let corpus = generate(domain, seed, docs);
    let lex = Lexicon::pretrain(&corpus.documents);
    let frozen =
        Extractor::train_on(&corpus.schema, lex, &corpus, &[], &TrainConfig::tiny()).freeze();
    ModelEntry {
        name: domain_key(domain).into(),
        model: Arc::new(frozen),
        field_names: (0..corpus.schema.len())
            .map(|id| corpus.schema.field(id as u16).name.clone())
            .collect(),
    }
}

/// One HTTP request over a fresh socket; returns latency on HTTP 200.
fn post_extract(addr: SocketAddr, body: &[u8]) -> Result<std::time::Duration, String> {
    let t0 = Instant::now();
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let header = format!(
        "POST /v1/extract HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream
        .write_all(header.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("write: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    if !response.starts_with("HTTP/1.1 200") {
        return Err(format!(
            "non-200 response: {}",
            response.lines().next().unwrap_or("<empty>")
        ));
    }
    Ok(t0.elapsed())
}

fn percentile_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx] as f64 / 1e3
}

fn run(args: &Args) -> Result<(), String> {
    // Train one small model per benchmark domain, fully in memory.
    let domains = [Domain::Fara, Domain::Earnings];
    eprintln!(
        "training {} models ({} docs each)...",
        domains.len(),
        args.train_docs
    );
    let entries: Vec<ModelEntry> = domains
        .iter()
        .enumerate()
        .map(|(i, &d)| train_entry(d, args.seed + i as u64, args.train_docs))
        .collect();
    let snapshot = RegistrySnapshot::from_entries(entries)?;

    let handle = ServeHandle::start(ServeConfig {
        listen: "127.0.0.1:0".into(),
        models_dir: None,
        initial: Some(snapshot),
        workers: args.workers,
        quantized: false,
    })?;
    let addr = handle.addr();
    eprintln!("server on {addr}");

    // Pre-serialize request bodies, alternating domains so routing and
    // multi-model scratch reuse are both on the measured path.
    let bodies: Vec<Vec<u8>> = domains
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let docs = generate(d, args.seed + 100 + i as u64, args.docs_per_request).documents;
            let body = serde::Value::Object(vec![(
                "documents".into(),
                serde::Value::Array(docs.iter().map(serde::Serialize::to_value).collect()),
            )]);
            serde_json::to_string(&body)
                .expect("document tree")
                .into_bytes()
        })
        .collect();

    // Warmup: prime scratches and the row caches off the clock.
    for body in &bodies {
        post_extract(addr, body).map_err(|e| format!("warmup failed: {e}"))?;
    }

    let next = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(args.requests));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..args.concurrency {
            s.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= args.requests {
                        break;
                    }
                    match post_extract(addr, &bodies[i % bodies.len()]) {
                        Ok(lat) => local.push(lat.as_micros() as u64),
                        Err(e) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            eprintln!("request {i} failed: {e}");
                        }
                    }
                }
                latencies.lock().expect("latencies").extend(local);
            });
        }
    });
    let wall = t0.elapsed();
    handle.shutdown();

    let mut lat_us = latencies.into_inner().expect("latencies");
    lat_us.sort_unstable();
    let errors = errors.into_inner();
    let ok = lat_us.len();
    let throughput = ok as f64 / wall.as_secs_f64();
    let p50 = percentile_ms(&lat_us, 50.0);
    let p99 = percentile_ms(&lat_us, 99.0);
    println!(
        "serve_bench: {ok}/{} ok, {errors} errors, {:.1}s wall",
        args.requests,
        wall.as_secs_f64()
    );
    println!("  throughput  {throughput:>10.1} req/s");
    println!("  p50 latency {p50:>10.3} ms");
    println!("  p99 latency {p99:>10.3} ms");

    if errors > 0 {
        return Err(format!("{errors} requests failed"));
    }

    if let Some(path) = &args.json {
        let json = format!(
            "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"seed\": {},\n  \"requests\": {},\n  \"concurrency\": {},\n  \"docs_per_request\": {},\n  \"workers\": {},\n  \"train_docs\": {},\n  \"throughput_rps\": {throughput:.2},\n  \"p50_ms\": {p50:.4},\n  \"p99_ms\": {p99:.4},\n  \"errors\": {errors}\n}}\n",
            args.seed,
            args.requests,
            args.concurrency,
            args.docs_per_request,
            args.workers,
            args.train_docs,
        );
        std::fs::write(path, json).map_err(|e| format!("writing {path:?}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}
