//! Load generator for the extraction service: starts an in-process
//! server with freshly trained models, hammers it with concurrent
//! clients over real TCP sockets, and reports sustained throughput and
//! p50/p99 latency. `--json PATH` writes the additive-versioned
//! `BENCH_serve.json` consumed by `bench_gate serve`.
//!
//! Clients honor overload semantics: a `503` + `Retry-After` response is
//! retried after a deterministic jittered backoff ([`backoff_ms`]), and
//! shed/`503`/`504`/retry totals land in the JSON report alongside
//! `shed_rate` and `availability`.
//!
//! `--chaos SPEC` switches to the chaos harness: the server runs with
//! the same seeded [`FaultPlan`] (injected latency, forced panics,
//! corrupt reloads), stalled-writer clients hold half-written requests,
//! and a healthz prober runs through the whole storm. The run fails
//! unless the availability invariants hold: healthz p99 stays bounded,
//! final `500`s never exceed the injected panic count, and the server
//! fully recovers (all-200 probes) after the fault window.

use fieldswap_datagen::{generate, Domain};
use fieldswap_extract::{Extractor, Lexicon, TrainConfig};
use fieldswap_serve::{
    backoff_ms, domain_key, FaultPlan, ModelEntry, RegistrySnapshot, ServeConfig, ServeHandle,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Additive-versioned schema of `BENCH_serve.json`. Bump when adding
/// fields; the gate only reads fields it knows. v2 adds `shed_503`,
/// `deadline_504`, `retries`, `shed_rate`, and `availability`.
const SCHEMA_VERSION: u64 = 2;

/// How many times a shed request is retried before counting as failed.
const MAX_RETRIES: u64 = 5;

/// Healthz p99 bound asserted by `--chaos` runs.
const HEALTHZ_P99_BOUND_MS: f64 = 250.0;

struct Args {
    requests: usize,
    concurrency: usize,
    docs_per_request: usize,
    workers: usize,
    train_docs: usize,
    seed: u64,
    json: Option<String>,
    max_inflight: usize,
    default_deadline_ms: u64,
    timeout_ms: Option<u64>,
    chaos: Option<FaultPlan>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        requests: 400,
        concurrency: 4,
        docs_per_request: 1,
        workers: 0,
        train_docs: 15,
        seed: 7,
        json: None,
        max_inflight: 0,
        default_deadline_ms: 0,
        timeout_ms: None,
        chaos: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = |i: usize| -> Result<&str, String> {
            argv.get(i + 1)
                .map(|s| s.as_str())
                .filter(|v| !v.starts_with("--"))
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag {
            "--requests" => args.requests = num(flag, value(i)?)?,
            "--concurrency" => args.concurrency = num(flag, value(i)?)?,
            "--docs-per-request" => args.docs_per_request = num(flag, value(i)?)?,
            "--workers" => args.workers = num(flag, value(i)?)?,
            "--train-docs" => args.train_docs = num(flag, value(i)?)?,
            "--seed" => args.seed = num(flag, value(i)?)?,
            "--json" => args.json = Some(value(i)?.to_string()),
            "--max-inflight" => args.max_inflight = num(flag, value(i)?)?,
            "--default-deadline-ms" => args.default_deadline_ms = num(flag, value(i)?)?,
            "--timeout-ms" => args.timeout_ms = Some(num(flag, value(i)?)?),
            "--chaos" => args.chaos = Some(FaultPlan::parse(value(i)?)?),
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    if args.requests == 0 || args.concurrency == 0 || args.docs_per_request == 0 {
        return Err("requests, concurrency, and docs-per-request must be positive".into());
    }
    Ok(args)
}

fn num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("flag {flag}: bad value {v:?}"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn train_entry(domain: Domain, seed: u64, docs: usize) -> ModelEntry {
    let corpus = generate(domain, seed, docs);
    let lex = Lexicon::pretrain(&corpus.documents);
    let frozen =
        Extractor::train_on(&corpus.schema, lex, &corpus, &[], &TrainConfig::tiny()).freeze();
    ModelEntry {
        name: domain_key(domain).into(),
        model: Arc::new(frozen),
        field_names: (0..corpus.schema.len())
            .map(|id| corpus.schema.field(id as u16).name.clone())
            .collect(),
    }
}

/// One `/v1/extract` response, classified by overload semantics.
enum Outcome {
    /// HTTP 200, with end-to-end latency.
    Ok(Duration),
    /// HTTP 503 shed, carrying the advertised `Retry-After` seconds.
    Shed { retry_after_secs: u64 },
    /// HTTP 504 deadline exceeded.
    Deadline,
    /// HTTP 500 (an isolated worker panic under chaos).
    ServerError,
}

/// One HTTP request over a fresh socket, classified.
fn post_extract(addr: SocketAddr, body: &[u8]) -> Result<Outcome, String> {
    let t0 = Instant::now();
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let header = format!(
        "POST /v1/extract HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream
        .write_all(header.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("write: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    let status = response
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            format!(
                "unparsable response: {}",
                response.lines().next().unwrap_or("<empty>")
            )
        })?;
    match status {
        200 => Ok(Outcome::Ok(t0.elapsed())),
        503 => Ok(Outcome::Shed {
            retry_after_secs: response
                .lines()
                .find_map(|l| l.strip_prefix("Retry-After: "))
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(1),
        }),
        504 => Ok(Outcome::Deadline),
        500 => Ok(Outcome::ServerError),
        other => Err(format!(
            "unexpected status {other}: {}",
            response.lines().next().unwrap_or("<empty>")
        )),
    }
}

/// One `GET /healthz` over a fresh socket; returns latency on 200.
fn get_healthz(addr: SocketAddr) -> Result<Duration, String> {
    let t0 = Instant::now();
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: bench\r\n\r\n")
        .map_err(|e| format!("write: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    if !response.starts_with("HTTP/1.1 200") {
        return Err(format!(
            "healthz non-200: {}",
            response.lines().next().unwrap_or("<empty>")
        ));
    }
    Ok(t0.elapsed())
}

/// Fetches the raw `/metrics` exposition text.
fn get_metrics(addr: SocketAddr) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n")
        .map_err(|e| format!("write: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    Ok(response)
}

/// Reads a counter (by its full name, labels included) out of
/// Prometheus exposition text; absent counters read 0.
fn scrape_counter(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(name).map(str::trim))
        .and_then(|v| v.parse::<f64>().ok())
        .map_or(0, |v| v as u64)
}

fn percentile_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx] as f64 / 1e3
}

/// A client that connects, writes half a request, stalls, and hangs up —
/// repeating until `stop`. The server's connection timeouts must absorb
/// these without starving real traffic.
fn stalled_writer(addr: SocketAddr, stall_ms: u64, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let _ = stream.write_all(b"POST /v1/extract HTTP/1.1\r\nHost: st");
            std::thread::sleep(Duration::from_millis(stall_ms));
        } else {
            std::thread::sleep(Duration::from_millis(stall_ms));
        }
    }
}

#[derive(Default)]
struct Tally {
    shed_503: AtomicUsize,
    deadline_504: AtomicUsize,
    server_500: AtomicUsize,
    retries: AtomicUsize,
    /// Requests that never reached a 200 (post-retry sheds, 504s, 500s).
    failed: AtomicUsize,
    /// Transport-level errors (connect/read failures).
    errors: AtomicUsize,
}

fn run(args: &Args) -> Result<(), String> {
    // Train one small model per benchmark domain, fully in memory.
    let domains = [Domain::Fara, Domain::Earnings];
    eprintln!(
        "training {} models ({} docs each)...",
        domains.len(),
        args.train_docs
    );
    let entries: Vec<ModelEntry> = domains
        .iter()
        .enumerate()
        .map(|(i, &d)| train_entry(d, args.seed + i as u64, args.train_docs))
        .collect();
    let snapshot = RegistrySnapshot::from_entries(entries)?;

    let plan = args.chaos.clone().unwrap_or_default();
    let chaos_mode = args.chaos.is_some();
    let handle = ServeHandle::start(ServeConfig {
        listen: "127.0.0.1:0".into(),
        models_dir: None,
        initial: Some(snapshot),
        workers: args.workers,
        quantized: false,
        max_inflight: args.max_inflight,
        max_docs_per_request: 0,
        default_deadline_ms: args.default_deadline_ms,
        chaos: args.chaos.clone().filter(FaultPlan::has_server_faults),
    })?;
    let addr = handle.addr();
    eprintln!("server on {addr}");

    // Pre-serialize request bodies, alternating domains so routing and
    // multi-model scratch reuse are both on the measured path.
    let bodies: Vec<Vec<u8>> = domains
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let docs = generate(d, args.seed + 100 + i as u64, args.docs_per_request).documents;
            let mut fields = vec![(
                "documents".into(),
                serde::Value::Array(docs.iter().map(serde::Serialize::to_value).collect()),
            )];
            if let Some(ms) = args.timeout_ms {
                fields.push(("timeout_ms".into(), serde::Value::Int(ms as i64)));
            }
            serde_json::to_string(&serde::Value::Object(fields))
                .expect("document tree")
                .into_bytes()
        })
        .collect();

    // Warmup: prime scratches and the row caches off the clock. Chaos
    // runs tolerate warmup faults (they tick the same fault clock).
    for body in &bodies {
        match post_extract(addr, body) {
            Ok(Outcome::Ok(_)) => {}
            Ok(_) if chaos_mode || args.timeout_ms.is_some() => {}
            Ok(_) => return Err("warmup request was rejected".into()),
            Err(e) => return Err(format!("warmup failed: {e}")),
        }
    }

    // Chaos-only background actors: stalled writers and a healthz prober.
    let stop = AtomicBool::new(false);
    let healthz_us: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let healthz_errors = AtomicUsize::new(0);

    let next = AtomicUsize::new(0);
    let tally = Tally::default();
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(args.requests));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        if chaos_mode {
            for _ in 0..plan.stall_clients {
                s.spawn(|| stalled_writer(addr, plan.stall_ms.max(10), &stop));
            }
            s.spawn(|| {
                // Liveness must hold through the whole storm: probe
                // healthz continuously and keep every latency.
                while !stop.load(Ordering::Relaxed) {
                    match get_healthz(addr) {
                        Ok(lat) => healthz_us
                            .lock()
                            .expect("healthz latencies")
                            .push(lat.as_micros() as u64),
                        Err(_) => {
                            healthz_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
        }
        for _ in 0..args.concurrency {
            s.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= args.requests {
                        break;
                    }
                    let body = &bodies[i % bodies.len()];
                    let mut attempt = 0u64;
                    loop {
                        match post_extract(addr, body) {
                            Ok(Outcome::Ok(lat)) => {
                                local.push(lat.as_micros() as u64);
                                break;
                            }
                            Ok(Outcome::Shed { retry_after_secs }) => {
                                tally.shed_503.fetch_add(1, Ordering::Relaxed);
                                if attempt >= MAX_RETRIES {
                                    tally.failed.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                // Honor Retry-After with deterministic
                                // jitter so retries spread out instead of
                                // re-stampeding in lockstep.
                                let wait = backoff_ms(
                                    args.seed,
                                    i as u64,
                                    attempt,
                                    retry_after_secs.max(1) * 1000,
                                );
                                std::thread::sleep(Duration::from_millis(wait));
                                attempt += 1;
                                tally.retries.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(Outcome::Deadline) => {
                                tally.deadline_504.fetch_add(1, Ordering::Relaxed);
                                tally.failed.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Ok(Outcome::ServerError) => {
                                tally.server_500.fetch_add(1, Ordering::Relaxed);
                                tally.failed.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(e) => {
                                tally.errors.fetch_add(1, Ordering::Relaxed);
                                eprintln!("request {i} failed: {e}");
                                break;
                            }
                        }
                    }
                }
                latencies.lock().expect("latencies").extend(local);
            });
        }
        // thread::scope joins all spawns at block end; the background
        // actors loop on `stop`, so flip it from a watcher keyed on
        // `next` — it passes requests + concurrency exactly when every
        // worker has finished its last claimed request.
        s.spawn(|| {
            while next.load(Ordering::Relaxed) < args.requests + args.concurrency {
                std::thread::sleep(Duration::from_millis(5));
            }
            // All request indices are claimed; give in-flight retries a
            // moment, then stop the background actors.
            std::thread::sleep(Duration::from_millis(50));
            stop.store(true, Ordering::Relaxed);
        });
    });
    let wall = t0.elapsed();

    let mut lat_us = latencies.into_inner().expect("latencies");
    lat_us.sort_unstable();
    let ok = lat_us.len();
    let shed_503 = tally.shed_503.load(Ordering::Relaxed);
    let deadline_504 = tally.deadline_504.load(Ordering::Relaxed);
    let server_500 = tally.server_500.load(Ordering::Relaxed);
    let retries = tally.retries.load(Ordering::Relaxed);
    let failed = tally.failed.load(Ordering::Relaxed);
    let errors = tally.errors.load(Ordering::Relaxed);
    let attempts = ok + shed_503 + deadline_504 + server_500 + errors;
    let shed_rate = if attempts > 0 {
        shed_503 as f64 / attempts as f64
    } else {
        0.0
    };
    let availability = ok as f64 / args.requests as f64;
    let throughput = ok as f64 / wall.as_secs_f64();
    let p50 = percentile_ms(&lat_us, 50.0);
    let p99 = percentile_ms(&lat_us, 99.0);
    println!(
        "serve_bench: {ok}/{} ok, {failed} failed, {errors} transport errors, {:.1}s wall",
        args.requests,
        wall.as_secs_f64()
    );
    println!("  throughput  {throughput:>10.1} req/s");
    println!("  p50 latency {p50:>10.3} ms");
    println!("  p99 latency {p99:>10.3} ms");
    println!("  503 shed    {shed_503:>10}  (retries {retries})");
    println!("  504 dead    {deadline_504:>10}");
    println!("  500 panic   {server_500:>10}");
    println!("  availability {availability:>9.4}");

    let mut verdict = Ok(());
    if chaos_mode {
        verdict = chaos_invariants(
            addr,
            &plan,
            &bodies,
            server_500,
            &healthz_us.into_inner().expect("healthz latencies"),
            healthz_errors.load(Ordering::Relaxed),
        );
    } else if failed + errors > 0 {
        verdict = Err(format!("{} requests failed", failed + errors));
    }

    handle.shutdown();

    if let Some(path) = &args.json {
        let json = format!(
            "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"seed\": {},\n  \"requests\": {},\n  \"concurrency\": {},\n  \"docs_per_request\": {},\n  \"workers\": {},\n  \"train_docs\": {},\n  \"throughput_rps\": {throughput:.2},\n  \"p50_ms\": {p50:.4},\n  \"p99_ms\": {p99:.4},\n  \"errors\": {errors},\n  \"shed_503\": {shed_503},\n  \"deadline_504\": {deadline_504},\n  \"retries\": {retries},\n  \"shed_rate\": {shed_rate:.4},\n  \"availability\": {availability:.4}\n}}\n",
            args.seed,
            args.requests,
            args.concurrency,
            args.docs_per_request,
            args.workers,
            args.train_docs,
        );
        std::fs::write(path, json).map_err(|e| format!("writing {path:?}: {e}"))?;
        println!("wrote {path}");
    }
    verdict
}

/// The availability invariants a `--chaos` run must satisfy.
fn chaos_invariants(
    addr: SocketAddr,
    plan: &FaultPlan,
    bodies: &[Vec<u8>],
    server_500: usize,
    healthz_us: &[u64],
    healthz_errors: usize,
) -> Result<(), String> {
    // 1. Liveness: healthz answered throughout, p99 bounded.
    if healthz_errors > 0 {
        return Err(format!(
            "{healthz_errors} healthz probes failed during chaos"
        ));
    }
    let mut sorted = healthz_us.to_vec();
    sorted.sort_unstable();
    let hp99 = percentile_ms(&sorted, 99.0);
    println!(
        "  healthz     {:>10} probes, p99 {hp99:.3} ms",
        sorted.len()
    );
    if sorted.is_empty() {
        return Err("healthz prober recorded no samples".into());
    }
    if hp99 > HEALTHZ_P99_BOUND_MS {
        return Err(format!(
            "healthz p99 {hp99:.1} ms exceeds the {HEALTHZ_P99_BOUND_MS} ms bound"
        ));
    }

    // 2. Error budget: every 500 is an injected panic, never more.
    let metrics = get_metrics(addr)?;
    let injected_panics = scrape_counter(
        &metrics,
        "fieldswap_serve_chaos_injected_total{kind=\"panic\"}",
    );
    let isolated_panics = scrape_counter(&metrics, "fieldswap_serve_panics_total");
    println!("  injected    {injected_panics:>10} panics ({isolated_panics} isolated)");
    if (server_500 as u64) > injected_panics {
        return Err(format!(
            "{server_500} requests got 500 but only {injected_panics} panics were injected"
        ));
    }
    if isolated_panics != injected_panics {
        return Err(format!(
            "panic accounting drift: {isolated_panics} isolated vs {injected_panics} injected"
        ));
    }

    // 3. Recovery: past the fault window the server must be fully
    // clean again. Each probe also ticks the fault clock, so probing
    // until a streak of successes tolerates a window the main load
    // didn't quite finish crossing.
    if plan.window_docs > 0 {
        let mut streak = 0usize;
        for probe in 0..200usize {
            match post_extract(addr, &bodies[probe % bodies.len()]) {
                Ok(Outcome::Ok(_)) => streak += 1,
                Ok(_) => streak = 0,
                Err(e) => return Err(format!("post-window probe {probe} failed: {e}")),
            }
            if streak >= 4 {
                println!("  recovery    clean-200 streak after {} probes", probe + 1);
                return Ok(());
            }
        }
        return Err("no post-window recovery: never saw 4 consecutive 200s".into());
    }
    Ok(())
}
