#![warn(missing_docs)]

//! # fieldswap-serve
//!
//! The online extraction service: long-running HTTP/JSON serving of
//! trained FieldSwap models on the frozen inference fast path.
//!
//! * [`registry`] — an immutable in-memory registry of
//!   [`FrozenModel`](fieldswap_extract::FrozenModel)s loaded from the
//!   `FSFROZN1` serialization format (f32 or int8), with template-match
//!   routing (lexicon overlap, in the spirit of form-template
//!   recognition services) and atomic hot reload.
//! * [`executor`] — a persistent `fieldswap-parallel` worker pool with
//!   per-worker `InferScratch` reuse: zero per-request scratch
//!   allocation once warm.
//! * [`server`] — the HTTP endpoints (`/v1/extract`, `/models`,
//!   `/reload`, `/metrics`, `/healthz`, `/quitquitquit`) built on the
//!   dependency-free server machinery in `fieldswap-obs`, instrumented
//!   with per-stage latency histograms and request/error counters, and
//!   hardened for overload: admission control with `503` + `Retry-After`
//!   shedding, per-request deadlines (`504`), panic isolation, and a
//!   `/reload` circuit breaker.
//! * [`chaos`] — deterministic fault injection (seeded [`FaultPlan`])
//!   behind the hidden `--chaos` flag, driving the chaos soak test and
//!   `serve_bench --chaos`.
//!
//! The `fieldswap-serve` binary wraps this into `serve` / `train` /
//! `sample` subcommands; `serve_bench` hammers a live server over real
//! sockets and writes `BENCH_serve.json`.

pub mod chaos;
pub mod executor;
pub mod registry;
pub mod server;

pub use chaos::{backoff_ms, Chaos, FaultPlan};
pub use executor::{Executor, PredictResult, ScoredSpans};
pub use registry::{match_score, ModelEntry, Registry, RegistrySnapshot, MODEL_EXT};
pub use server::{ServeConfig, ServeHandle};

use fieldswap_datagen::Domain;

/// The stable lowercase key a domain's model is registered under (file
/// stem of its `.fsm` in the model directory).
pub fn domain_key(domain: Domain) -> &'static str {
    match domain {
        Domain::Fara => "fara",
        Domain::FccForms => "fcc",
        Domain::Brokerage => "brokerage",
        Domain::Earnings => "earnings",
        Domain::LoanPayments => "loans",
        Domain::Invoices => "invoices",
    }
}

/// Parses a [`domain_key`] back to its domain.
pub fn parse_domain(key: &str) -> Option<Domain> {
    Domain::ALL.into_iter().find(|d| domain_key(*d) == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_keys_round_trip() {
        for d in Domain::ALL {
            assert_eq!(parse_domain(domain_key(d)), Some(d));
        }
        assert_eq!(parse_domain("nope"), None);
    }
}
