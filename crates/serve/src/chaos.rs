//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] is a seeded, declarative description of the faults to
//! inject — extra inference latency, forced worker panics on specific
//! global document indices, corrupt model directories on `/reload`, and
//! (interpreted client-side by `serve_bench --chaos`) stalled request
//! writers. The plan is parsed from the hidden `--chaos SPEC` flag and
//! is **off by default**: a server built without a plan runs the exact
//! clean-path code, so chaos can never perturb production behavior.
//!
//! Determinism contract: every server-side decision is a pure function
//! of the plan and a global document counter ([`Chaos::on_infer`]
//! assigns each inferred document the next index), so a run injects
//! exactly the faults the spec names — `panic-doc=7` panics the worker
//! handling the 8th document, every time. Client-side jitter
//! ([`backoff_ms`]) derives from the plan seed the same way the
//! experiment harness derives per-cell seeds: splitmix over
//! `(seed, request, attempt)`.
//!
//! Spec grammar (comma-separated `key=value`, all keys optional):
//!
//! ```text
//! seed=U64            jitter seed (default 0)
//! delay-ms=U64        injected latency per inferred doc inside the window
//! panic-doc=N         force a worker panic on global doc index N (repeatable)
//! panic-every=K       force a worker panic on every K-th doc (doc K-1, 2K-1, …)
//! window-docs=N       faults apply only to the first N docs (0 = no limit)
//! corrupt-reloads=K   the next K /reload attempts see a corrupt model dir
//! stall-clients=N     serve_bench only: N clients that stall mid-request
//! stall-ms=M          serve_bench only: how long a stalled client holds on
//! ```

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

/// A parsed, declarative fault-injection plan. See the module docs for
/// the spec grammar.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for client backoff jitter and any future randomized faults.
    pub seed: u64,
    /// Injected latency per inferred document inside the fault window.
    pub delay_ms: u64,
    /// Global document indices whose inference is forced to panic.
    pub panic_docs: Vec<u64>,
    /// Panic on every K-th inferred document (0 = disabled).
    pub panic_every: u64,
    /// Faults apply only while the global doc counter is below this
    /// (0 = no window, faults run forever).
    pub window_docs: u64,
    /// How many upcoming `/reload` attempts see a corrupt directory.
    pub corrupt_reloads: u32,
    /// `serve_bench --chaos` only: concurrent stalled-writer clients.
    pub stall_clients: usize,
    /// `serve_bench --chaos` only: how long each stalled client holds
    /// its half-written request before dropping the connection.
    pub stall_ms: u64,
}

impl FaultPlan {
    /// Parses a `--chaos` spec string. Empty spec is a valid all-off plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec item {part:?} is not key=value"))?;
            let num = |what: &str| -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("chaos {what}: bad value {value:?}"))
            };
            match key {
                "seed" => plan.seed = num("seed")?,
                "delay-ms" => plan.delay_ms = num("delay-ms")?,
                "panic-doc" => plan.panic_docs.push(num("panic-doc")?),
                "panic-every" => plan.panic_every = num("panic-every")?,
                "window-docs" => plan.window_docs = num("window-docs")?,
                "corrupt-reloads" => plan.corrupt_reloads = num("corrupt-reloads")? as u32,
                "stall-clients" => plan.stall_clients = num("stall-clients")? as usize,
                "stall-ms" => plan.stall_ms = num("stall-ms")?,
                other => return Err(format!("unknown chaos key {other:?}")),
            }
        }
        plan.panic_docs.sort_unstable();
        Ok(plan)
    }

    /// Whether the plan injects any server-side fault (as opposed to
    /// purely client-side stalls).
    pub fn has_server_faults(&self) -> bool {
        self.delay_ms > 0
            || !self.panic_docs.is_empty()
            || self.panic_every > 0
            || self.corrupt_reloads > 0
    }

    /// How many forced panics this plan injects over the first `docs`
    /// inferred documents (used by the chaos harness to bound the
    /// acceptable error rate).
    pub fn panics_within(&self, docs: u64) -> u64 {
        let horizon = if self.window_docs > 0 {
            self.window_docs.min(docs)
        } else {
            docs
        };
        let listed = self.panic_docs.iter().filter(|&&d| d < horizon).count() as u64;
        let periodic = horizon.checked_div(self.panic_every).unwrap_or(0);
        listed + periodic
    }
}

/// Live fault-injection state: the plan plus the global document
/// counter and the remaining corrupt-reload budget. One per server.
pub struct Chaos {
    plan: FaultPlan,
    docs: AtomicU64,
    corrupt_left: AtomicU32,
}

impl Chaos {
    /// Runtime state for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let corrupt_left = AtomicU32::new(plan.corrupt_reloads);
        Self {
            plan,
            docs: AtomicU64::new(0),
            corrupt_left,
        }
    }

    /// The plan this state executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Documents inferred so far (the global fault clock).
    pub fn docs_seen(&self) -> u64 {
        self.docs.load(Ordering::Relaxed)
    }

    /// Whether the fault window is over (always false for unwindowed
    /// plans).
    pub fn window_over(&self) -> bool {
        self.plan.window_docs > 0 && self.docs_seen() >= self.plan.window_docs
    }

    /// Called by the executor once per inferred document, inside the
    /// panic-isolated region: ticks the doc clock, injects the planned
    /// latency, and panics when this index is a planned panic. Counters
    /// `fieldswap_serve_chaos_injected_total{kind=…}` record every
    /// injection so harnesses can bound observed errors by injected
    /// faults.
    pub fn on_infer(&self) {
        let i = self.docs.fetch_add(1, Ordering::Relaxed);
        if self.plan.window_docs > 0 && i >= self.plan.window_docs {
            return;
        }
        if self.plan.delay_ms > 0 {
            fieldswap_obs::counter_add("fieldswap_serve_chaos_injected_total{kind=\"delay\"}", 1);
            std::thread::sleep(Duration::from_millis(self.plan.delay_ms));
        }
        let forced = self.plan.panic_docs.binary_search(&i).is_ok()
            || (self.plan.panic_every > 0 && (i + 1).is_multiple_of(self.plan.panic_every));
        if forced {
            fieldswap_obs::counter_add("fieldswap_serve_chaos_injected_total{kind=\"panic\"}", 1);
            panic!("chaos: injected worker panic on doc {i}");
        }
    }

    /// Called by `/reload`: returns true while the corrupt-reload
    /// budget lasts, consuming one unit per call.
    pub fn fail_reload(&self) -> bool {
        let injected = self
            .corrupt_left
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |left| {
                left.checked_sub(1)
            })
            .is_ok();
        if injected {
            fieldswap_obs::counter_add(
                "fieldswap_serve_chaos_injected_total{kind=\"corrupt_reload\"}",
                1,
            );
        }
        injected
    }
}

/// Deterministic jittered backoff for clients honoring `Retry-After`:
/// a value in `[base_ms/2, base_ms]`, derived from
/// `(seed, request, attempt)` by splitmix64 so reruns back off
/// identically. `base_ms` of 0 stays 0.
pub fn backoff_ms(seed: u64, request: u64, attempt: u64, base_ms: u64) -> u64 {
    if base_ms == 0 {
        return 0;
    }
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(request.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(attempt.wrapping_mul(0x94d0_49bb_1331_11eb))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    base_ms / 2 + z % (base_ms / 2 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let plan = FaultPlan::parse(
            "seed=42,delay-ms=5,panic-doc=7,panic-doc=3,panic-every=10,\
             window-docs=100,corrupt-reloads=2,stall-clients=3,stall-ms=250",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.delay_ms, 5);
        assert_eq!(plan.panic_docs, vec![3, 7]); // sorted
        assert_eq!(plan.panic_every, 10);
        assert_eq!(plan.window_docs, 100);
        assert_eq!(plan.corrupt_reloads, 2);
        assert_eq!(plan.stall_clients, 3);
        assert_eq!(plan.stall_ms, 250);
        assert!(plan.has_server_faults());
    }

    #[test]
    fn empty_spec_is_all_off() {
        let plan = FaultPlan::parse("").unwrap();
        assert_eq!(plan, FaultPlan::default());
        assert!(!plan.has_server_faults());
        // Stall-only plans are client-side.
        let plan = FaultPlan::parse("stall-clients=2,stall-ms=100").unwrap();
        assert!(!plan.has_server_faults());
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(FaultPlan::parse("delay-ms").is_err());
        assert!(FaultPlan::parse("delay-ms=abc").is_err());
        assert!(FaultPlan::parse("bogus-key=1").is_err());
    }

    #[test]
    fn panic_schedule_is_deterministic() {
        let chaos =
            Chaos::new(FaultPlan::parse("panic-doc=1,panic-every=4,window-docs=8").unwrap());
        let mut panicked = Vec::new();
        for i in 0..12u64 {
            let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| chaos.on_infer()))
                .is_err();
            if hit {
                panicked.push(i);
            }
        }
        // panic-doc=1 plus every 4th (docs 3, 7), all within the window.
        assert_eq!(panicked, vec![1, 3, 7]);
        assert_eq!(chaos.docs_seen(), 12);
        assert!(chaos.window_over());
        assert_eq!(chaos.plan().panics_within(12), 3);
        assert_eq!(chaos.plan().panics_within(2), 1);
    }

    #[test]
    fn corrupt_reload_budget_is_consumed() {
        let chaos = Chaos::new(FaultPlan::parse("corrupt-reloads=2").unwrap());
        assert!(chaos.fail_reload());
        assert!(chaos.fail_reload());
        assert!(!chaos.fail_reload());
        assert!(!chaos.fail_reload());
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        for request in 0..50u64 {
            for attempt in 0..4u64 {
                let a = backoff_ms(7, request, attempt, 1000);
                let b = backoff_ms(7, request, attempt, 1000);
                assert_eq!(a, b);
                assert!((500..=1000).contains(&a), "{a}");
            }
        }
        assert_eq!(backoff_ms(7, 1, 1, 0), 0);
        // Different coordinates actually jitter.
        let distinct: std::collections::HashSet<u64> =
            (0..32).map(|r| backoff_ms(7, r, 0, 1000)).collect();
        assert!(distinct.len() > 4, "{distinct:?}");
    }
}
