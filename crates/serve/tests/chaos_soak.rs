//! The chaos soak: one long scenario driving the server through
//! injected worker panics, inference latency, and corrupt reloads, over
//! real TCP sockets, asserting the availability invariants end to end:
//!
//! * every request gets an orderly HTTP answer (200/500/503) — no
//!   connection thread ever dies;
//! * `/healthz` stays live through the whole storm;
//! * repeated corrupt reloads trip the circuit breaker (fast `503` +
//!   `Retry-After`), which half-opens after its cool-down and recovers;
//! * observed `500`s never exceed the injected panic count, and the
//!   panic-isolation counter agrees with the injection counter;
//! * after the fault window, served spans are bitwise-identical to
//!   offline [`FrozenModel::predict`].

use fieldswap_datagen::{generate, Domain};
use fieldswap_docmodel::Document;
use fieldswap_extract::{Extractor, FrozenModel, InferScratch, Lexicon, TrainConfig};
use fieldswap_serve::server::{RELOAD_BREAKER_COOLDOWN, RELOAD_BREAKER_THRESHOLD};
use fieldswap_serve::{domain_key, FaultPlan, ServeConfig, ServeHandle};
use serde::{Serialize, Value};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

const CHAOS_SPEC: &str = "seed=7,delay-ms=2,panic-every=5,window-docs=60,corrupt-reloads=3";

fn train_frozen(domain: Domain, seed: u64, docs: usize) -> FrozenModel {
    let corpus = generate(domain, seed, docs);
    let lex = Lexicon::pretrain(&corpus.documents);
    Extractor::train_on(&corpus.schema, lex, &corpus, &[], &TrainConfig::tiny()).freeze()
}

fn http_raw(addr: SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

fn status_of(response: &str) -> u16 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn post_raw(addr: SocketAddr, path: &str, body: &str) -> String {
    http_raw(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn get_raw(addr: SocketAddr, path: &str) -> String {
    http_raw(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

fn extract_body(docs: &[Document]) -> String {
    let fields = vec![(
        "documents".into(),
        Value::Array(docs.iter().map(Serialize::to_value).collect()),
    )];
    serde_json::to_string(&Value::Object(fields)).unwrap()
}

/// Reads a counter (full name, labels included) from exposition text.
fn scrape_counter(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(name).map(str::trim))
        .and_then(|v| v.parse::<f64>().ok())
        .map_or(0, |v| v as u64)
}

#[test]
fn chaos_soak_survives_panics_latency_and_corrupt_reloads() {
    // Models live on disk so /reload exercises the real loader.
    let dir = std::env::temp_dir().join(format!("chaos-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let fara = train_frozen(Domain::Fara, 91, 12);
    let earnings = train_frozen(Domain::Earnings, 92, 12);
    for (domain, model) in [(Domain::Fara, &fara), (Domain::Earnings, &earnings)] {
        std::fs::write(
            dir.join(format!("{}.fsm", domain_key(domain))),
            model.to_bytes().unwrap(),
        )
        .unwrap();
    }

    let plan = FaultPlan::parse(CHAOS_SPEC).unwrap();
    let server = ServeHandle::start(ServeConfig {
        listen: "127.0.0.1:0".into(),
        models_dir: Some(dir.clone()),
        workers: 2,
        max_inflight: 8,
        chaos: Some(plan.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let fara_docs = generate(Domain::Fara, 93, 3).documents;
    let earn_docs = generate(Domain::Earnings, 94, 3).documents;

    // --- The storm: hammer through the fault window while probing
    // liveness. Every response must be an orderly 200/500/503.
    let ok = AtomicUsize::new(0);
    let panicked_500 = AtomicUsize::new(0);
    let shed_503 = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for t in 0..3usize {
            let (ok, panicked_500, shed_503) = (&ok, &panicked_500, &shed_503);
            let (fara_docs, earn_docs) = (&fara_docs, &earn_docs);
            s.spawn(move || {
                for i in 0..40usize {
                    let docs = if (t + i) % 2 == 0 {
                        fara_docs
                    } else {
                        earn_docs
                    };
                    let doc = &docs[i % docs.len()];
                    let response = post_raw(
                        addr,
                        "/v1/extract",
                        &extract_body(std::slice::from_ref(doc)),
                    );
                    match status_of(&response) {
                        200 => {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        500 => {
                            panicked_500.fetch_add(1, Ordering::Relaxed);
                        }
                        503 => {
                            shed_503.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("disorderly response {other}:\n{response}"),
                    }
                }
            });
        }
        s.spawn(|| {
            // Liveness through the storm.
            while !stop.load(Ordering::Relaxed) {
                let t0 = Instant::now();
                let response = get_raw(addr, "/healthz");
                assert_eq!(status_of(&response), 200, "healthz died mid-storm");
                assert!(
                    t0.elapsed() < Duration::from_millis(250),
                    "healthz stalled {:?} mid-storm",
                    t0.elapsed()
                );
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        s.spawn(|| {
            // The watcher: hammering 3×40 single-doc requests pushes the
            // doc clock well past window-docs=60.
            while ok.load(Ordering::Relaxed)
                + panicked_500.load(Ordering::Relaxed)
                + shed_503.load(Ordering::Relaxed)
                < 120
            {
                std::thread::sleep(Duration::from_millis(10));
            }
            stop.store(true, Ordering::Relaxed);
        });
    });
    let ok = ok.load(Ordering::Relaxed);
    let panicked_500 = panicked_500.load(Ordering::Relaxed);
    let shed_503 = shed_503.load(Ordering::Relaxed);
    assert_eq!(ok + panicked_500 + shed_503, 120);
    assert!(panicked_500 > 0, "the fault window injected no panics");
    assert!(ok > 0, "nothing succeeded during the storm");

    // --- Error accounting: every 500 maps to an injected panic.
    let metrics = get_raw(addr, "/metrics");
    let injected = scrape_counter(
        &metrics,
        "fieldswap_serve_chaos_injected_total{kind=\"panic\"}",
    );
    let isolated = scrape_counter(&metrics, "fieldswap_serve_panics_total");
    assert!(injected > 0);
    assert_eq!(
        isolated, injected,
        "panic isolation count drifted from injection count"
    );
    assert!(
        panicked_500 as u64 <= injected,
        "{panicked_500} × 500 but only {injected} injected panics"
    );

    // --- Reload breaker: corrupt-reloads=3 fails exactly the breaker
    // threshold, so the next reload is answered by the open breaker.
    assert_eq!(plan.corrupt_reloads, RELOAD_BREAKER_THRESHOLD);
    for i in 0..RELOAD_BREAKER_THRESHOLD {
        let response = post_raw(addr, "/reload", "");
        assert_eq!(status_of(&response), 500, "corrupt reload {i}:\n{response}");
    }
    let t0 = Instant::now();
    let response = post_raw(addr, "/reload", "");
    assert_eq!(status_of(&response), 503, "breaker not open:\n{response}");
    assert!(
        response.contains("Retry-After:"),
        "open breaker without Retry-After:\n{response}"
    );
    assert!(
        t0.elapsed() < Duration::from_millis(100),
        "open breaker answered slowly: {:?}",
        t0.elapsed()
    );
    // Half-open after the cool-down: the chaos budget is exhausted, so
    // the probe reload reads the (healthy) directory and recovers.
    std::thread::sleep(RELOAD_BREAKER_COOLDOWN + Duration::from_millis(200));
    let response = post_raw(addr, "/reload", "");
    assert_eq!(
        status_of(&response),
        200,
        "breaker never recovered:\n{response}"
    );

    // --- Post-window recovery: clean requests, bitwise-identical spans
    // to offline predict on the very same models.
    let mut scratch = InferScratch::default();
    for (docs, model, name) in [
        (&fara_docs, &fara, "fara"),
        (&earn_docs, &earnings, "earnings"),
    ] {
        for doc in docs.iter() {
            let response = post_raw(
                addr,
                "/v1/extract",
                &extract_body(std::slice::from_ref(doc)),
            );
            assert_eq!(status_of(&response), 200, "post-window:\n{response}");
            let body = response.split_once("\r\n\r\n").unwrap().1;
            let v: Value = serde_json::from_str(body).unwrap();
            let result = &v.get("results").unwrap().as_array().unwrap()[0];
            assert_eq!(result.get("model").unwrap().as_str().unwrap(), name);
            let got: Vec<(u16, u32, u32)> = result
                .get("fields")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|f| {
                    (
                        f.get("field").unwrap().as_u64().unwrap() as u16,
                        f.get("start").unwrap().as_u64().unwrap() as u32,
                        f.get("end").unwrap().as_u64().unwrap() as u32,
                    )
                })
                .collect();
            let want: Vec<(u16, u32, u32)> = model
                .predict(doc, &mut scratch)
                .iter()
                .map(|sp| (sp.field, sp.start, sp.end))
                .collect();
            assert_eq!(got, want, "post-chaos span drift on {}", doc.id);
        }
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
