//! End-to-end socket tests for the extraction service: everything here
//! talks to a live server over real TCP, exactly like an external
//! client.

use fieldswap_datagen::{generate, Domain};
use fieldswap_docmodel::Document;
use fieldswap_extract::{Extractor, FrozenModel, InferScratch, Lexicon, TrainConfig};
use fieldswap_serve::{domain_key, ServeConfig, ServeHandle};
use serde::{Serialize, Value};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;

fn train_frozen(domain: Domain, seed: u64, docs: usize) -> FrozenModel {
    let corpus = generate(domain, seed, docs);
    let lex = Lexicon::pretrain(&corpus.documents);
    Extractor::train_on(&corpus.schema, lex, &corpus, &[], &TrainConfig::tiny()).freeze()
}

fn write_model(dir: &Path, domain: Domain, model: &FrozenModel) {
    let key = domain_key(domain);
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(dir.join(format!("{key}.fsm")), model.to_bytes().unwrap()).unwrap();
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(models_dir: &Path) -> ServeHandle {
    ServeHandle::start(ServeConfig {
        listen: "127.0.0.1:0".into(),
        models_dir: Some(models_dir.to_path_buf()),
        initial: None,
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap()
}

fn http(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    let status = out
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = out
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    http(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn extract_body(docs: &[Document], model: Option<&str>) -> String {
    let mut fields = vec![(
        "documents".into(),
        Value::Array(docs.iter().map(Serialize::to_value).collect()),
    )];
    if let Some(m) = model {
        fields.push(("model".into(), Value::Str(m.into())));
    }
    serde_json::to_string(&Value::Object(fields)).unwrap()
}

type ResultFields = Vec<(u16, u32, u32, String)>;

/// `(model, [(field, start, end, value)])` for each result in a 200
/// response — panics on any shape surprise, which is the point.
fn parse_results(body: &str) -> Vec<(String, ResultFields)> {
    let v: Value = serde_json::from_str(body).unwrap();
    v.get("results")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|r| {
            let model = r.get("model").unwrap().as_str().unwrap().to_string();
            let fields = r
                .get("fields")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|f| {
                    // Confidence and box must be present and numeric.
                    assert!(f.get("confidence").unwrap().as_f64().is_some());
                    let b = f.get("box").unwrap();
                    for k in ["x0", "y0", "x1", "y1"] {
                        assert!(b.get(k).unwrap().as_f64().is_some());
                    }
                    (
                        f.get("field").unwrap().as_u64().unwrap() as u16,
                        f.get("start").unwrap().as_u64().unwrap() as u32,
                        f.get("end").unwrap().as_u64().unwrap() as u32,
                        f.get("value").unwrap().as_str().unwrap().to_string(),
                    )
                })
                .collect();
            (model, fields)
        })
        .collect()
}

#[test]
fn served_predictions_are_bitwise_identical_to_offline_predict() {
    let dir = temp_dir("identity");
    let frozen = train_frozen(Domain::Fara, 61, 15);
    write_model(&dir, Domain::Fara, &frozen);
    let server = start(&dir);
    let addr = server.addr();

    // The server round-trips the model through disk; predictions must
    // still match the in-memory model bit for bit.
    let probe = generate(Domain::Fara, 62, 6).documents;
    let mut scratch = InferScratch::default();
    for doc in &probe {
        let offline = frozen.predict(doc, &mut scratch);
        let (status, body) = post(
            addr,
            "/v1/extract",
            &extract_body(std::slice::from_ref(doc), None),
        );
        assert_eq!(status, 200, "{body}");
        let results = parse_results(&body);
        assert_eq!(results.len(), 1);
        let (model, fields) = &results[0];
        assert_eq!(model, "fara");
        let served: Vec<(u16, u32, u32)> = fields.iter().map(|f| (f.0, f.1, f.2)).collect();
        let expected: Vec<(u16, u32, u32)> =
            offline.iter().map(|s| (s.field, s.start, s.end)).collect();
        assert_eq!(served, expected, "span drift on {}", doc.id);
        for (f, s) in fields.iter().zip(&offline) {
            assert_eq!(
                f.3,
                doc.span_text(s.start, s.end),
                "value drift on {}",
                doc.id
            );
        }
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_requests_route_across_two_models() {
    let dir = temp_dir("routing");
    write_model(&dir, Domain::Fara, &train_frozen(Domain::Fara, 63, 12));
    write_model(
        &dir,
        Domain::Earnings,
        &train_frozen(Domain::Earnings, 64, 12),
    );
    let server = start(&dir);
    let addr = server.addr();

    let fara_docs = generate(Domain::Fara, 65, 4).documents;
    let earn_docs = generate(Domain::Earnings, 66, 4).documents;
    std::thread::scope(|s| {
        for round in 0..4 {
            let (docs, want): (&Vec<Document>, &str) = if round % 2 == 0 {
                (&fara_docs, "fara")
            } else {
                (&earn_docs, "earnings")
            };
            s.spawn(move || {
                for doc in docs {
                    let (status, body) = post(
                        addr,
                        "/v1/extract",
                        &extract_body(std::slice::from_ref(doc), None),
                    );
                    assert_eq!(status, 200, "{body}");
                    let results = parse_results(&body);
                    assert_eq!(results[0].0, want, "misrouted {}", doc.id);
                }
            });
        }
    });

    // Pinning beats routing; pinning to a missing model is a 404.
    let (status, body) = post(
        addr,
        "/v1/extract",
        &extract_body(&fara_docs[..1], Some("earnings")),
    );
    assert_eq!(status, 200);
    assert_eq!(parse_results(&body)[0].0, "earnings");
    let (status, _) = post(
        addr,
        "/v1/extract",
        &extract_body(&fara_docs[..1], Some("brokerage")),
    );
    assert_eq!(status, 404);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hot_reload_mid_traffic_never_serves_a_torn_registry() {
    let dir = temp_dir("reload");
    write_model(&dir, Domain::Fara, &train_frozen(Domain::Fara, 67, 12));
    let earnings = train_frozen(Domain::Earnings, 68, 12);
    let server = start(&dir);
    let addr = server.addr();

    let probe = generate(Domain::Fara, 69, 3).documents;
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        // Two hammer threads: every response mid-reload must be a
        // well-formed 200 routed to a complete model.
        for _ in 0..2 {
            s.spawn(|| {
                let mut hits = 0u32;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    for doc in &probe {
                        let (status, body) = post(
                            addr,
                            "/v1/extract",
                            &extract_body(std::slice::from_ref(doc), None),
                        );
                        assert_eq!(status, 200, "mid-reload failure: {body}");
                        let results = parse_results(&body);
                        assert!(
                            results[0].0 == "fara" || results[0].0 == "earnings",
                            "unknown model {:?}",
                            results[0].0
                        );
                        hits += 1;
                    }
                }
                assert!(hits > 0);
            });
        }
        // Reload loop: add and remove the earnings model repeatedly.
        for i in 0..6 {
            let earnings_path = dir.join("earnings.fsm");
            if i % 2 == 0 {
                std::fs::write(&earnings_path, earnings.to_bytes().unwrap()).unwrap();
            } else {
                std::fs::remove_file(&earnings_path).unwrap();
            }
            let (status, body) = post(addr, "/reload", "");
            assert_eq!(status, 200, "{body}");
            let v: Value = serde_json::from_str(&body).unwrap();
            let n = v.get("models").unwrap().as_u64().unwrap();
            assert_eq!(n, if i % 2 == 0 { 2 } else { 1 });
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    // A half-written model file must fail the reload and leave the old
    // registry serving.
    std::fs::write(dir.join("earnings.fsm"), b"FSFROZN1garbage").unwrap();
    let (status, body) = post(addr, "/reload", "");
    assert_eq!(status, 500, "{body}");
    let (status, body) = post(addr, "/v1/extract", &extract_body(&probe[..1], None));
    assert_eq!(
        status, 200,
        "server must keep serving after a bad reload: {body}"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_and_oversized_requests_get_4xx_without_killing_the_server() {
    let dir = temp_dir("reject");
    write_model(&dir, Domain::Fara, &train_frozen(Domain::Fara, 70, 12));
    let server = start(&dir);
    let addr = server.addr();

    // Malformed JSON.
    let (status, _) = post(addr, "/v1/extract", "{not json");
    assert_eq!(status, 400);
    // Valid JSON, wrong shape.
    let (status, _) = post(addr, "/v1/extract", "{\"docs\": []}");
    assert_eq!(status, 422);
    let (status, _) = post(addr, "/v1/extract", "{\"documents\": [{\"bogus\": 1}]}");
    assert_eq!(status, 422);
    // Structurally invalid document (annotation out of token range).
    let mut doc = generate(Domain::Fara, 71, 1).documents.remove(0);
    doc.tokens.truncate(1);
    let (status, _) = post(addr, "/v1/extract", &extract_body(&[doc], None));
    assert_eq!(status, 422);
    // Oversized declared body: rejected before the handler ever runs.
    let (status, _) = http(
        addr,
        format!(
            "POST /v1/extract HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            fieldswap_obs::serve::MAX_BODY_BYTES + 1
        )
        .as_bytes(),
    );
    assert_eq!(status, 413);
    // Wrong method on a POST route.
    let (status, _) = get(addr, "/v1/extract");
    assert_eq!(status, 405);

    // After all of that, the server still serves.
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let probe = generate(Domain::Fara, 72, 1).documents;
    let (status, body) = post(addr, "/v1/extract", &extract_body(&probe, None));
    assert_eq!(status, 200, "{body}");
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("fieldswap_serve_requests_total"),
        "{metrics}"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
