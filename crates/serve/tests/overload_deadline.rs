//! End-to-end overload and deadline tests over real TCP sockets:
//! admission control shedding with `Retry-After`, liveness of
//! `/healthz` under saturation, the per-request document cap, and
//! deterministic `504`s from `"timeout_ms"` / `--default-deadline-ms`
//! driven by injected inference latency.

use fieldswap_datagen::{generate, Domain};
use fieldswap_docmodel::Document;
use fieldswap_extract::{Extractor, FrozenModel, InferScratch, Lexicon, TrainConfig};
use fieldswap_serve::{
    domain_key, FaultPlan, ModelEntry, RegistrySnapshot, ServeConfig, ServeHandle,
};
use serde::{Serialize, Value};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn train_frozen(domain: Domain, seed: u64, docs: usize) -> FrozenModel {
    let corpus = generate(domain, seed, docs);
    let lex = Lexicon::pretrain(&corpus.documents);
    Extractor::train_on(&corpus.schema, lex, &corpus, &[], &TrainConfig::tiny()).freeze()
}

fn snapshot_of(domain: Domain, model: FrozenModel) -> RegistrySnapshot {
    RegistrySnapshot::from_entries(vec![ModelEntry {
        name: domain_key(domain).into(),
        model: Arc::new(model),
        field_names: Vec::new(),
    }])
    .unwrap()
}

/// Raw request/response round trip; returns the full response text.
fn http_raw(addr: SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

fn status_of(response: &str) -> u16 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn post_raw(addr: SocketAddr, path: &str, body: &str) -> String {
    http_raw(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn get_raw(addr: SocketAddr, path: &str) -> String {
    http_raw(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

fn extract_body(docs: &[Document], timeout_ms: Option<u64>) -> String {
    let mut fields = vec![(
        "documents".into(),
        Value::Array(docs.iter().map(Serialize::to_value).collect()),
    )];
    if let Some(ms) = timeout_ms {
        fields.push(("timeout_ms".into(), Value::Int(ms as i64)));
    }
    serde_json::to_string(&Value::Object(fields)).unwrap()
}

#[test]
fn saturated_inflight_budget_sheds_with_retry_after_and_healthz_stays_live() {
    // One worker, inflight budget of 2, and 150 ms of injected inference
    // latency so concurrent clients reliably pile up on the budget.
    let server = ServeHandle::start(ServeConfig {
        listen: "127.0.0.1:0".into(),
        initial: Some(snapshot_of(
            Domain::Fara,
            train_frozen(Domain::Fara, 81, 12),
        )),
        workers: 1,
        max_inflight: 2,
        chaos: Some(FaultPlan::parse("delay-ms=150").unwrap()),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let doc = generate(Domain::Fara, 82, 1).documents;
    let body = extract_body(&doc, None);
    let clients = 8;
    let barrier = Barrier::new(clients + 1);
    let ok = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(|| {
                barrier.wait();
                let response = post_raw(addr, "/v1/extract", &body);
                match status_of(&response) {
                    200 => {
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                    503 => {
                        // Shed responses must advertise a retry hint.
                        assert!(
                            response.contains("Retry-After: 1\r\n"),
                            "503 without Retry-After:\n{response}"
                        );
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                    other => panic!("unexpected status {other}:\n{response}"),
                }
            });
        }
        barrier.wait();
        // While extracts queue behind the saturated budget, liveness
        // must answer immediately: min-of-3 to shrug off scheduler noise.
        std::thread::sleep(Duration::from_millis(30));
        let healthz_min = (0..3)
            .map(|_| {
                let t0 = Instant::now();
                let response = get_raw(addr, "/healthz");
                assert_eq!(status_of(&response), 200, "{response}");
                t0.elapsed()
            })
            .min()
            .unwrap();
        assert!(
            healthz_min < Duration::from_millis(100),
            "healthz took {healthz_min:?} under overload"
        );
    });

    let ok = ok.load(Ordering::Relaxed);
    let shed = shed.load(Ordering::Relaxed);
    assert_eq!(ok + shed, clients);
    assert!(ok >= 1, "every request was shed");
    assert!(
        shed >= 1,
        "8 clients against budget 2 with 150 ms latency never shed"
    );
    let metrics = get_raw(addr, "/metrics");
    assert!(metrics.contains("fieldswap_serve_shed_total"), "{metrics}");
    server.shutdown();
}

#[test]
fn oversized_document_count_gets_413_before_any_work() {
    let server = ServeHandle::start(ServeConfig {
        listen: "127.0.0.1:0".into(),
        initial: Some(snapshot_of(
            Domain::Fara,
            train_frozen(Domain::Fara, 83, 12),
        )),
        workers: 1,
        max_docs_per_request: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let docs = generate(Domain::Fara, 84, 3).documents;
    let response = post_raw(addr, "/v1/extract", &extract_body(&docs, None));
    assert_eq!(status_of(&response), 413, "{response}");
    // At the cap is fine.
    let response = post_raw(addr, "/v1/extract", &extract_body(&docs[..2], None));
    assert_eq!(status_of(&response), 200, "{response}");
    server.shutdown();
}

#[test]
fn request_timeout_ms_yields_504_without_disturbing_concurrent_requests() {
    // 60 ms of injected latency guarantees a "timeout_ms": 1 request is
    // past its deadline by the post-infer check at the latest — the 504
    // is deterministic, not a race.
    let frozen = train_frozen(Domain::Fara, 85, 12);
    let probe = generate(Domain::Fara, 86, 3).documents;
    let mut scratch = InferScratch::default();
    let expected: Vec<Vec<(u16, u32, u32)>> = probe
        .iter()
        .map(|d| {
            frozen
                .predict(d, &mut scratch)
                .iter()
                .map(|s| (s.field, s.start, s.end))
                .collect()
        })
        .collect();

    let server = ServeHandle::start(ServeConfig {
        listen: "127.0.0.1:0".into(),
        initial: Some(snapshot_of(Domain::Fara, frozen)),
        workers: 2,
        chaos: Some(FaultPlan::parse("delay-ms=60").unwrap()),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    std::thread::scope(|s| {
        // Deadline-doomed requests…
        let doomed = s.spawn(|| {
            let mut count = 0;
            for _ in 0..3 {
                let response = post_raw(addr, "/v1/extract", &extract_body(&probe[..1], Some(1)));
                assert_eq!(status_of(&response), 504, "{response}");
                count += 1;
            }
            count
        });
        // …while unlimited requests on the same server stay correct.
        for (doc, want) in probe.iter().zip(&expected) {
            let response = post_raw(
                addr,
                "/v1/extract",
                &extract_body(std::slice::from_ref(doc), None),
            );
            assert_eq!(status_of(&response), 200, "{response}");
            let body = response.split_once("\r\n\r\n").unwrap().1;
            let v: Value = serde_json::from_str(body).unwrap();
            let got: Vec<(u16, u32, u32)> = v.get("results").unwrap().as_array().unwrap()[0]
                .get("fields")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|f| {
                    (
                        f.get("field").unwrap().as_u64().unwrap() as u16,
                        f.get("start").unwrap().as_u64().unwrap() as u32,
                        f.get("end").unwrap().as_u64().unwrap() as u32,
                    )
                })
                .collect();
            assert_eq!(&got, want, "span drift beside deadline traffic");
        }
        assert_eq!(doomed.join().unwrap(), 3);
    });

    // Bad timeout types are a 422, not a panic or a silent default.
    let body = extract_body(&probe[..1], None)
        .replace("{\"documents\"", "{\"timeout_ms\": \"soon\", \"documents\"");
    let response = post_raw(addr, "/v1/extract", &body);
    assert_eq!(status_of(&response), 422, "{response}");

    let metrics = get_raw(addr, "/metrics");
    assert!(
        metrics.contains("fieldswap_serve_deadline_exceeded_total"),
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn server_default_deadline_applies_without_request_opt_in() {
    let server = ServeHandle::start(ServeConfig {
        listen: "127.0.0.1:0".into(),
        initial: Some(snapshot_of(
            Domain::Fara,
            train_frozen(Domain::Fara, 87, 12),
        )),
        workers: 1,
        default_deadline_ms: 1,
        chaos: Some(FaultPlan::parse("delay-ms=60").unwrap()),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let docs = generate(Domain::Fara, 88, 1).documents;
    // No "timeout_ms" in the request — the server default still rules.
    let response = post_raw(addr, "/v1/extract", &extract_body(&docs, None));
    assert_eq!(status_of(&response), 504, "{response}");
    // A request cannot loosen the server default, only tighten it.
    let response = post_raw(addr, "/v1/extract", &extract_body(&docs, Some(10_000)));
    assert_eq!(status_of(&response), 504, "{response}");
    server.shutdown();
}
