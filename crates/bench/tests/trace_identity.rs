//! Observability must be inert for correctness: enabling tracing and
//! metrics collection may not change a single byte of experiment output.
//!
//! The test runs a small grid twice — first with the collector disabled,
//! then with tracing + metrics globally enabled — and compares the
//! serialized results byte for byte. The untraced pass MUST come first:
//! the global enable flags are one-way by design (call sites only ever
//! check a relaxed atomic, there is no disable path to race with).

use fieldswap_datagen::Domain;
use fieldswap_eval::{Arm, Harness, HarnessOptions};
use std::io::{Read, Write};
use std::net::TcpStream;

fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect obs server");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
        .unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    let status = out
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = out
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn tiny_options() -> HarnessOptions {
    HarnessOptions {
        n_samples: 1,
        n_trials: 1,
        pretrain_docs: 30,
        lexicon_docs: 50,
        neighbors: 12,
        test_cap: 40,
        epochs: 3,
        synth_ratio: 2.0,
        synthetic_cap: 300,
        seed: 0x7E57,
        jobs: 2,
        train_jobs: 2,
        sanitize: true,
        quantized: false,
    }
}

#[test]
fn quick_grid_is_byte_identical_with_tracing_on() {
    let opts = tiny_options();
    let points = [
        (Domain::Earnings, 10, Arm::AutoTypeToType),
        (Domain::Fara, 10, Arm::Baseline),
    ];

    // Pass 1: collector disabled (process default).
    assert!(!fieldswap_obs::tracing_enabled());
    assert!(!fieldswap_obs::metrics_enabled());
    let untraced = Harness::new(opts).run_grid(&points);
    let untraced_json = serde_json::to_string_pretty(&untraced).unwrap();
    assert_eq!(
        fieldswap_obs::global().events_len(),
        0,
        "disabled collector recorded events"
    );

    // Pass 2: everything on — including the live exposition server on
    // an ephemeral port, polled concurrently while the grid runs, which
    // is exactly the `--obs-listen` production shape.
    fieldswap_obs::enable_tracing();
    fieldswap_obs::enable_metrics();
    let server = fieldswap_obs::ObsServer::start(fieldswap_obs::global(), "127.0.0.1:0")
        .expect("bind ephemeral obs port");
    let addr = server.addr();
    let stop_polling = std::sync::atomic::AtomicBool::new(false);
    let traced_json = std::thread::scope(|s| {
        let poller = s.spawn(|| {
            let mut polls = 0u32;
            while !stop_polling.load(std::sync::atomic::Ordering::Relaxed) {
                let (status, body) = http_get(addr, "/healthz");
                assert_eq!(status, 200, "healthz failed mid-run");
                assert_eq!(body, "ok\n");
                let (status, _) = http_get(addr, "/metrics");
                assert_eq!(status, 200, "metrics failed mid-run");
                polls += 1;
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            polls
        });
        let traced = Harness::new(opts).run_grid(&points);
        stop_polling.store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(poller.join().unwrap() > 0, "poller never ran");
        serde_json::to_string_pretty(&traced).unwrap()
    });

    assert_eq!(
        untraced_json, traced_json,
        "tracing/metrics/live server changed experiment output"
    );

    // After the run, the endpoints serve the collected state.
    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("fieldswap_train_epochs_total"), "{body}");
    let (status, body) = http_get(addr, "/spans");
    assert_eq!(status, 200);
    assert!(body.contains("\"path\":\"cell\""), "{body}");
    assert!(body.contains("\"path\":\"cell/train\""), "{body}");
    server.shutdown();

    // The trace exports carry the span data in their own formats, with
    // the named grid workers as per-thread tracks.
    let events = fieldswap_obs::global().events();
    let chrome = fieldswap_obs::render_chrome_trace(&events);
    assert!(chrome.contains("\"ph\":\"X\""), "no complete events");
    assert!(chrome.contains("\"ph\":\"M\""), "no thread metadata");
    assert!(
        chrome.contains("fieldswap-grid-"),
        "grid workers unnamed in chrome trace"
    );
    let collapsed = fieldswap_obs::render_collapsed(&events);
    assert!(collapsed.contains("cell;train"), "{collapsed}");

    // And trace_report can ingest the JSONL round-trip.
    let jsonl = fieldswap_obs::global().render_jsonl();
    let spans = fieldswap_bench::trace_report::parse_trace(&jsonl).expect("parse own trace");
    assert!(!spans.is_empty());
    let report = fieldswap_bench::trace_report::render_report(&spans);
    assert!(report.contains("critical path"), "{report}");
    assert!(report.contains("worker utilization"), "{report}");

    // The traced pass must actually have observed the run.
    assert!(
        fieldswap_obs::global().events_len() > 0,
        "no events recorded"
    );
    let summary = fieldswap_obs::span_summary();
    for phase in [
        "harness_build",
        "cell",
        "sample",
        "infer",
        "augment",
        "train",
        "eval",
    ] {
        assert!(
            summary.contains(phase),
            "span summary missing {phase}:\n{summary}"
        );
    }
    let prom = fieldswap_obs::render_prometheus();
    for metric in [
        "fieldswap_swap_attempts_total",
        "fieldswap_swap_synthetics_total",
        "fieldswap_matcher_probes_total",
        "fieldswap_cache_hits_total{cache=\"domain_data\"}",
        "fieldswap_cache_misses_total{cache=\"phrase_cache\"}",
        "fieldswap_train_epochs_total",
        "fieldswap_train_epoch_ms",
        "fieldswap_eval_docs_total",
        "fieldswap_keyphrase_candidates_total",
        "fieldswap_worker_threads",
    ] {
        assert!(
            prom.contains(metric),
            "prometheus dump missing {metric}:\n{prom}"
        );
    }
}
