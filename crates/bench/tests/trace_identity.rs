//! Observability must be inert for correctness: enabling tracing and
//! metrics collection may not change a single byte of experiment output.
//!
//! The test runs a small grid twice — first with the collector disabled,
//! then with tracing + metrics globally enabled — and compares the
//! serialized results byte for byte. The untraced pass MUST come first:
//! the global enable flags are one-way by design (call sites only ever
//! check a relaxed atomic, there is no disable path to race with).

use fieldswap_datagen::Domain;
use fieldswap_eval::{Arm, Harness, HarnessOptions};

fn tiny_options() -> HarnessOptions {
    HarnessOptions {
        n_samples: 1,
        n_trials: 1,
        pretrain_docs: 30,
        lexicon_docs: 50,
        neighbors: 12,
        test_cap: 40,
        epochs: 3,
        synth_ratio: 2.0,
        synthetic_cap: 300,
        seed: 0x7E57,
        jobs: 2,
        train_jobs: 2,
        sanitize: true,
        quantized: false,
    }
}

#[test]
fn quick_grid_is_byte_identical_with_tracing_on() {
    let opts = tiny_options();
    let points = [
        (Domain::Earnings, 10, Arm::AutoTypeToType),
        (Domain::Fara, 10, Arm::Baseline),
    ];

    // Pass 1: collector disabled (process default).
    assert!(!fieldswap_obs::tracing_enabled());
    assert!(!fieldswap_obs::metrics_enabled());
    let untraced = Harness::new(opts).run_grid(&points);
    let untraced_json = serde_json::to_string_pretty(&untraced).unwrap();
    assert_eq!(
        fieldswap_obs::global().events_len(),
        0,
        "disabled collector recorded events"
    );

    // Pass 2: everything on.
    fieldswap_obs::enable_tracing();
    fieldswap_obs::enable_metrics();
    let traced = Harness::new(opts).run_grid(&points);
    let traced_json = serde_json::to_string_pretty(&traced).unwrap();

    assert_eq!(
        untraced_json, traced_json,
        "tracing/metrics changed experiment output"
    );

    // The traced pass must actually have observed the run.
    assert!(
        fieldswap_obs::global().events_len() > 0,
        "no events recorded"
    );
    let summary = fieldswap_obs::span_summary();
    for phase in [
        "harness_build",
        "cell",
        "sample",
        "infer",
        "augment",
        "train",
        "eval",
    ] {
        assert!(
            summary.contains(phase),
            "span summary missing {phase}:\n{summary}"
        );
    }
    let prom = fieldswap_obs::render_prometheus();
    for metric in [
        "fieldswap_swap_attempts_total",
        "fieldswap_swap_synthetics_total",
        "fieldswap_matcher_probes_total",
        "fieldswap_cache_hits_total{cache=\"domain_data\"}",
        "fieldswap_cache_misses_total{cache=\"phrase_cache\"}",
        "fieldswap_train_epochs_total",
        "fieldswap_train_epoch_ms",
        "fieldswap_eval_docs_total",
        "fieldswap_keyphrase_candidates_total",
        "fieldswap_worker_threads",
    ] {
        assert!(
            prom.contains(metric),
            "prometheus dump missing {metric}:\n{prom}"
        );
    }
}
