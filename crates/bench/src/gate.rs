//! CI gate logic: the comparisons behind the `bench_gate` binary, kept as
//! plain functions over parsed JSON so they are unit-testable instead of
//! living in workflow YAML.
//!
//! Three gates:
//!
//! * **perf** — compares a fresh `perf_profile` report against the
//!   committed `BENCH_train.json` baseline, stage by stage, and fails
//!   only when throughput regresses by more than the tolerance (default
//!   30%, generous because CI machines are noisy). Improvements and new
//!   stages never fail.
//! * **quant** — compares two `fig4_macro_f1 --json` dumps (exact f32 vs
//!   `--quantized`) point by point, and fails when any point's macro-F1
//!   drifts by more than the epsilon shared with the in-repo guard test
//!   ([`fieldswap_eval::QUANT_MACRO_F1_EPSILON`]).
//! * **serve** — compares a fresh `serve_bench --json` dump against the
//!   committed `BENCH_serve.json` baseline on sustained throughput and
//!   tail latency, with the same tolerance and missing/zero-value
//!   guards as the perf gate.

use serde_json::Value;

/// One stage's throughput comparison in the perf gate.
#[derive(Debug, Clone, PartialEq)]
pub struct StageDelta {
    /// Stage name (`extract_predict`, `infer_frozen`, ...).
    pub stage: String,
    /// Baseline docs/sec from the committed report.
    pub baseline_dps: f64,
    /// Current docs/sec from the fresh report.
    pub current_dps: f64,
    /// Fractional regression: `(baseline - current) / baseline`.
    /// Negative means the current run is faster.
    pub regression: f64,
    /// Whether this stage alone fails the gate.
    pub failed: bool,
}

/// One grid point's macro-F1 comparison in the quantization gate.
#[derive(Debug, Clone, PartialEq)]
pub struct PointDelta {
    /// `domain / size / arm` label of the point.
    pub label: String,
    /// Macro-F1 of the exact f32 run.
    pub exact: f64,
    /// Macro-F1 of the quantized run.
    pub quantized: f64,
    /// `|exact - quantized|` in F1 points.
    pub delta: f64,
    /// Whether this point alone fails the gate.
    pub failed: bool,
}

/// The stages the perf gate watches. The decode paths are tight loops
/// whose floor is stable, and since schema 4 the training stages are
/// warm-up + min-of-K measurements rather than single shots, so their
/// floor is stable enough to gate too. The remaining stages
/// (`nn_forward`, `backward`, `harness_build`) stay informational.
pub const PERF_GATE_STAGES: [&str; 4] = [
    "extract_predict",
    "infer_frozen",
    "extract_train",
    "nn_train",
];

fn stage_dps(report: &Value, stage: &str) -> Option<f64> {
    report.get(stage)?.get("docs_per_sec")?.as_f64()
}

/// Compares `current` against `baseline` (both parsed `perf_profile`
/// reports) over [`PERF_GATE_STAGES`]. A stage fails when its throughput
/// dropped by more than `max_regression` (a fraction, e.g. `0.30`).
///
/// A stage missing from the *baseline* is reported as passing with a
/// zero baseline — new stages must not fail the gate on the commit that
/// introduces them. A stage missing from *current* fails: the fresh run
/// did not produce the number the gate exists to check.
pub fn perf_gate(baseline: &Value, current: &Value, max_regression: f64) -> Vec<StageDelta> {
    PERF_GATE_STAGES
        .iter()
        .map(|&stage| {
            let base = stage_dps(baseline, stage);
            let cur = stage_dps(current, stage);
            match (base, cur) {
                (_, None) => StageDelta {
                    stage: stage.to_string(),
                    baseline_dps: base.unwrap_or(0.0),
                    current_dps: 0.0,
                    regression: 1.0,
                    failed: true,
                },
                (None, Some(c)) => StageDelta {
                    stage: stage.to_string(),
                    baseline_dps: 0.0,
                    current_dps: c,
                    regression: 0.0,
                    failed: false,
                },
                (Some(b), Some(c)) => {
                    // A degenerate (zero/negative) baseline cannot
                    // express a regression fraction; treat as new.
                    let regression = if b > 0.0 { (b - c) / b } else { 0.0 };
                    StageDelta {
                        stage: stage.to_string(),
                        baseline_dps: b,
                        current_dps: c,
                        regression,
                        failed: regression > max_regression,
                    }
                }
            }
        })
        .collect()
}

/// One metric's comparison in the serve gate.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeDelta {
    /// Metric name (`throughput_rps`, `p99_ms`).
    pub metric: String,
    /// Baseline value from the committed `BENCH_serve.json`.
    pub baseline: f64,
    /// Current value from the fresh `serve_bench` run.
    pub current: f64,
    /// Fractional regression in the metric's bad direction: throughput
    /// dropping and latency rising are both positive. Negative means the
    /// current run improved.
    pub regression: f64,
    /// Whether this metric alone fails the gate.
    pub failed: bool,
}

/// The `BENCH_serve.json` metrics the serve gate watches, with the
/// direction that counts as better. Median latency stays informational —
/// p99 is the serving contract, p50 is too twitchy under CI noise.
/// Schema v2 adds `availability` (fraction of requests that ultimately
/// returned 200 — must not collapse) and `shed_rate` (fraction of
/// responses that were `503` sheds — must not creep up; its clean-path
/// baseline is 0, so it stays informational until a baseline records a
/// real shed rate, per the zero-baseline guard).
pub const SERVE_GATE_METRICS: [(&str, bool); 4] = [
    ("throughput_rps", true),
    ("p99_ms", false),
    ("availability", true),
    ("shed_rate", false),
];

/// Compares a fresh `serve_bench --json` dump (`current`) against the
/// committed `BENCH_serve.json` (`baseline`). Throughput fails when it
/// *dropped* by more than `max_regression`; p99 latency fails when it
/// *rose* by more than `max_regression`; availability and shed rate
/// follow their directions in [`SERVE_GATE_METRICS`].
///
/// The guard semantics mirror [`perf_gate`]: a metric missing from the
/// baseline passes with a zero baseline (new metric on the commit that
/// introduces it), a metric missing from `current` fails (the fresh run
/// did not produce the number the gate exists to check), and a
/// zero/negative baseline cannot express a regression fraction so it is
/// treated as new.
pub fn serve_gate(baseline: &Value, current: &Value, max_regression: f64) -> Vec<ServeDelta> {
    SERVE_GATE_METRICS
        .iter()
        .map(|&(metric, higher_is_better)| {
            let base = baseline.get(metric).and_then(Value::as_f64);
            let cur = current.get(metric).and_then(Value::as_f64);
            match (base, cur) {
                (_, None) => ServeDelta {
                    metric: metric.to_string(),
                    baseline: base.unwrap_or(0.0),
                    current: 0.0,
                    regression: 1.0,
                    failed: true,
                },
                (None, Some(c)) => ServeDelta {
                    metric: metric.to_string(),
                    baseline: 0.0,
                    current: c,
                    regression: 0.0,
                    failed: false,
                },
                (Some(b), Some(c)) => {
                    let regression = if b > 0.0 {
                        if higher_is_better {
                            (b - c) / b
                        } else {
                            (c - b) / b
                        }
                    } else {
                        0.0
                    };
                    ServeDelta {
                        metric: metric.to_string(),
                        baseline: b,
                        current: c,
                        regression,
                        failed: regression > max_regression,
                    }
                }
            }
        })
        .collect()
}

fn point_entries(dump: &Value) -> Vec<(String, f64)> {
    let Some(points) = dump.as_array() else {
        return Vec::new();
    };
    points
        .iter()
        .filter_map(|p| {
            let label = format!(
                "{} / {} / {}",
                p.get("domain")?.as_str()?,
                p.get("size")?.as_u64()?,
                p.get("arm")?.as_str()?
            );
            Some((label, p.get("macro_f1")?.as_f64()?))
        })
        .collect()
}

/// Compares two `fig4_macro_f1 --json` dumps point by point. Points are
/// matched by `(domain, size, arm)`; a point present in only one dump
/// fails (the two runs did not cover the same grid, so the comparison is
/// meaningless), and a matched point fails when its absolute macro-F1
/// delta exceeds `epsilon`.
pub fn quant_gate(exact: &Value, quantized: &Value, epsilon: f64) -> Vec<PointDelta> {
    let ex = point_entries(exact);
    let qu = point_entries(quantized);
    let mut out = Vec::new();
    for (label, e) in &ex {
        match qu.iter().find(|(l, _)| l == label) {
            Some((_, q)) => {
                let delta = (e - q).abs();
                out.push(PointDelta {
                    label: label.clone(),
                    exact: *e,
                    quantized: *q,
                    delta,
                    failed: delta > epsilon,
                });
            }
            None => out.push(PointDelta {
                label: label.clone(),
                exact: *e,
                quantized: f64::NAN,
                delta: f64::INFINITY,
                failed: true,
            }),
        }
    }
    for (label, q) in &qu {
        if !ex.iter().any(|(l, _)| l == label) {
            out.push(PointDelta {
                label: label.clone(),
                exact: f64::NAN,
                quantized: *q,
                delta: f64::INFINITY,
                failed: true,
            });
        }
    }
    out
}

/// Renders the perf comparison as a fixed-width table string.
pub fn render_perf_table(deltas: &[StageDelta]) -> String {
    let mut s = format!(
        "{:<18} {:>14} {:>14} {:>12}  {}\n",
        "stage", "baseline d/s", "current d/s", "regression", "verdict"
    );
    for d in deltas {
        s.push_str(&format!(
            "{:<18} {:>14.1} {:>14.1} {:>11.1}%  {}\n",
            d.stage,
            d.baseline_dps,
            d.current_dps,
            d.regression * 100.0,
            if d.failed { "FAIL" } else { "ok" }
        ));
    }
    s
}

/// Renders the serve comparison as a fixed-width table string.
pub fn render_serve_table(deltas: &[ServeDelta]) -> String {
    let mut s = format!(
        "{:<16} {:>12} {:>12} {:>12}  {}\n",
        "metric", "baseline", "current", "regression", "verdict"
    );
    for d in deltas {
        s.push_str(&format!(
            "{:<16} {:>12.2} {:>12.2} {:>11.1}%  {}\n",
            d.metric,
            d.baseline,
            d.current,
            d.regression * 100.0,
            if d.failed { "FAIL" } else { "ok" }
        ));
    }
    s
}

/// Renders the quantization comparison as a fixed-width table string.
pub fn render_quant_table(deltas: &[PointDelta], epsilon: f64) -> String {
    let mut s = format!(
        "{:<50} {:>10} {:>10} {:>8}  verdict (epsilon {epsilon})\n",
        "point", "exact F1", "quant F1", "delta"
    );
    for d in deltas {
        s.push_str(&format!(
            "{:<50} {:>10.2} {:>10.2} {:>8.3}  {}\n",
            d.label,
            d.exact,
            d.quantized,
            d.delta,
            if d.failed { "FAIL" } else { "ok" }
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Value {
        serde_json::from_str(text).expect("test JSON")
    }

    fn report(predict_dps: f64, frozen_dps: f64, train_dps: f64, nn_train_dps: f64) -> Value {
        parse(&format!(
            r#"{{"schema_version": 4,
                 "extract_predict": {{"wall_ms": 50.0, "docs_per_sec": {predict_dps}}},
                 "infer_frozen": {{"wall_ms": 10.0, "docs_per_sec": {frozen_dps}}},
                 "extract_train": {{"wall_ms": 250.0, "docs_per_sec": {train_dps}, "iters": 3, "jobs": 1}},
                 "nn_train": {{"wall_ms": 800.0, "docs_per_sec": {nn_train_dps}, "iters": 3, "jobs": 1}}}}"#
        ))
    }

    #[test]
    fn perf_gate_passes_within_tolerance() {
        let deltas = perf_gate(
            &report(2400.0, 12000.0, 2800.0, 190.0),
            &report(1700.0, 9000.0, 2100.0, 150.0),
            0.30,
        );
        assert_eq!(deltas.len(), 4);
        assert!(deltas.iter().all(|d| !d.failed), "{deltas:?}");
        // 21–29% regressions across the stages — inside the 30% budget.
        assert!((deltas[0].regression - (2400.0 - 1700.0) / 2400.0).abs() < 1e-12);
    }

    #[test]
    fn perf_gate_fails_beyond_tolerance() {
        let base = report(2400.0, 12000.0, 2800.0, 190.0);
        let deltas = perf_gate(&base, &report(2400.0, 8000.0, 2800.0, 190.0), 0.30);
        let frozen = deltas.iter().find(|d| d.stage == "infer_frozen").unwrap();
        assert!(frozen.failed);
        let predict = deltas
            .iter()
            .find(|d| d.stage == "extract_predict")
            .unwrap();
        assert!(!predict.failed);

        // A training-stage collapse fails the gate on its own.
        let deltas = perf_gate(&base, &report(2400.0, 12000.0, 1500.0, 190.0), 0.30);
        let train = deltas.iter().find(|d| d.stage == "extract_train").unwrap();
        assert!(train.failed);
        assert!(deltas.iter().filter(|d| d.failed).count() == 1);

        let deltas = perf_gate(&base, &report(2400.0, 12000.0, 2800.0, 90.0), 0.30);
        let nn = deltas.iter().find(|d| d.stage == "nn_train").unwrap();
        assert!(nn.failed);
    }

    #[test]
    fn perf_gate_improvement_never_fails() {
        let deltas = perf_gate(
            &report(2400.0, 12000.0, 2800.0, 190.0),
            &report(9000.0, 50000.0, 9500.0, 700.0),
            0.30,
        );
        assert!(deltas.iter().all(|d| !d.failed));
        assert!(deltas.iter().all(|d| d.regression < 0.0));
    }

    #[test]
    fn perf_gate_new_stage_passes_missing_current_fails() {
        // Baseline predates the infer_frozen and gated training stages.
        let old = parse(r#"{"extract_predict": {"docs_per_sec": 2400.0}}"#);
        let deltas = perf_gate(&old, &report(2400.0, 12000.0, 2800.0, 190.0), 0.30);
        for stage in ["infer_frozen", "extract_train", "nn_train"] {
            let d = deltas.iter().find(|d| d.stage == stage).unwrap();
            assert!(!d.failed, "new stage {stage} must not fail the gate");
            assert_eq!(d.baseline_dps, 0.0);
        }

        // Current run lost stages the baseline has: each fails.
        let deltas = perf_gate(&report(2400.0, 12000.0, 2800.0, 190.0), &old, 0.30);
        for stage in ["infer_frozen", "extract_train", "nn_train"] {
            let d = deltas.iter().find(|d| d.stage == stage).unwrap();
            assert!(d.failed, "missing current stage {stage} must fail");
        }
    }

    #[test]
    fn perf_gate_zero_baseline_guarded() {
        // A corrupt baseline with 0 docs/sec must not divide by zero or
        // auto-fail the stage.
        let zero = parse(
            r#"{"extract_predict": {"docs_per_sec": 0.0},
                "infer_frozen": {"docs_per_sec": 0.0},
                "extract_train": {"docs_per_sec": 0.0},
                "nn_train": {"docs_per_sec": 0.0}}"#,
        );
        let deltas = perf_gate(&zero, &report(2400.0, 12000.0, 2800.0, 190.0), 0.30);
        assert!(deltas.iter().all(|d| !d.failed));
        assert!(deltas.iter().all(|d| d.regression == 0.0));
    }

    fn serve_report(throughput_rps: f64, p99_ms: f64) -> Value {
        serve_report_v2(throughput_rps, p99_ms, 1.0, 0.0)
    }

    fn serve_report_v2(
        throughput_rps: f64,
        p99_ms: f64,
        availability: f64,
        shed_rate: f64,
    ) -> Value {
        parse(&format!(
            r#"{{"schema_version": 2, "seed": 7, "requests": 400,
                 "concurrency": 4, "docs_per_request": 1,
                 "throughput_rps": {throughput_rps},
                 "p50_ms": 2.5, "p99_ms": {p99_ms}, "errors": 0,
                 "shed_503": 0, "deadline_504": 0, "retries": 0,
                 "shed_rate": {shed_rate}, "availability": {availability}}}"#
        ))
    }

    #[test]
    fn serve_gate_passes_within_tolerance() {
        // Throughput down 20%, p99 up 20% — both inside the 30% budget.
        let deltas = serve_gate(&serve_report(1000.0, 5.0), &serve_report(800.0, 6.0), 0.30);
        assert_eq!(deltas.len(), 4);
        assert!(deltas.iter().all(|d| !d.failed), "{deltas:?}");
        assert!((deltas[0].regression - 0.20).abs() < 1e-12);
        assert!((deltas[1].regression - 0.20).abs() < 1e-12);
    }

    #[test]
    fn serve_gate_fails_on_throughput_drop_or_p99_rise() {
        let base = serve_report(1000.0, 5.0);
        let deltas = serve_gate(&base, &serve_report(600.0, 5.0), 0.30);
        let tp = deltas
            .iter()
            .find(|d| d.metric == "throughput_rps")
            .unwrap();
        assert!(tp.failed);
        assert!(deltas.iter().filter(|d| d.failed).count() == 1);

        let deltas = serve_gate(&base, &serve_report(1000.0, 7.0), 0.30);
        let p99 = deltas.iter().find(|d| d.metric == "p99_ms").unwrap();
        assert!(p99.failed);
        assert!(deltas.iter().filter(|d| d.failed).count() == 1);
    }

    #[test]
    fn serve_gate_improvement_never_fails() {
        // Faster, lower-latency, more available, shedding less: every
        // regression is negative.
        let deltas = serve_gate(
            &serve_report_v2(1000.0, 5.0, 0.9, 0.10),
            &serve_report_v2(3000.0, 2.0, 1.0, 0.05),
            0.30,
        );
        assert!(deltas.iter().all(|d| !d.failed));
        assert!(deltas.iter().all(|d| d.regression < 0.0));
    }

    #[test]
    fn serve_gate_availability_collapse_fails() {
        let base = serve_report_v2(1000.0, 5.0, 1.0, 0.0);
        // 0.8 availability is a 20% regression: inside the 30% budget.
        let deltas = serve_gate(&base, &serve_report_v2(1000.0, 5.0, 0.8, 0.0), 0.30);
        assert!(deltas.iter().all(|d| !d.failed), "{deltas:?}");
        // 0.6 is a 40% collapse: the availability row alone fails.
        let deltas = serve_gate(&base, &serve_report_v2(1000.0, 5.0, 0.6, 0.0), 0.30);
        let avail = deltas.iter().find(|d| d.metric == "availability").unwrap();
        assert!(avail.failed);
        assert_eq!(deltas.iter().filter(|d| d.failed).count(), 1);
    }

    #[test]
    fn serve_gate_shed_rate_rise_fails_against_nonzero_baseline() {
        // A clean-path baseline sheds nothing, so shed_rate is guarded by
        // the zero-baseline rule; against a real baseline a rise fails.
        let base = serve_report_v2(1000.0, 5.0, 1.0, 0.10);
        let deltas = serve_gate(&base, &serve_report_v2(1000.0, 5.0, 1.0, 0.20), 0.30);
        let shed = deltas.iter().find(|d| d.metric == "shed_rate").unwrap();
        assert!(shed.failed);
        assert!((shed.regression - 1.0).abs() < 1e-12);
    }

    #[test]
    fn serve_gate_new_metric_passes_missing_current_fails() {
        // A v1 baseline predates p99_ms and the v2 overload metrics: new
        // metrics must not fail the gate on the commit introducing them.
        let old = parse(r#"{"throughput_rps": 1000.0}"#);
        let deltas = serve_gate(&old, &serve_report(1000.0, 5.0), 0.30);
        for metric in ["p99_ms", "availability", "shed_rate"] {
            let d = deltas.iter().find(|d| d.metric == metric).unwrap();
            assert!(!d.failed, "new metric {metric} must not fail the gate");
            assert_eq!(d.baseline, 0.0);
        }

        // Current run lost metrics the baseline has: each fails.
        let deltas = serve_gate(&serve_report(1000.0, 5.0), &old, 0.30);
        for metric in ["p99_ms", "availability", "shed_rate"] {
            let d = deltas.iter().find(|d| d.metric == metric).unwrap();
            assert!(d.failed, "missing current metric {metric} must fail");
            assert_eq!(d.regression, 1.0);
        }
    }

    #[test]
    fn serve_gate_zero_baseline_guarded() {
        // A corrupt all-zero baseline must not divide by zero or
        // auto-fail either metric (a zero-p99 baseline would otherwise
        // make any real latency an infinite regression).
        let deltas = serve_gate(&serve_report(0.0, 0.0), &serve_report(1000.0, 5.0), 0.30);
        assert!(deltas.iter().all(|d| !d.failed), "{deltas:?}");
        assert!(deltas.iter().all(|d| d.regression == 0.0));
    }

    fn points(f1s: &[(&str, u64, &str, f64)]) -> Value {
        let items: Vec<String> = f1s
            .iter()
            .map(|(d, s, a, f)| {
                format!(r#"{{"domain": "{d}", "size": {s}, "arm": "{a}", "macro_f1": {f}}}"#)
            })
            .collect();
        parse(&format!("[{}]", items.join(",")))
    }

    #[test]
    fn quant_gate_within_epsilon_passes() {
        let ex = points(&[
            ("Earnings", 50, "baseline", 47.33),
            ("Earnings", 50, "t2t", 52.10),
        ]);
        let qu = points(&[
            ("Earnings", 50, "baseline", 47.37),
            ("Earnings", 50, "t2t", 51.80),
        ]);
        let deltas = quant_gate(&ex, &qu, 1.5);
        assert_eq!(deltas.len(), 2);
        assert!(deltas.iter().all(|d| !d.failed), "{deltas:?}");
    }

    #[test]
    fn quant_gate_drift_fails() {
        let ex = points(&[("Earnings", 50, "baseline", 47.33)]);
        let qu = points(&[("Earnings", 50, "baseline", 43.00)]);
        let deltas = quant_gate(&ex, &qu, 1.5);
        assert!(deltas[0].failed);
        assert!((deltas[0].delta - 4.33).abs() < 1e-9);
    }

    #[test]
    fn quant_gate_mismatched_grids_fail() {
        let ex = points(&[("Earnings", 50, "baseline", 47.33)]);
        let qu = points(&[("Earnings", 100, "baseline", 47.33)]);
        let deltas = quant_gate(&ex, &qu, 1.5);
        assert_eq!(deltas.len(), 2);
        assert!(deltas.iter().all(|d| d.failed));
    }

    #[test]
    fn tables_render_every_row() {
        let deltas = perf_gate(
            &report(2400.0, 12000.0, 2800.0, 190.0),
            &report(2400.0, 8000.0, 2800.0, 190.0),
            0.30,
        );
        let table = render_perf_table(&deltas);
        assert!(table.contains("extract_predict") && table.contains("infer_frozen"));
        assert!(table.contains("extract_train") && table.contains("nn_train"));
        assert!(table.contains("FAIL") && table.contains("ok"));

        let ex = points(&[("Earnings", 50, "baseline", 47.33)]);
        let qu = points(&[("Earnings", 50, "baseline", 47.37)]);
        let table = render_quant_table(&quant_gate(&ex, &qu, 1.5), 1.5);
        assert!(table.contains("Earnings / 50 / baseline"));

        let deltas = serve_gate(&serve_report(1000.0, 5.0), &serve_report(600.0, 2.0), 0.30);
        let table = render_serve_table(&deltas);
        assert!(table.contains("throughput_rps") && table.contains("p99_ms"));
        assert!(table.contains("FAIL") && table.contains("ok"));
    }
}
