//! Trace analysis for the JSONL traces written by `--trace`: per-phase
//! total/self/call tables, the critical path through the span tree,
//! per-worker utilization timelines, and a phase-level regression diff
//! against a baseline trace with a `--gate-pct` failure threshold (the
//! `trace_report` binary; the trace-side sibling of [`crate::gate`]).

use fieldswap_obs::{aggregate_path_durations, SpanNode};
use serde_json::Value;
use std::collections::BTreeMap;

/// One span parsed back out of a JSONL trace line.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// `/`-joined span path (e.g. `cell/train`).
    pub path: String,
    /// Dense id of the recording thread.
    pub thread: u64,
    /// Start time in microseconds since the run's epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// Parses a JSONL trace into its span records, skipping log events.
/// Lines that are not valid JSON objects are an error (a truncated
/// trace should be diagnosed, not silently half-read); unknown event
/// types are skipped so the format can grow.
pub fn parse_trace(jsonl: &str) -> Result<Vec<TraceSpan>, String> {
    let mut spans = Vec::new();
    for (idx, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("line {}: not valid JSON ({e:?})", idx + 1))?;
        if v.get("type").and_then(Value::as_str) != Some("span") {
            continue;
        }
        let field = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("line {}: span missing {k}", idx + 1))
        };
        spans.push(TraceSpan {
            path: v
                .get("path")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("line {}: span missing path", idx + 1))?
                .to_string(),
            thread: field("thread")?,
            start_us: field("start_us")?,
            dur_us: field("dur_us")?,
        });
    }
    Ok(spans)
}

/// Aggregates parsed spans into per-path nodes (same aggregation as the
/// live collector's span summary).
pub fn aggregate(spans: &[TraceSpan]) -> Vec<SpanNode> {
    aggregate_path_durations(spans.iter().map(|s| (s.path.as_str(), s.dur_us)))
}

/// Renders the per-phase table: one row per span path with call count,
/// total wall time, and self time (total minus children), indented by
/// tree depth and sorted so children follow parents.
pub fn render_phase_table(nodes: &[SpanNode]) -> String {
    let mut out = String::from(
        "phase                                     calls    total ms     self ms  self%\n",
    );
    out.push_str(&"-".repeat(78));
    out.push('\n');
    let grand_total: u64 = nodes
        .iter()
        .filter(|n| n.depth() == 0)
        .map(|n| n.total_us)
        .sum();
    for n in nodes {
        let label = format!("{}{}", "  ".repeat(n.depth()), n.name());
        let self_pct = if grand_total > 0 {
            100.0 * n.self_us() as f64 / grand_total as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{label:<40} {:>6}  {:>10.1}  {:>10.1}  {self_pct:>4.1}\n",
            n.calls,
            n.total_us as f64 / 1e3,
            n.self_us() as f64 / 1e3,
        ));
    }
    out
}

/// The critical path: starting from the root with the largest total
/// time, repeatedly descend into the child with the largest total time.
/// On an aggregated tree this is the chain of phases that dominated the
/// run — the place an optimization must land to move the wall clock.
pub fn critical_path(nodes: &[SpanNode]) -> Vec<&SpanNode> {
    let mut path = Vec::new();
    let mut current = nodes
        .iter()
        .filter(|n| n.depth() == 0)
        .max_by_key(|n| n.total_us);
    while let Some(node) = current {
        path.push(node);
        let prefix = format!("{}/", node.path);
        current = nodes
            .iter()
            .filter(|n| n.path.starts_with(&prefix) && n.depth() == node.depth() + 1)
            .max_by_key(|n| n.total_us);
    }
    path
}

/// Renders the critical path with per-step totals and the share each
/// step's self time takes of the path root.
pub fn render_critical_path(nodes: &[SpanNode]) -> String {
    let path = critical_path(nodes);
    let Some(root) = path.first() else {
        return "critical path: (no spans)\n".to_string();
    };
    let mut out = String::from("critical path (largest-total chain):\n");
    for n in &path {
        let share = if root.total_us > 0 {
            100.0 * n.total_us as f64 / root.total_us as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {:<38} total {:>9.1}ms  self {:>9.1}ms  {share:>5.1}% of {}\n",
            n.path,
            n.total_us as f64 / 1e3,
            n.self_us() as f64 / 1e3,
            root.name(),
        ));
    }
    out
}

/// Per-thread busy time, computed as the union of the thread's span
/// intervals (nested spans don't double-count).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerUtilization {
    /// Dense thread id from the trace.
    pub thread: u64,
    /// Number of spans recorded on this thread.
    pub spans: u64,
    /// Busy microseconds (union of span intervals).
    pub busy_us: u64,
    /// Per-bucket busy fraction over the run window, for the ASCII
    /// timeline (fixed bucket count, run window split evenly).
    pub timeline: Vec<f64>,
}

/// Number of buckets in the utilization timeline.
pub const TIMELINE_BUCKETS: usize = 48;

/// Computes per-worker utilization over the run window
/// `[min start, max end]` across all spans.
pub fn worker_utilization(spans: &[TraceSpan]) -> Vec<WorkerUtilization> {
    let Some(t0) = spans.iter().map(|s| s.start_us).min() else {
        return Vec::new();
    };
    let t1 = spans
        .iter()
        .map(|s| s.start_us + s.dur_us)
        .max()
        .unwrap_or(t0);
    let window = (t1 - t0).max(1);
    let mut by_thread: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
    for s in spans {
        by_thread
            .entry(s.thread)
            .or_default()
            .push((s.start_us, s.start_us + s.dur_us));
    }
    by_thread
        .into_iter()
        .map(|(thread, mut intervals)| {
            let spans = intervals.len() as u64;
            // Union of intervals: sort by start, merge overlaps.
            intervals.sort_unstable();
            let mut merged: Vec<(u64, u64)> = Vec::new();
            for (start, end) in intervals {
                match merged.last_mut() {
                    Some(last) if start <= last.1 => last.1 = last.1.max(end),
                    _ => merged.push((start, end)),
                }
            }
            let busy_us: u64 = merged.iter().map(|(s, e)| e - s).sum();
            let bucket_us = (window as f64) / TIMELINE_BUCKETS as f64;
            let mut timeline = vec![0.0f64; TIMELINE_BUCKETS];
            for &(start, end) in &merged {
                for (b, slot) in timeline.iter_mut().enumerate() {
                    let b0 = t0 as f64 + b as f64 * bucket_us;
                    let b1 = b0 + bucket_us;
                    let overlap = (end as f64).min(b1) - (start as f64).max(b0);
                    if overlap > 0.0 {
                        *slot += overlap / bucket_us;
                    }
                }
            }
            for slot in &mut timeline {
                *slot = slot.min(1.0);
            }
            WorkerUtilization {
                thread,
                spans,
                busy_us,
                timeline,
            }
        })
        .collect()
}

/// Renders the per-worker utilization table with an ASCII timeline:
/// each column is one slice of the run window, shaded by busy fraction.
pub fn render_utilization(spans: &[TraceSpan]) -> String {
    let workers = worker_utilization(spans);
    if workers.is_empty() {
        return "worker utilization: (no spans)\n".to_string();
    }
    let window_us = spans
        .iter()
        .map(|s| s.start_us + s.dur_us)
        .max()
        .unwrap_or(0)
        .saturating_sub(spans.iter().map(|s| s.start_us).min().unwrap_or(0))
        .max(1);
    let mut out = format!(
        "worker utilization over {:.1}ms window ('.'<25% ':'<50% '+'<75% '#'>=75%):\n",
        window_us as f64 / 1e3
    );
    for w in &workers {
        let bar: String = w
            .timeline
            .iter()
            .map(|&f| match f {
                f if f >= 0.75 => '#',
                f if f >= 0.50 => '+',
                f if f >= 0.25 => ':',
                f if f > 0.0 => '.',
                _ => ' ',
            })
            .collect();
        out.push_str(&format!(
            "  thread {:>3}  {:>5.1}% busy  {:>6} spans  |{bar}|\n",
            w.thread,
            100.0 * w.busy_us as f64 / window_us as f64,
            w.spans,
        ));
    }
    out
}

/// One row of the baseline diff: a phase's total time in both traces.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDelta {
    /// Span path.
    pub path: String,
    /// Baseline total, microseconds (0 = phase absent from baseline).
    pub baseline_us: u64,
    /// Current total, microseconds (0 = phase absent from current).
    pub current_us: u64,
}

impl PhaseDelta {
    /// Relative change in percent (positive = regression). A phase new
    /// in the current trace reports +100%.
    pub fn pct(&self) -> f64 {
        if self.baseline_us == 0 {
            if self.current_us == 0 {
                0.0
            } else {
                100.0
            }
        } else {
            100.0 * (self.current_us as f64 - self.baseline_us as f64) / self.baseline_us as f64
        }
    }
}

/// Diffs two aggregated traces phase-by-phase (union of paths, sorted).
pub fn diff_phases(baseline: &[SpanNode], current: &[SpanNode]) -> Vec<PhaseDelta> {
    let mut map: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for n in baseline {
        map.entry(&n.path).or_default().0 = n.total_us;
    }
    for n in current {
        map.entry(&n.path).or_default().1 = n.total_us;
    }
    map.into_iter()
        .map(|(path, (baseline_us, current_us))| PhaseDelta {
            path: path.to_string(),
            baseline_us,
            current_us,
        })
        .collect()
}

/// Renders the regression diff table and returns the phases that
/// regressed past the gate: total grew more than `gate_pct` percent AND
/// the current total is at least `min_ms` (the noise floor — a 3ms
/// phase doubling is jitter, not a regression).
pub fn render_diff(deltas: &[PhaseDelta], gate_pct: f64, min_ms: f64) -> (String, Vec<PhaseDelta>) {
    let mut out =
        format!("phase diff vs baseline (gate: >{gate_pct:.0}% growth at >={min_ms:.0}ms):\n");
    out.push_str("phase                                    base ms     cur ms    delta%  gate\n");
    out.push_str(&"-".repeat(76));
    out.push('\n');
    let mut failures = Vec::new();
    for d in deltas {
        let fails = d.pct() > gate_pct && d.current_us as f64 / 1e3 >= min_ms;
        out.push_str(&format!(
            "{:<38} {:>9.1}  {:>9.1}  {:>+7.1}%  {}\n",
            d.path,
            d.baseline_us as f64 / 1e3,
            d.current_us as f64 / 1e3,
            d.pct(),
            if fails { "FAIL" } else { "ok" },
        ));
        if fails {
            failures.push(d.clone());
        }
    }
    (out, failures)
}

/// Renders the full single-trace report: phase table, critical path,
/// worker utilization.
pub fn render_report(spans: &[TraceSpan]) -> String {
    let nodes = aggregate(spans);
    let mut out = render_phase_table(&nodes);
    out.push('\n');
    out.push_str(&render_critical_path(&nodes));
    out.push('\n');
    out.push_str(&render_utilization(spans));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(path: &str, thread: u64, start: u64, dur: u64) -> TraceSpan {
        TraceSpan {
            path: path.to_string(),
            thread,
            start_us: start,
            dur_us: dur,
        }
    }

    #[test]
    fn parses_spans_and_skips_logs() {
        let jsonl = concat!(
            r#"{"type":"span","path":"cell/train","name":"train","thread":3,"start_us":120,"dur_us":4500,"attrs":{"domain":"Earnings"}}"#,
            "\n",
            r#"{"type":"log","level":"info","msg":"hi","ts_us":99,"thread":0}"#,
            "\n\n",
            r#"{"type":"span","path":"cell","name":"cell","thread":3,"start_us":100,"dur_us":5000}"#,
            "\n",
        );
        let spans = parse_trace(jsonl).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0], span("cell/train", 3, 120, 4500));
        assert_eq!(spans[1], span("cell", 3, 100, 5000));
    }

    #[test]
    fn truncated_line_is_an_error() {
        let err = parse_trace("{\"type\":\"span\",\"path\":\"a\"").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = parse_trace("{\"type\":\"span\",\"thread\":0,\"start_us\":0,\"dur_us\":1}")
            .unwrap_err();
        assert!(err.contains("missing path"), "{err}");
    }

    #[test]
    fn phase_table_shows_self_and_total() {
        let spans = [
            span("cell", 0, 0, 1000),
            span("cell/train", 0, 0, 600),
            span("cell/eval", 0, 600, 300),
        ];
        let table = render_phase_table(&aggregate(&spans));
        assert!(table.contains("cell"), "{table}");
        assert!(table.contains("  train"), "{table}");
        // cell self = 1000 - 900 = 100us = 0.1ms
        let cell_row = table.lines().find(|l| l.starts_with("cell")).unwrap();
        assert!(
            cell_row.contains("1.0") && cell_row.contains("0.1"),
            "{cell_row}"
        );
    }

    #[test]
    fn critical_path_follows_largest_totals() {
        let spans = [
            span("grid", 0, 0, 10_000),
            span("grid/cell", 0, 0, 6_000),
            span("grid/cell/train", 0, 0, 4_000),
            span("grid/cell/eval", 0, 4_000, 1_500),
            span("grid/setup", 0, 9_000, 500),
            span("other_root", 1, 0, 50),
        ];
        let nodes = aggregate(&spans);
        let path: Vec<&str> = critical_path(&nodes)
            .iter()
            .map(|n| n.path.as_str())
            .collect();
        assert_eq!(path, vec!["grid", "grid/cell", "grid/cell/train"]);
        let text = render_critical_path(&nodes);
        assert!(text.contains("grid/cell/train"), "{text}");
        assert!(render_critical_path(&[]).contains("no spans"));
    }

    #[test]
    fn utilization_unions_nested_spans() {
        // Thread 0 busy [0,100) with a nested child [10,90) — busy time
        // must be 100, not 180.
        let spans = [
            span("a", 0, 0, 100),
            span("a/b", 0, 10, 80),
            span("c", 1, 50, 50),
        ];
        let workers = worker_utilization(&spans);
        assert_eq!(workers.len(), 2);
        assert_eq!(workers[0].thread, 0);
        assert_eq!(workers[0].busy_us, 100);
        assert_eq!(workers[0].spans, 2);
        assert_eq!(workers[1].busy_us, 50);
        // Thread 0 is busy the whole window, thread 1 only the back half.
        let text = render_utilization(&spans);
        assert!(text.contains("thread   0  100.0% busy"), "{text}");
        assert!(text.contains("thread   1   50.0% busy"), "{text}");
    }

    #[test]
    fn diff_gates_on_pct_and_noise_floor() {
        let baseline = aggregate(&[span("train", 0, 0, 100_000), span("tiny", 0, 0, 1_000)]);
        let current = aggregate(&[
            span("train", 0, 0, 150_000), // +50% at 150ms: regression
            span("tiny", 0, 0, 3_000),    // +200% but 3ms: under the floor
            span("fresh", 0, 0, 2_000),   // new phase, under the floor
        ]);
        let deltas = diff_phases(&baseline, &current);
        assert_eq!(deltas.len(), 3);
        let (text, failures) = render_diff(&deltas, 25.0, 10.0);
        assert!(text.contains("FAIL"), "{text}");
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].path, "train");
        assert!((failures[0].pct() - 50.0).abs() < 1e-9);

        // Raising the gate clears it.
        let (_, failures) = render_diff(&deltas, 60.0, 10.0);
        assert!(failures.is_empty());

        // A phase absent from the baseline reports +100%.
        let fresh = deltas.iter().find(|d| d.path == "fresh").unwrap();
        assert!((fresh.pct() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn full_report_renders_all_sections() {
        let spans = [span("grid", 0, 0, 1000), span("grid/cell", 1, 0, 800)];
        let report = render_report(&spans);
        assert!(report.contains("phase"), "{report}");
        assert!(report.contains("critical path"), "{report}");
        assert!(report.contains("worker utilization"), "{report}");
    }
}
