//! `augment_json` — a file-in / file-out CLI around the FieldSwap engine,
//! for users who bring their own OCR output rather than the built-in
//! generators.
//!
//! ```sh
//! # Produce a demo corpus + config to look at:
//! cargo run --release -p fieldswap-bench --bin augment_json -- --demo /tmp/fs
//! # Augment it:
//! cargo run --release -p fieldswap-bench --bin augment_json -- \
//!     --corpus /tmp/fs/corpus.json --config /tmp/fs/config.json \
//!     --out /tmp/fs/augmented.json
//! ```
//!
//! The corpus JSON is the serde form of [`fieldswap_docmodel::Corpus`]
//! (schema + documents with tokens/bboxes/lines/annotations); the config
//! JSON is the serde form of [`fieldswap_core::FieldSwapConfig`].

use fieldswap_bench::{fail, finish_obs};
use fieldswap_core::{augment_corpus, FieldSwapConfig, PairStrategy};
use fieldswap_datagen::{generate, Domain};
use fieldswap_docmodel::Corpus;
use std::path::Path;

fn usage() -> ! {
    eprintln!("usage: augment_json --corpus CORPUS.json --config CONFIG.json --out OUT.json");
    eprintln!("       augment_json --corpus CORPUS.json --strategy t2t|f2f|a2a --out OUT.json");
    eprintln!("         (--strategy derives phrases from field names when no --config is given)");
    eprintln!("       augment_json --demo DIR        write a demo corpus + config into DIR");
    eprintln!("       common flags: [--trace PATH] [--metrics PATH] [--verbose|-v] [--quiet|-q]");
    fail("invalid arguments")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut corpus_path = None;
    let mut config_path = None;
    let mut out_path = None;
    let mut strategy = None;
    let mut demo_dir = None;
    let mut trace = None;
    let mut metrics = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--corpus" => {
                i += 1;
                corpus_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--config" => {
                i += 1;
                config_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--out" => {
                i += 1;
                out_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--strategy" => {
                i += 1;
                strategy = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--demo" => {
                i += 1;
                demo_dir = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--trace" => {
                i += 1;
                trace = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
                fieldswap_obs::enable_tracing();
            }
            "--metrics" => {
                i += 1;
                metrics = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
                fieldswap_obs::enable_metrics();
            }
            "--verbose" | "-v" => fieldswap_obs::set_verbosity(fieldswap_obs::Verbosity::Verbose),
            "--quiet" | "-q" => fieldswap_obs::set_verbosity(fieldswap_obs::Verbosity::Quiet),
            _ => usage(),
        }
        i += 1;
    }

    if let Some(dir) = demo_dir {
        write_demo(Path::new(&dir));
        finish_obs(trace.as_deref(), metrics.as_deref());
        return;
    }
    let (Some(corpus_path), Some(out_path)) = (corpus_path, out_path) else {
        usage()
    };

    let corpus_json = std::fs::read_to_string(&corpus_path)
        .unwrap_or_else(|e| fail(&format!("cannot read {corpus_path}: {e}")));
    let mut corpus: Corpus = serde_json::from_str(&corpus_json)
        .unwrap_or_else(|e| fail(&format!("{corpus_path} is not a corpus JSON: {e}")));
    corpus.schema.rebuild_index();
    for (k, d) in corpus.documents.iter().enumerate() {
        if let Err(e) = d.validate() {
            fail(&format!("document {k} ({}) is invalid: {e}", d.id));
        }
    }

    let config = match (config_path, strategy) {
        (Some(p), _) => {
            let s = std::fs::read_to_string(&p)
                .unwrap_or_else(|e| fail(&format!("cannot read {p}: {e}")));
            FieldSwapConfig::from_json(&s)
                .unwrap_or_else(|e| fail(&format!("{p} is not a FieldSwap config: {e}")))
        }
        (None, Some(strat)) => {
            // Zero-annotation path: phrases from field names.
            let mut config = fieldswap_keyphrase::config_from_schema(&corpus.schema);
            let strategy = match strat.as_str() {
                "f2f" => PairStrategy::FieldToField,
                "t2t" => PairStrategy::TypeToType,
                "a2a" => PairStrategy::AllToAll,
                _ => usage(),
            };
            config.set_pairs(strategy.build(&corpus.schema, &config));
            config
        }
        (None, None) => usage(),
    };

    let (synthetics, stats) = augment_corpus(&corpus, &config);
    fieldswap_obs::info!(
        "{} documents in, {} synthetics out ({} discarded as unchanged, {} productive pairs)",
        corpus.len(),
        stats.generated,
        stats.discarded_unchanged,
        stats.productive_pairs
    );
    let out = Corpus::new(corpus.schema.clone(), synthetics);
    let json = serde_json::to_string(&out).expect("corpus serializes");
    std::fs::write(&out_path, json)
        .unwrap_or_else(|e| fail(&format!("cannot write {out_path}: {e}")));
    fieldswap_obs::info!("wrote {out_path}");
    finish_obs(trace.as_deref(), metrics.as_deref());
}

fn write_demo(dir: &Path) {
    std::fs::create_dir_all(dir).expect("create demo dir");
    let corpus = generate(Domain::Earnings, 1, 5);
    let mut config = FieldSwapConfig::new(corpus.schema.len());
    for (name, phrases) in Domain::Earnings.generator().phrase_bank() {
        let id = corpus.schema.field_id(&name).unwrap();
        config.set_phrases(id, phrases);
    }
    config.set_pairs(PairStrategy::TypeToType.build(&corpus.schema, &config));
    std::fs::write(
        dir.join("corpus.json"),
        serde_json::to_string_pretty(&corpus).unwrap(),
    )
    .expect("write corpus");
    std::fs::write(dir.join("config.json"), config.to_json()).expect("write config");
    fieldswap_obs::info!(
        "wrote {}/corpus.json (5 earnings docs) and {}/config.json",
        dir.display(),
        dir.display()
    );
}
