//! Regenerates **Table I**: dataset statistics — number of fields,
//! training-pool size, and test-set size per document type. The synthetic
//! corpora are constructed to match the paper's numbers exactly, so this
//! binary doubles as a verification that they do.

use fieldswap_bench::{BinArgs, TablePrinter};
use fieldswap_datagen::generate_paper_splits;

fn main() {
    let args = BinArgs::parse();
    println!("Table I — Dataset Statistics (paper vs generated)\n");
    let t = TablePrinter::new(&[
        ("Document Type", 22),
        ("# Fields", 9),
        ("Train Pool", 11),
        ("Test Docs", 10),
        ("annotations", 12),
    ]);
    let mut rows = Vec::new();
    for domain in args.domains() {
        let (pool, test) = generate_paper_splits(domain, args.seed);
        t.row(&[
            domain.name().to_string(),
            pool.schema.len().to_string(),
            pool.len().to_string(),
            test.len().to_string(),
            pool.total_annotations().to_string(),
        ]);
        rows.push((
            domain.name().to_string(),
            pool.schema.len(),
            pool.len(),
            test.len(),
        ));
    }
    println!("\npaper (Table I): FARA 6/200/300, FCC 13/200/300, Brokerage 18/294/186,");
    println!("Earnings 23/2000/1847, Loan Payments 35/2000/815.");
    args.maybe_write_json(&rows);
    args.finish();
}
