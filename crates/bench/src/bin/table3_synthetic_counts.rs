//! Regenerates **Table III**: the average number of FieldSwap synthetic
//! documents per document type, training-set size, and strategy
//! (field-to-field / type-to-type / human expert).
//!
//! Shape expectations: type-to-type generates roughly 3–10x more
//! synthetics than field-to-field; counts grow with training-set size;
//! human-expert counts sit between the two (Table III, Section IV-C1).

use fieldswap_bench::{paper, BinArgs, TablePrinter};
use fieldswap_datagen::Domain;
use fieldswap_eval::Arm;

fn main() {
    let args = BinArgs::parse();
    let sizes = [10usize, 50, 100];
    let harness = args.build_harness();

    println!(
        "Table III — Avg. number of synthetic documents ({} protocol, {} samples)\n",
        if args.full { "full" } else { "quick" },
        harness.options().n_samples
    );
    let t = TablePrinter::new(&[
        ("Domain", 22),
        ("Train Size", 11),
        ("f2f", 9),
        ("t2t", 9),
        ("expert", 9),
        ("t2t/f2f", 8),
    ]);
    let mut rows = Vec::new();
    for domain in args.domains() {
        for &size in &sizes {
            let f2f = harness.count_synthetics(domain, size, Arm::AutoFieldToField);
            let t2t = harness.count_synthetics(domain, size, Arm::AutoTypeToType);
            let expert = if matches!(domain, Domain::Earnings | Domain::LoanPayments) {
                Some(harness.count_synthetics(domain, size, Arm::HumanExpert))
            } else {
                None
            };
            let ratio = if f2f > 0.0 { t2t / f2f } else { f64::NAN };
            t.row(&[
                domain.name().to_string(),
                size.to_string(),
                format!("{f2f:.0}"),
                format!("{t2t:.0}"),
                expert.map_or("-".into(), |e| format!("{e:.0}")),
                format!("{ratio:.1}x"),
            ]);
            rows.push((domain.name().to_string(), size, f2f, t2t, expert));
        }
    }

    println!("\npaper (Table III):");
    let t = TablePrinter::new(&[
        ("Domain", 22),
        ("Train Size", 11),
        ("f2f", 9),
        ("t2t", 9),
        ("expert", 9),
    ]);
    for (d, size, f2f, t2t, ex) in paper::TABLE3 {
        t.row(&[
            d.to_string(),
            size.to_string(),
            f2f.to_string(),
            t2t.to_string(),
            ex.map_or("-".into(), |e| e.to_string()),
        ]);
    }
    args.maybe_write_json(&rows);
    args.finish();
}
