//! Regenerates **Fig. 6**: box plots of per-field F1 differences
//! (FieldSwap type-to-type minus baseline) grouped by field base type, on
//! the Loan Payments (6a) and Earnings (6b) domains, pooled over all
//! training set sizes.
//!
//! Shape expectations (Section IV-C3): on Loan Payments the gains
//! concentrate in *date* and *money* fields while *string* and *address*
//! fields are neutral-to-negative under the automatic setting; on
//! Earnings, *address* and *string* fields show positive gains. The
//! *number* type is omitted (only two number fields exist across all five
//! domains — the paper calls the results unrepresentative).

use fieldswap_bench::{BinArgs, TablePrinter};
use fieldswap_datagen::Domain;
use fieldswap_docmodel::BaseType;
use fieldswap_eval::metrics::mean;
use fieldswap_eval::{Arm, BoxStats};
use std::collections::HashMap;

fn main() {
    let args = BinArgs::parse();
    let sizes = [10usize, 50, 100];
    let harness = args.build_harness();
    let domains = match args.domain {
        Some(d) => vec![d],
        None => vec![Domain::LoanPayments, Domain::Earnings],
    };

    println!(
        "Fig. 6 — per-field F1 delta (FieldSwap t2t − baseline) by base type ({} protocol)\n",
        if args.full { "full" } else { "quick" }
    );

    // One grid for the whole figure: every (domain, size) contributes a
    // baseline/type-to-type pair, all sharing the worker pool.
    let mut points: Vec<(Domain, usize, Arm)> = Vec::new();
    for &domain in &domains {
        for &size in &sizes {
            points.push((domain, size, Arm::Baseline));
            points.push((domain, size, Arm::AutoTypeToType));
        }
    }
    let summaries = harness.run_grid(&points);
    let mut pairs = summaries.chunks(2);

    let mut json_out: Vec<(String, String, BoxStats)> = Vec::new();
    for domain in domains {
        let schema = harness.domain_data(domain).0.schema.clone();
        // Pool per-field deltas over all sizes.
        let mut deltas_by_type: HashMap<BaseType, Vec<f64>> = HashMap::new();
        let mut per_field_rows: Vec<(String, BaseType, f64)> = Vec::new();
        for &size in &sizes {
            let [base, swap] = pairs.next().expect("one pair per (domain, size)") else {
                unreachable!("grid built in pairs");
            };
            for (id, def) in schema.iter() {
                let f = id as usize;
                let b: Vec<f64> = base.runs.iter().filter_map(|r| r.per_field_f1[f]).collect();
                let s: Vec<f64> = swap.runs.iter().filter_map(|r| r.per_field_f1[f]).collect();
                let (Some(bm), Some(sm)) = (mean(&b), mean(&s)) else {
                    continue;
                };
                deltas_by_type
                    .entry(def.base_type)
                    .or_default()
                    .push(sm - bm);
                per_field_rows.push((format!("{}@{size}", def.name), def.base_type, sm - bm));
            }
        }

        println!("== {} ==", domain.name());
        let t = TablePrinter::new(&[
            ("type", 9),
            ("n", 4),
            ("median", 8),
            ("q1", 8),
            ("q3", 8),
            ("whiskers", 18),
            ("outliers", 12),
        ]);
        for ty in BaseType::ALL {
            if ty == BaseType::Number {
                continue; // unrepresentative (paper, Section IV-C3)
            }
            let Some(d) = deltas_by_type.get(&ty) else {
                continue;
            };
            let Some(b) = BoxStats::compute(d) else {
                continue;
            };
            t.row(&[
                ty.to_string(),
                b.n.to_string(),
                format!("{:+.2}", b.median),
                format!("{:+.2}", b.q1),
                format!("{:+.2}", b.q3),
                format!("[{:+.1}, {:+.1}]", b.whisker_lo, b.whisker_hi),
                format!("{}", b.outliers.len()),
            ]);
            json_out.push((domain.name().to_string(), ty.to_string(), b));
        }
        // Largest negative fields, for the discussion section.
        per_field_rows.sort_by(|a, b| a.2.total_cmp(&b.2));
        println!("\nmost negative fields:");
        for (name, ty, d) in per_field_rows.iter().take(4) {
            println!("  {name} ({ty}): {d:+.2}");
        }
        println!("most positive fields:");
        for (name, ty, d) in per_field_rows.iter().rev().take(4) {
            println!("  {name} ({ty}): {d:+.2}");
        }
        println!();
    }
    println!("paper shape: Loan Payments gains in date/money, string/address neutral-to-negative;");
    println!("Earnings address/string positive (Fig. 6a/6b).");
    args.maybe_write_json(&json_out);
    args.finish();
}
