//! **Robustness study**: train clean, evaluate under form attacks, print
//! the per-attack F1-degradation table.
//!
//! The protocol follows Xue et al.'s form-attack evaluation (PAPERS.md):
//! every arm trains on clean data exactly as in the Fig. 4 experiments,
//! then each trained model is evaluated on the clean hold-out test set
//! and on one attacked variant per selected attack. The reported number
//! per attack is the **degradation** — clean mean macro-F1 minus attacked
//! mean macro-F1 — so smaller is more robust. FieldSwap's key-phrase
//! swapping is expected to shrink the degradation under key-phrase
//! attacks (`keyphrase-abbrev`, `token-drop`) relative to the baseline,
//! since the augmented models lean less on memorized key-phrase/layout
//! cues.
//!
//! Flags: the standard set (`--full`, `--domain`, `--seed`, `--json`,
//! `--jobs`, `--trace`, `--metrics`, `--checkpoint-dir`, `--resume`)
//! plus `--attacks` (comma list, default all six) and
//! `--attack-strength` (default 0.5). Output is bit-identical for every
//! `--jobs` setting and across checkpoint resumes.

use fieldswap_bench::{BinArgs, TablePrinter};
use fieldswap_datagen::Domain;
use fieldswap_eval::{Arm, RobustnessPoint};

fn main() {
    let args = BinArgs::parse();
    let suite = args.attack_suite();
    let sizes = [10usize, 50, 100];
    let harness = args.build_harness();

    println!(
        "Robustness study — per-attack macro-F1 degradation ({} protocol, {} samples x {} trials, {} jobs, strength {})\n",
        if args.full { "full" } else { "quick" },
        harness.options().n_samples,
        harness.options().n_trials,
        fieldswap_eval::effective_jobs(harness.options().jobs),
        suite.first().map(|s| s.strength).unwrap_or(0.0),
    );

    // One grid for the whole study: every cell of every domain, size, and
    // arm shares the worker pool, then the tables print in grid order.
    let mut points: Vec<(Domain, usize, Arm)> = Vec::new();
    for domain in args.domains() {
        let mut arms = vec![Arm::Baseline, Arm::AutoFieldToField, Arm::AutoTypeToType];
        if matches!(domain, Domain::Earnings | Domain::LoanPayments) {
            arms.push(Arm::HumanExpert);
        }
        for &size in &sizes {
            for &arm in &arms {
                points.push((domain, size, arm));
            }
        }
    }
    let all: Vec<RobustnessPoint> = harness.run_robustness_grid(&points, &suite);

    let mut results = all.iter().peekable();
    let mut failed_total = 0usize;
    for domain in args.domains() {
        println!("== {} ==", domain.name());
        let mut headers = vec![("train size", 10), ("arm", 28), ("clean F1", 9)];
        for spec in &suite {
            headers.push((spec.kind.name(), 16));
        }
        let t = TablePrinter::new(&headers);
        while let Some(p) = results.peek() {
            if p.domain != domain.name() {
                break;
            }
            let mut cells = vec![
                p.size.to_string(),
                p.arm.clone(),
                format!("{:.2}", p.clean_macro_f1),
            ];
            for a in &p.attacks {
                cells.push(format!("{:.2} ({:+.2})", a.macro_f1, -a.degradation));
            }
            t.row(&cells);
            failed_total += p.failed_cells;
            results.next();
        }
        println!();
    }

    println!("cells printed as: attacked macro-F1 (delta vs clean). Smaller drop = more robust.");
    println!("expected shape (Xue et al. + FieldSwap): all arms degrade under attack; FieldSwap arms degrade less under key-phrase attacks than the baseline.");
    if failed_total > 0 {
        println!("WARNING: {failed_total} cell(s) failed and were dropped from the means.");
    }
    args.maybe_write_json(&all);
    args.finish();
}
