//! `trace_report` — analyze a `--trace` JSONL trace: per-phase
//! total/self/call tables, the critical path, per-worker utilization,
//! and (with `--baseline`) a phase-level regression diff that exits
//! nonzero when a phase regresses past `--gate-pct`.
//!
//! ```text
//! trace_report TRACE.jsonl
//! trace_report TRACE.jsonl --baseline OLD.jsonl --gate-pct 30 --min-ms 50
//! ```

use fieldswap_bench::trace_report::{
    aggregate, diff_phases, parse_trace, render_diff, render_report,
};
use fieldswap_bench::{fail, trace_report::TraceSpan};

struct Args {
    trace: String,
    baseline: Option<String>,
    gate_pct: f64,
    min_ms: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: trace_report TRACE.jsonl [--baseline OLD.jsonl] [--gate-pct PCT] [--min-ms MS]"
    );
    std::process::exit(1)
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut trace = None;
    let mut baseline = None;
    let mut gate_pct = 30.0;
    let mut min_ms = 50.0;
    let mut i = 0;
    fn value<'a>(argv: &'a [String], i: &mut usize, flag: &str) -> &'a str {
        *i += 1;
        match argv.get(*i) {
            Some(v) if !v.starts_with("--") => v,
            _ => {
                eprintln!("error: {flag} expects a value");
                usage()
            }
        }
    }
    while i < argv.len() {
        match argv[i].as_str() {
            "--baseline" => baseline = Some(value(&argv, &mut i, "--baseline").to_string()),
            "--gate-pct" => {
                gate_pct = value(&argv, &mut i, "--gate-pct")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("error: --gate-pct: bad value");
                        usage()
                    })
            }
            "--min-ms" => {
                min_ms = value(&argv, &mut i, "--min-ms")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("error: --min-ms: bad value");
                        usage()
                    })
            }
            other if other.starts_with("--") => {
                eprintln!("error: unknown flag {other}");
                usage()
            }
            other if trace.is_none() => trace = Some(other.to_string()),
            other => {
                eprintln!("error: unexpected argument {other}");
                usage()
            }
        }
        i += 1;
    }
    let Some(trace) = trace else {
        eprintln!("error: missing TRACE.jsonl argument");
        usage()
    };
    Args {
        trace,
        baseline,
        gate_pct,
        min_ms,
    }
}

fn load(path: &str) -> Vec<TraceSpan> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
    parse_trace(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")))
}

fn main() {
    let args = parse_args();
    let spans = load(&args.trace);
    println!("trace report: {} ({} spans)", args.trace, spans.len());
    println!();
    print!("{}", render_report(&spans));

    if let Some(baseline_path) = &args.baseline {
        let baseline = load(baseline_path);
        let deltas = diff_phases(&aggregate(&baseline), &aggregate(&spans));
        let (table, failures) = render_diff(&deltas, args.gate_pct, args.min_ms);
        println!();
        print!("{table}");
        if !failures.is_empty() {
            eprintln!(
                "error: {} phase(s) regressed more than {:.0}% vs {baseline_path}",
                failures.len(),
                args.gate_pct
            );
            std::process::exit(1);
        }
        println!(
            "gate ok: no phase grew more than {:.0}% (noise floor {:.0}ms)",
            args.gate_pct, args.min_ms
        );
    }
}
