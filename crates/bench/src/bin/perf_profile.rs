//! Times the training hot paths on a fixed seed and writes
//! `BENCH_train.json` — the perf-trajectory record for this repo.
//!
//! Stages:
//!
//! * `extract_train` — averaged-perceptron training (50 Earnings docs +
//!   expert-config synthetics, 5 epochs), the `train_mixed` path, min of
//!   [`TRAIN_ITERS`] timed passes after a warm-up;
//! * `extract_predict` — Viterbi + schema constraints over the hold-out
//!   test set via the training-path decoder (`predict_with`), so the
//!   number stays comparable with pre-frozen-path baselines;
//! * `infer_frozen` — the same hold-out set through
//!   `FrozenModel::predict` (the `extract::infer` fast path), min of
//!   [`INFER_ITERS`] timed passes after a warm-up;
//! * `infer_quantized` — as above through the int8-quantized table;
//! * `nn_train` — importance-model pre-training (forward + backward per
//!   candidate, one Adam step per batch), the `Tape` path, min of
//!   [`TRAIN_ITERS`] timed passes after a warm-up;
//! * `nn_forward` — forward-only neighbor scoring (phrase inference);
//! * `backward` — an isolated microbench of `Tape::backward` on an
//!   attention-shaped graph;
//! * `harness_build` — `Harness::new` (corpus generation + importance
//!   pre-training), min of [`TRAIN_ITERS`] timed passes after a warm-up;
//! * `fig4_point` — end to end: the min `Harness::new` time + one
//!   `run_point(Earnings, 50, AutoTypeToType)` under the quick protocol,
//!   compared against the recorded pre-optimization baseline. With
//!   `--quantized` the point evaluates through the int8 table.
//!
//! All stages run the grid serially (`jobs = 1`) and fully seeded, so
//! wall times are comparable across commits on the same machine and the
//! computed summaries are byte-identical run to run. `--train-jobs N`
//! threads the training loops *inside* the timed stages (corpus
//! rendering, perceptron decode windows, gradient batches); training
//! output is bitwise-identical for every setting, so the reported
//! `macro_f1` never moves — only the wall times do. Multi-iteration
//! stages (training and inference alike) report the *minimum* wall time
//! across timed passes after an untimed warm-up — the best proxy for
//! the true cost on a noisy machine — plus the coefficient of variation
//! across iterations so readers can judge how noisy the run was.

use fieldswap_core::augment_corpus;
use fieldswap_datagen::{generate, generate_paper_splits, Domain};
use fieldswap_eval::{evaluate, expert_config, Arm, Harness, HarnessOptions};
use fieldswap_extract::{Extractor, InferScratch, Lexicon, PredictScratch, TrainConfig};
use fieldswap_keyphrase::{ImportanceModel, ModelConfig};
use fieldswap_nn::{Init, ParamStore, Tape, Tensor};
use serde::Serialize;
use std::time::Instant;

/// Wall-clock milliseconds of the `fig4_point` stage measured at the
/// commit *before* the single-cell optimizations (same machine class,
/// serial, quick protocol; conservative low end of three runs). The JSON
/// reports current wall time against this reference so the speedup trend
/// is visible per commit.
const FIG4_POINT_BASELINE_MS: f64 = 4940.0;

/// Timed passes for the `infer_frozen`/`infer_quantized` stages. The
/// frozen decode of the 120-doc fixture takes ~10 ms, so 30 passes keep
/// the stage under a second while giving the min statistic enough
/// samples to land on the noise floor.
const INFER_ITERS: usize = 30;

/// Timed passes for the training stages (`extract_train`, `nn_train`,
/// `harness_build`). Training passes cost hundreds of milliseconds
/// each, so a smaller K than [`INFER_ITERS`] keeps the binary fast
/// while still letting the min statistic shed scheduler noise — the
/// single-shot numbers these stages used to report could swing by tens
/// of percent on a loaded machine, which made them ungateable.
const TRAIN_ITERS: usize = 3;

#[derive(Serialize)]
struct StageReport {
    /// Minimum wall time across iterations (the whole time for
    /// single-pass stages).
    wall_ms: f64,
    /// Throughput at the minimum wall time.
    docs_per_sec: f64,
    /// Number of timed iterations behind the statistics.
    iters: u32,
    /// Coefficient of variation (std/mean, percent) across iterations;
    /// 0 for single-pass stages. High values mean a noisy run.
    cv_pct: f64,
    /// Worker threads requested for this stage (`--train-jobs` for the
    /// training stages, 1 for the rest; 0 = all cores).
    jobs: usize,
}

/// Builds a [`StageReport`] from per-iteration wall times. Uses the
/// minimum as the reported wall time and guards the throughput division
/// against a degenerate ~0 ms measurement.
fn stage_report(samples_ms: &[f64], docs: f64, jobs: usize) -> StageReport {
    let n = samples_ms.len().max(1) as f64;
    let min = samples_ms.iter().copied().fold(f64::INFINITY, f64::min);
    let min = if min.is_finite() { min } else { 0.0 };
    let mean = samples_ms.iter().sum::<f64>() / n;
    let var = samples_ms
        .iter()
        .map(|s| (s - mean) * (s - mean))
        .sum::<f64>()
        / n;
    let cv_pct = if mean > 0.0 && samples_ms.len() > 1 {
        100.0 * var.sqrt() / mean
    } else {
        0.0
    };
    let docs_per_sec = if min > 1e-9 { docs / (min / 1e3) } else { 0.0 };
    StageReport {
        wall_ms: min,
        docs_per_sec,
        iters: samples_ms.len() as u32,
        cv_pct,
        jobs,
    }
}

/// Runs `pass` once untimed (warm-up: page faults, allocator growth,
/// scratch sizing) and then [`TRAIN_ITERS`] timed passes, returning the
/// per-pass wall times and the last pass's product. Every pass retrains
/// from scratch on the same seed, so the returned model is identical to
/// what a single pass would have produced.
fn timed_passes<T>(mut pass: impl FnMut() -> T) -> (Vec<f64>, T) {
    let mut product = pass();
    let samples: Vec<f64> = (0..TRAIN_ITERS)
        .map(|_| {
            let t0 = Instant::now();
            product = pass();
            ms(t0)
        })
        .collect();
    (samples, product)
}

#[derive(Serialize)]
struct Fig4PointReport {
    wall_ms: f64,
    baseline_wall_ms: f64,
    speedup_vs_baseline: f64,
    macro_f1: f64,
    /// Whether the point evaluated through the int8-quantized table
    /// (`--quantized`).
    quantized: bool,
    /// Worker threads used inside training (`--train-jobs`). The
    /// `macro_f1` above is bitwise-invariant to this knob.
    train_jobs: usize,
}

#[derive(Serialize)]
struct PerfReport {
    /// Version of this JSON layout. 2 added observability; 3 added the
    /// `infer_frozen`/`infer_quantized` stages and the per-stage
    /// `iters`/`cv_pct` fields; 4 added the per-stage `jobs` field, the
    /// fig4 `train_jobs` field, and promoted the training stages from
    /// single-shot timings to warm-up + min-of-K. Every bump is purely
    /// additive (new fields only, all prior fields unchanged), so older
    /// readers keep working.
    schema_version: u32,
    seed: u64,
    extract_train: StageReport,
    extract_predict: StageReport,
    infer_frozen: StageReport,
    infer_quantized: StageReport,
    nn_train: StageReport,
    nn_forward: StageReport,
    backward: StageReport,
    harness_build: StageReport,
    fig4_point: Fig4PointReport,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Records a stage wall time into the shared obs histogram family.
fn record_stage(stage: &str, wall_ms: f64) {
    fieldswap_obs::observe(
        &format!("fieldswap_perf_stage_ms{{stage=\"{stage}\"}}"),
        wall_ms,
    );
}

fn usage(msg: &str) -> ! {
    eprintln!("usage: perf_profile [--out PATH] [--seed N] [--train-jobs N] [--quantized] [--trace PATH] [--metrics PATH] [--obs-listen ADDR] [--verbose|-v] [--quiet|-q]");
    fieldswap_bench::fail(msg)
}

fn main() {
    let mut out_path = String::from("BENCH_train.json");
    let mut seed = 0x5EEDu64;
    let mut train_jobs = 1usize;
    let mut quantized_point = false;
    let mut trace = None;
    let mut metrics = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args
                    .get(i)
                    .unwrap_or_else(|| usage("missing --out path"))
                    .clone();
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .unwrap_or_else(|| usage("missing --seed value"))
                    .parse()
                    .unwrap_or_else(|_| usage("bad seed"));
            }
            "--train-jobs" => {
                i += 1;
                train_jobs = args
                    .get(i)
                    .unwrap_or_else(|| usage("missing --train-jobs value"))
                    .parse()
                    .unwrap_or_else(|_| usage("bad --train-jobs value"));
            }
            "--quantized" => quantized_point = true,
            "--trace" => {
                i += 1;
                trace = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("missing --trace path"))
                        .clone(),
                );
                fieldswap_obs::enable_tracing();
            }
            "--metrics" => {
                i += 1;
                metrics = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("missing --metrics path"))
                        .clone(),
                );
            }
            "--obs-listen" => {
                i += 1;
                let addr = args
                    .get(i)
                    .unwrap_or_else(|| usage("missing --obs-listen address"));
                fieldswap_obs::enable_tracing();
                fieldswap_obs::enable_metrics();
                let server = fieldswap_obs::ObsServer::start(fieldswap_obs::global(), addr)
                    .unwrap_or_else(|e| {
                        usage(&format!("--obs-listen {addr}: {e}"));
                    });
                fieldswap_obs::info!("obs server listening on http://{}", server.addr());
                std::mem::forget(server);
            }
            "--verbose" | "-v" => fieldswap_obs::set_verbosity(fieldswap_obs::Verbosity::Verbose),
            "--quiet" | "-q" => fieldswap_obs::set_verbosity(fieldswap_obs::Verbosity::Quiet),
            other => usage(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    // Stage timings always flow into the metrics registry — they *are*
    // the payload of this binary — whether or not `--metrics` exports
    // them to a file.
    fieldswap_obs::enable_metrics();

    // Shared fixtures: an Earnings sample + synthetics + test split, and
    // the out-of-domain lexicon, mirroring one experiment cell.
    let (pool, mut test) = generate_paper_splits(Domain::Earnings, seed);
    test.documents.truncate(120);
    let sample =
        fieldswap_docmodel::Corpus::new(pool.schema.clone(), pool.documents[..50].to_vec());
    let lex_corpus = generate(Domain::Invoices, seed ^ 0x1E81C0, 200);
    let lexicon = Lexicon::pretrain(&lex_corpus.documents);
    let config = expert_config(Domain::Earnings, &sample.schema).expect("expert config");
    let (synthetics, _) = augment_corpus(&sample, &config);
    let train_cfg = TrainConfig {
        epochs: 5,
        synth_ratio: 2.0,
        seed,
        train_jobs,
        ..TrainConfig::default()
    };

    // Stage: extractor training (the train_mixed hot path), warm-up +
    // min-of-K. Each pass retrains from scratch on the same seed, so
    // every pass — and every `--train-jobs` setting — produces the same
    // model bit for bit.
    let (samples, extractor) = timed_passes(|| {
        Extractor::train_on(
            &sample.schema,
            lexicon.clone(),
            &sample,
            &synthetics,
            &train_cfg,
        )
    });
    record_stage(
        "extract_train",
        samples.iter().copied().fold(f64::INFINITY, f64::min),
    );
    // Documents visited: originals once per epoch plus the per-epoch
    // synthetic budget.
    let visited = train_cfg.epochs as f64
        * (sample.len() as f64 + (train_cfg.synth_ratio as f64 * sample.len() as f64).round());
    let extract_train = stage_report(&samples, visited, train_jobs);

    // Stage: prediction over the hold-out set through the training-path
    // decoder. `evaluate` now routes through the frozen fast path, so
    // this stage times `predict_with` directly to keep its meaning (and
    // its committed baseline) stable across commits.
    let mut pscratch = PredictScratch::default();
    let t0 = Instant::now();
    for doc in &test.documents {
        std::hint::black_box(extractor.predict_with(doc, &mut pscratch));
    }
    let extract_predict_ms = ms(t0);
    record_stage("extract_predict", extract_predict_ms);
    let extract_predict = stage_report(&[extract_predict_ms], test.len() as f64, 1);
    // Scores come from the frozen path — the production eval route.
    let sanity_macro = evaluate(&extractor, &test).macro_f1();

    // Stages: the frozen fast path, exact f32 then int8-quantized.
    // Freeze/quantize happen outside the timed region (one-time model
    // preparation, not per-batch work); one warm-up pass faults pages
    // and sizes the scratch buffers before timing starts.
    let frozen = extractor.freeze();
    let quantized = frozen.quantize();
    let run_infer = |model: &fieldswap_extract::FrozenModel| -> Vec<f64> {
        let mut scratch = InferScratch::default();
        for doc in &test.documents {
            std::hint::black_box(model.predict(doc, &mut scratch));
        }
        (0..INFER_ITERS)
            .map(|_| {
                let t0 = Instant::now();
                for doc in &test.documents {
                    std::hint::black_box(model.predict(doc, &mut scratch));
                }
                ms(t0)
            })
            .collect()
    };
    let samples = run_infer(&frozen);
    let infer_frozen = stage_report(&samples, test.len() as f64, 1);
    record_stage("infer_frozen", infer_frozen.wall_ms);
    let samples = run_infer(&quantized);
    let infer_quantized = stage_report(&samples, test.len() as f64, 1);
    record_stage("infer_quantized", infer_quantized.wall_ms);

    // Stage: importance-model pre-training (the Tape forward + backward +
    // Adam path).
    let pretrain = generate(Domain::Invoices, seed ^ 0xABCD, 80);
    let model_cfg = ModelConfig {
        neighbors: 24,
        epochs: 2,
        train_jobs,
        ..ModelConfig::default()
    };
    let (samples, importance) = timed_passes(|| {
        let mut m = ImportanceModel::new(model_cfg, pretrain.schema.len(), seed);
        m.train(&pretrain, seed ^ 0xF00D);
        m
    });
    record_stage(
        "nn_train",
        samples.iter().copied().fold(f64::INFINITY, f64::min),
    );
    let nn_train = stage_report(
        &samples,
        (model_cfg.epochs * pretrain.len()) as f64,
        train_jobs,
    );

    // Stage: forward-only neighbor scoring (the phrase-inference path),
    // one tape reused across the whole sweep.
    let t0 = Instant::now();
    let mut scored_docs = 0usize;
    let mut checksum = 0.0f32;
    let mut tape = Tape::new();
    for doc in &pretrain.documents {
        for a in &doc.annotations {
            for (_, s) in importance.neighbor_importance_on(&mut tape, doc, a.start, a.end) {
                checksum += s;
            }
        }
        scored_docs += 1;
    }
    let nn_forward_ms = ms(t0);
    record_stage("nn_forward", nn_forward_ms);
    let nn_forward = stage_report(&[nn_forward_ms], scored_docs as f64, 1);

    // Stage: isolated Tape::backward on an attention-shaped graph.
    let mut store = ParamStore::new(seed);
    let d = 24usize;
    let wq = store.tensor("wq", d, d, Init::Xavier);
    let wk = store.tensor("wk", d, d, Init::Xavier);
    let wv = store.tensor("wv", d, d, Init::Xavier);
    let head = store.tensor("head", d, 1, Init::Xavier);
    let rows: Vec<Vec<f32>> = (0..24)
        .map(|r| (0..d).map(|c| ((r * d + c) as f32 * 0.01).sin()).collect())
        .collect();
    let h_input = Tensor::from_rows(rows);
    let iters = 400usize;
    // One tape, reset per iteration: the pool recycles every intermediate
    // buffer, so the steady-state loop is allocation-free.
    let mut tape = Tape::new();
    let t0 = Instant::now();
    for _ in 0..iters {
        tape.reset();
        let h = tape.constant(h_input.clone());
        let q = {
            let w = tape.param(&store, wq);
            tape.matmul(h, w)
        };
        let k = {
            let w = tape.param(&store, wk);
            tape.matmul(h, w)
        };
        let v = {
            let w = tape.param(&store, wv);
            tape.matmul(h, w)
        };
        let kt = tape.transpose(k);
        let scores = tape.matmul(q, kt);
        let scores = tape.scale(scores, 1.0 / (d as f32).sqrt());
        let att = tape.softmax(scores);
        let ctx = tape.matmul(att, v);
        let pooled = tape.max_pool(ctx);
        let hw = tape.param(&store, head);
        let logit = tape.matmul(pooled, hw);
        let loss = tape.bce_with_logits(logit, &[1.0]);
        tape.backward(loss, &mut store);
        store.zero_grads();
    }
    let backward_ms = ms(t0);
    record_stage("backward", backward_ms);
    let backward = stage_report(&[backward_ms], iters as f64, 1);

    // Stage: end-to-end fig4 single point (quick protocol, grid serial,
    // training threaded by `--train-jobs`). Harness construction —
    // corpus generation plus importance-model pre-training — is timed
    // warm-up + min-of-K like the other training stages; every pass
    // builds the same harness bit for bit.
    let mut opts = HarnessOptions::quick();
    opts.seed = seed;
    opts.jobs = 1;
    opts.train_jobs = train_jobs;
    opts.quantized = quantized_point;
    let (samples, harness) = timed_passes(|| Harness::new(opts));
    let harness_build_ms = samples.iter().copied().fold(f64::INFINITY, f64::min);
    record_stage("harness_build", harness_build_ms);
    let harness_build = stage_report(&samples, opts.pretrain_docs as f64, train_jobs);
    let t0 = Instant::now();
    let point = harness.run_point(Domain::Earnings, 50, Arm::AutoTypeToType);
    let fig4_ms = harness_build_ms + ms(t0);
    record_stage("fig4_point", fig4_ms);
    let fig4_point = Fig4PointReport {
        wall_ms: fig4_ms,
        baseline_wall_ms: FIG4_POINT_BASELINE_MS,
        speedup_vs_baseline: FIG4_POINT_BASELINE_MS / fig4_ms,
        macro_f1: point.macro_f1,
        quantized: quantized_point,
        train_jobs,
    };

    let report = PerfReport {
        schema_version: 4,
        seed,
        extract_train,
        extract_predict,
        infer_frozen,
        infer_quantized,
        nn_train,
        nn_forward,
        backward,
        harness_build,
        fig4_point,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| fieldswap_bench::fail(&format!("write {out_path}: {e}")));
    println!("{json}");
    fieldswap_obs::info!(
        "sanity: extract macro-F1 {sanity_macro:.2}, nn forward checksum {checksum:.3}, wrote {out_path}"
    );
    fieldswap_bench::finish_obs(trace.as_deref(), metrics.as_deref());
}
