//! Regenerates **Table II**: the number of fields of each base type per
//! document type. The schemas are built to match the paper exactly.

use fieldswap_bench::{BinArgs, TablePrinter};

fn main() {
    let args = BinArgs::parse();
    println!("Table II — Number of fields per base type (paper vs schemas)\n");
    let t = TablePrinter::new(&[
        ("Document Type", 22),
        ("Address", 8),
        ("Date", 6),
        ("Money", 6),
        ("Number", 7),
        ("String", 7),
    ]);
    let mut rows = Vec::new();
    for domain in args.domains() {
        let schema = domain.generator().schema();
        let h = schema.type_histogram();
        t.row(&[
            domain.name().to_string(),
            h[0].to_string(),
            h[1].to_string(),
            h[2].to_string(),
            h[3].to_string(),
            h[4].to_string(),
        ]);
        rows.push((domain.name().to_string(), h));
    }
    println!("\npaper (Table II): FARA 0/1/0/1/4, FCC 1/4/2/1/5, Brokerage 2/4/5/0/7,");
    println!("Earnings 2/3/15/0/3, Loan Payments 3/5/20/0/7.");
    args.maybe_write_json(&rows);
    args.finish();
}
