//! Regenerates **Fig. 4**: mean macro-F1 learning curves per domain and
//! training set size, for the baseline, automatic FieldSwap
//! (field-to-field, type-to-type), and — on Earnings and Loan Payments —
//! the human-expert configuration.
//!
//! Shape expectations from the paper (Section IV-C1): FieldSwap is
//! neutral-or-better everywhere; biggest gains on Earnings (4–11 macro-F1
//! points), smallest on FARA; type-to-type wins at 10 documents,
//! field-to-field catches up at 50–100; human expert >= automatic.

use fieldswap_bench::{BinArgs, TablePrinter};
use fieldswap_datagen::Domain;
use fieldswap_eval::{Arm, PointSummary};

fn main() {
    let args = BinArgs::parse();
    let sizes = [10usize, 50, 100];
    let harness = args.build_harness();

    println!(
        "Fig. 4 — mean macro-F1 ({} protocol, {} samples x {} trials, {} jobs)\n",
        if args.full { "full" } else { "quick" },
        harness.options().n_samples,
        harness.options().n_trials,
        fieldswap_eval::effective_jobs(harness.options().jobs),
    );

    // The whole figure is one grid: every experiment of every domain and
    // size shares the worker pool, then the table prints in grid order.
    let mut points: Vec<(Domain, usize, Arm)> = Vec::new();
    for domain in args.domains() {
        let mut arms = vec![Arm::Baseline, Arm::AutoFieldToField, Arm::AutoTypeToType];
        if matches!(domain, Domain::Earnings | Domain::LoanPayments) {
            arms.push(Arm::HumanExpert);
        }
        for &size in &sizes {
            for &arm in &arms {
                points.push((domain, size, arm));
            }
        }
    }
    let all: Vec<PointSummary> = harness.run_grid(&points);

    let mut results = points.iter().zip(&all).peekable();
    for domain in args.domains() {
        println!("== {} ==", domain.name());
        let t = TablePrinter::new(&[
            ("train size", 10),
            ("arm", 28),
            ("macro-F1", 9),
            ("Δ vs baseline", 13),
            ("synthetics", 10),
        ]);
        let mut baseline_f1 = None;
        while let Some(((d, size, arm), p)) = results.peek() {
            if *d != domain {
                break;
            }
            if *arm == Arm::Baseline {
                baseline_f1 = Some(p.macro_f1);
            }
            let delta = baseline_f1
                .map(|b| format!("{:+.2}", p.macro_f1 - b))
                .unwrap_or_default();
            t.row(&[
                size.to_string(),
                p.arm.clone(),
                format!("{:.2}", p.macro_f1),
                delta,
                format!("{:.0}", p.synthetics),
            ]);
            results.next();
        }
        println!();
    }

    println!("paper shape check (Section IV-C1): gains of 1-4 (FCC), 2-5 (Brokerage), 4-11 (Earnings) macro-F1 points;");
    println!("t2t > f2f at 10 docs; f2f matches or passes t2t at 50-100; expert >= automatic.");
    args.maybe_write_json(&all);
    args.finish();
}
