//! Regenerates **Table IV**: the fields with the largest mean F1 gain
//! between the automatic (field-to-field) and human-expert settings on the
//! Earnings domain at 50 training documents, alongside each field's
//! document frequency in the 2000-document pool.
//!
//! Shape expectation: the biggest automatic-vs-expert gaps concentrate on
//! rare fields (`*.sales_pay` ~3–4% frequency, `*.pto_pay` ~10–16%),
//! because the expert supplies key phrases that cannot be inferred from a
//! 50-document sample with no instances of those fields (Section IV-C2).

use fieldswap_bench::{paper, BinArgs, TablePrinter};
use fieldswap_datagen::Domain;
use fieldswap_eval::metrics::mean;
use fieldswap_eval::Arm;

fn main() {
    let args = BinArgs::parse();
    let size = 50usize;
    let domain = Domain::Earnings;
    let harness = args.build_harness();

    println!(
        "Table IV — largest F1 gains, automatic(f2f) vs human expert, Earnings @ {size} docs ({} protocol)\n",
        if args.full { "full" } else { "quick" }
    );

    // Both arms as one grid, so their experiments share the worker pool.
    let mut summaries = harness
        .run_grid(&[
            (domain, size, Arm::AutoFieldToField),
            (domain, size, Arm::HumanExpert),
        ])
        .into_iter();
    let (auto, expert) = (summaries.next().unwrap(), summaries.next().unwrap());

    let data = harness.domain_data(domain);
    let pool = &data.0;
    let schema = pool.schema.clone();

    // Mean per-field F1 across runs, ignoring runs without support.
    let field_mean = |runs: &[fieldswap_eval::ExperimentResult], f: usize| -> Option<f64> {
        let vals: Vec<f64> = runs.iter().filter_map(|r| r.per_field_f1[f]).collect();
        mean(&vals)
    };

    let mut rows: Vec<(String, f64, f64, f64, f64)> = Vec::new();
    for (id, def) in schema.iter() {
        let freq = pool.field_frequency(id);
        let (Some(a), Some(e)) = (
            field_mean(&auto.runs, id as usize),
            field_mean(&expert.runs, id as usize),
        ) else {
            continue;
        };
        rows.push((def.name.clone(), freq, a, e, e - a));
    }
    rows.sort_by(|x, y| y.4.total_cmp(&x.4));

    let t = TablePrinter::new(&[
        ("field", 26),
        ("frequency", 10),
        ("F1 auto", 9),
        ("F1 expert", 10),
        ("ΔF1", 8),
    ]);
    for (name, freq, a, e, d) in rows.iter().take(8) {
        t.row(&[
            name.clone(),
            format!("{:.2}%", freq * 100.0),
            format!("{a:.2}"),
            format!("{e:.2}"),
            format!("{d:+.2}"),
        ]);
    }

    println!("\npaper (Table IV, for reference):");
    let t = TablePrinter::new(&[
        ("field", 26),
        ("frequency", 10),
        ("F1 auto", 9),
        ("F1 expert", 10),
        ("ΔF1", 8),
    ]);
    for (name, freq, a, e) in paper::TABLE4 {
        t.row(&[
            name.to_string(),
            format!("{:.2}%", freq * 100.0),
            format!("{a:.2}"),
            format!("{e:.2}"),
            format!("{:+.2}", e - a),
        ]);
    }
    args.maybe_write_json(&rows);
    args.finish();
}
