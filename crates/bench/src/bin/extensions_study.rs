//! Extension study: the paper's Section VI future-work directions,
//! implemented and measured.
//!
//! 1. **Name-derived key phrases** (the "LLM instead of a human expert"
//!    question) — zero-annotation FieldSwap configuration from field
//!    names alone, via the rule-based simulated-LLM expander.
//! 2. **Value swapping** (the Section II-C open question) — relabeled
//!    instances receive values sampled from the target field's observed
//!    value bank.
//! 3. **Cross-document-type swapping** — synthetics for the target domain
//!    generated from a *different* domain's labeled corpus.
//! 4. **Semi-supervised key-phrase mining** — seed phrases expanded with
//!    template lines mined from an *unlabeled* corpus of the target
//!    domain.

use fieldswap_bench::{BinArgs, TablePrinter};
use fieldswap_core::{augment_cross_domain, cross_pairs_by_type, CrossDomainSpec, FieldSwapConfig};
use fieldswap_datagen::{generate, Domain};
use fieldswap_eval::{evaluate, Arm};
use fieldswap_extract::{Extractor, Lexicon, TrainConfig};

fn main() {
    let args = BinArgs::parse();
    let harness = args.build_harness();
    let domain = Domain::Earnings;
    let size = 10usize;

    println!(
        "Extension study on {} @ {size} docs ({} protocol)\n",
        domain.name(),
        if args.full { "full" } else { "quick" }
    );

    // --- Extensions 1 & 2, through the harness arms (one grid).
    println!("macro-F1 by arm:");
    let t = TablePrinter::new(&[("arm", 34), ("macro-F1", 9), ("synthetics", 10)]);
    let points: Vec<_> = [
        Arm::Baseline,
        Arm::AutoTypeToType,
        Arm::NameDerived,
        Arm::TypeToTypeValueSwap,
        Arm::HumanExpert,
    ]
    .into_iter()
    .map(|arm| (domain, size, arm))
    .collect();
    for p in harness.run_grid(&points) {
        t.row(&[
            p.arm.clone(),
            format!("{:.2}", p.macro_f1),
            format!("{:.0}", p.synthetics),
        ]);
    }
    println!("(name-derived = zero labeled examples used for configuration)\n");

    // --- Extension 3: cross-domain synthetics from Invoices -> Earnings.
    println!("cross-document-type swap (Invoices -> Earnings):");
    let invoices = generate(Domain::Invoices, args.seed ^ 7, 40);
    let sample = harness.sample(domain, size, 0);
    let test = harness.domain_data(domain).1.clone();

    let mut src_config = FieldSwapConfig::new(invoices.schema.len());
    for (name, phrases) in Domain::Invoices.generator().phrase_bank() {
        let id = invoices.schema.field_id(&name).unwrap();
        src_config.set_phrases(id, phrases);
    }
    // Target phrases: the zero-annotation name-derived configuration, so
    // the whole cross-domain path needs no target-domain labels at all.
    let tgt_config = fieldswap_keyphrase::config_from_schema(&sample.schema);
    let pairs = cross_pairs_by_type(&invoices.schema, &sample.schema, &src_config, &tgt_config);
    let spec = CrossDomainSpec {
        source_config: &src_config,
        target_config: &tgt_config,
        pairs,
    };
    let (cross_synths, stats) = augment_cross_domain(&invoices, &spec);
    println!(
        "  {} cross-domain synthetics from {} invoices ({} productive pairs)",
        stats.generated,
        invoices.len(),
        stats.productive_pairs
    );

    let lexicon = Lexicon::pretrain(&generate(Domain::Invoices, args.seed ^ 9, 150).documents);
    let cfg = TrainConfig {
        epochs: if args.full { 8 } else { 5 },
        synth_ratio: 2.0,
        seed: args.seed,
        ..TrainConfig::default()
    };
    let base = evaluate(
        &Extractor::train_on(&sample.schema, lexicon.clone(), &sample, &[], &cfg),
        &test,
    );
    let boosted = evaluate(
        &Extractor::train_on(&sample.schema, lexicon, &sample, &cross_synths, &cfg),
        &test,
    );
    let t = TablePrinter::new(&[("training data", 40), ("macro-F1", 9)]);
    t.row(&[
        format!("{size} earnings docs"),
        format!("{:.2}", base.macro_f1()),
    ]);
    t.row(&[
        format!("{size} earnings docs + cross-domain synthetics"),
        format!("{:.2}", boosted.macro_f1()),
    ]);
    println!(
        "\ndelta: {:+.2} macro-F1 (the paper asks 'under what circumstances does",
        boosted.macro_f1() - base.macro_f1()
    );
    println!("swapping across document types help?' — measure across seeds/domains to answer)");

    // --- Extension 4: semi-supervised mining from unlabeled documents.
    println!("\nsemi-supervised key-phrase mining (unlabeled Earnings corpus):");
    let unlabeled = {
        // Strip labels: the mining pass must not see them.
        let mut c = generate(domain, args.seed ^ 11, if args.full { 400 } else { 150 });
        for d in &mut c.documents {
            d.annotations.clear();
        }
        c
    };
    let seed_config = harness
        .arm_config(domain, size, 0, Arm::AutoTypeToType)
        .expect("auto config");
    let seed_phrases: usize = (0..seed_config.n_fields())
        .map(|f| seed_config.phrases(f as u16).len())
        .sum();
    let (mut expanded, added) = fieldswap_keyphrase::expand_with_unlabeled(
        &seed_config,
        &unlabeled.documents,
        &fieldswap_keyphrase::MiningConfig::default(),
    );
    println!(
        "  seed config: {seed_phrases} phrases; mined {added} additional phrases from {} unlabeled docs",
        unlabeled.len()
    );
    expanded.set_pairs(fieldswap_core::PairStrategy::TypeToType.build(&sample.schema, &expanded));
    let (mined_synths, _) = fieldswap_core::augment_corpus(&sample, &expanded);
    let (seed_synths, _) = fieldswap_core::augment_corpus(&sample, &seed_config);
    println!(
        "  synthetics: {} with seed phrases -> {} with mined expansion",
        seed_synths.len(),
        mined_synths.len()
    );
    args.finish();
}
