//! CI gate runner: compares benchmark/accuracy artifacts and exits
//! non-zero on regression. All comparison logic lives in
//! [`fieldswap_bench::gate`] where it is unit-tested; this binary only
//! parses flags, loads JSON, prints the table, and sets the exit code.
//!
//! Modes:
//!
//! ```text
//! bench_gate perf  --baseline BENCH_train.json --current fresh.json [--max-regress 0.30]
//! bench_gate quant --exact f32.json --quantized q8.json [--epsilon E] [--table PATH]
//! bench_gate serve --baseline BENCH_serve.json --current fresh.json [--max-regress 0.30]
//! ```
//!
//! * `perf` fails when `extract_predict` or `infer_frozen` throughput
//!   dropped by more than `--max-regress` (fraction, default 0.30)
//!   versus the committed baseline.
//! * `quant` matches fig4 points by `(domain, size, arm)` between an
//!   exact-f32 and a `--quantized` `fig4_macro_f1 --json` dump and fails
//!   when any macro-F1 delta exceeds `--epsilon` (default
//!   [`fieldswap_eval::QUANT_MACRO_F1_EPSILON`], the same bound the
//!   in-repo guard test enforces). `--table` additionally writes the
//!   delta table to a file for artifact upload.
//! * `serve` fails when a fresh `serve_bench --json` dump's throughput
//!   or availability dropped, or its p99 latency or shed rate rose, by
//!   more than `--max-regress` versus the committed `BENCH_serve.json`
//!   (schema v2; v1 baselines without the overload metrics still pass
//!   per the missing-baseline guard).

use fieldswap_bench::gate;
use serde_json::Value;

fn usage(msg: &str) -> ! {
    eprintln!(
        "usage: bench_gate perf --baseline PATH --current PATH [--max-regress X]\n       \
         bench_gate quant --exact PATH --quantized PATH [--epsilon E] [--table PATH]\n       \
         bench_gate serve --baseline PATH --current PATH [--max-regress X]"
    );
    fieldswap_bench::fail(msg)
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fieldswap_bench::fail(&format!("read {path}: {e}")));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| fieldswap_bench::fail(&format!("parse {path}: {e}")))
}

/// `(flag, value)` pairs after the mode word, every flag taking exactly
/// one value.
fn flag_values(args: &[String]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let flag = &args[i];
        if !flag.starts_with("--") {
            usage(&format!("expected a flag, found {flag:?}"));
        }
        let Some(value) = args.get(i + 1) else {
            usage(&format!("{flag} expects a value"));
        };
        if value.starts_with("--") {
            usage(&format!("{flag} expects a value, found flag {value}"));
        }
        out.push((flag.clone(), value.clone()));
        i += 2;
    }
    out
}

fn num(v: &str, flag: &str) -> f64 {
    v.parse()
        .unwrap_or_else(|_| usage(&format!("{flag}: bad value {v:?}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first() else {
        usage("missing mode (perf|quant|serve)");
    };
    let flags = flag_values(&args[1..]);
    let get = |name: &str| -> Option<&str> {
        flags
            .iter()
            .rev()
            .find(|(f, _)| f == name)
            .map(|(_, v)| v.as_str())
    };
    let require = |name: &str| -> &str {
        get(name).unwrap_or_else(|| usage(&format!("{mode} requires {name}")))
    };

    let failed = match mode.as_str() {
        "perf" => {
            for (f, _) in &flags {
                if !["--baseline", "--current", "--max-regress"].contains(&f.as_str()) {
                    usage(&format!("unknown perf flag {f}"));
                }
            }
            let baseline = load(require("--baseline"));
            let current = load(require("--current"));
            let max_regress = get("--max-regress").map_or(0.30, |v| num(v, "--max-regress"));
            let deltas = gate::perf_gate(&baseline, &current, max_regress);
            print!("{}", gate::render_perf_table(&deltas));
            println!("(gate fails when regression > {:.0}%)", max_regress * 100.0);
            deltas.iter().any(|d| d.failed)
        }
        "quant" => {
            for (f, _) in &flags {
                if !["--exact", "--quantized", "--epsilon", "--table"].contains(&f.as_str()) {
                    usage(&format!("unknown quant flag {f}"));
                }
            }
            let exact = load(require("--exact"));
            let quantized = load(require("--quantized"));
            let epsilon = get("--epsilon").map_or(fieldswap_eval::QUANT_MACRO_F1_EPSILON, |v| {
                num(v, "--epsilon")
            });
            let deltas = gate::quant_gate(&exact, &quantized, epsilon);
            if deltas.is_empty() {
                fieldswap_bench::fail("no comparable points found in the two dumps");
            }
            let table = gate::render_quant_table(&deltas, epsilon);
            print!("{table}");
            if let Some(path) = get("--table") {
                std::fs::write(path, &table)
                    .unwrap_or_else(|e| fieldswap_bench::fail(&format!("write {path}: {e}")));
                fieldswap_obs::info!("wrote {path}");
            }
            deltas.iter().any(|d| d.failed)
        }
        "serve" => {
            for (f, _) in &flags {
                if !["--baseline", "--current", "--max-regress"].contains(&f.as_str()) {
                    usage(&format!("unknown serve flag {f}"));
                }
            }
            let baseline = load(require("--baseline"));
            let current = load(require("--current"));
            let max_regress = get("--max-regress").map_or(0.30, |v| num(v, "--max-regress"));
            let deltas = gate::serve_gate(&baseline, &current, max_regress);
            print!("{}", gate::render_serve_table(&deltas));
            println!("(gate fails when regression > {:.0}%)", max_regress * 100.0);
            deltas.iter().any(|d| d.failed)
        }
        other => usage(&format!("unknown mode {other:?} (perf|quant|serve)")),
    };
    if failed {
        fieldswap_bench::fail("gate FAILED");
    }
    println!("gate ok");
}
