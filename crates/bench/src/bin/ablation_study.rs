//! Quality ablations of the paper's design choices (DESIGN.md Section 4).
//! Each ablation swaps one decision for its alternative and reports the
//! effect on (a) the inferred key phrases' agreement with the generator's
//! oracle banks, or (b) end-to-end macro-F1.
//!
//! Choices covered:
//! 1. off-axis vs Euclidean neighbor selection;
//! 2. sparsemax vs hard top-k sparsification;
//! 3. noisy-or (Eq. 1) vs mean aggregation;
//! 4. the discard-unchanged rule on vs off;
//! 5. ground-truth-token exclusion on vs off;
//! 6. all-to-all vs type-to-type pair mapping (end-to-end).

use fieldswap_bench::{BinArgs, TablePrinter};
use fieldswap_core::config::normalize_phrase;
use fieldswap_core::{augment_corpus_with, EngineOptions, FieldSwapConfig, PairStrategy};
use fieldswap_datagen::{generate, Domain};
use fieldswap_docmodel::NeighborMetric;
use fieldswap_eval::Arm;
use fieldswap_keyphrase::{
    infer_key_phrases, Aggregation, ImportanceModel, InferenceConfig, ModelConfig, Sparsify,
};

/// Fraction of fields (with oracle phrases and at least one inferred
/// phrase) whose top-3 inferred phrases hit the oracle bank.
fn oracle_hit_rate(domain: Domain, ranked: &[Vec<fieldswap_keyphrase::RankedPhrase>]) -> f64 {
    let schema = domain.generator().schema();
    let bank = domain.generator().phrase_bank();
    let mut hits = 0usize;
    let mut total = 0usize;
    for (name, oracle) in &bank {
        if oracle.is_empty() {
            continue;
        }
        let fid = schema.field_id(name).unwrap() as usize;
        if ranked[fid].is_empty() {
            continue;
        }
        total += 1;
        let oracle_norm: Vec<String> = oracle.iter().map(|p| normalize_phrase(p)).collect();
        if ranked[fid].iter().any(|r| {
            oracle_norm
                .iter()
                .any(|o| r.phrase.contains(o.as_str()) || o.contains(r.phrase.as_str()))
        }) {
            hits += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

fn main() {
    let args = BinArgs::parse();
    let seed = args.seed;

    // Shared importance model, pre-trained on invoices.
    let pretrain = generate(Domain::Invoices, seed, if args.full { 300 } else { 100 });
    let mut model = ImportanceModel::new(
        ModelConfig {
            neighbors: if args.full { 100 } else { 24 },
            epochs: 2,
            ..ModelConfig::default()
        },
        pretrain.schema.len(),
        seed,
    );
    model.train(&pretrain, seed ^ 1);
    let target = generate(Domain::Earnings, seed ^ 2, if args.full { 80 } else { 40 });

    println!(
        "Ablation study ({} scale)\n",
        if args.full { "full" } else { "quick" }
    );

    // --- 1/2/3/5: inference-pipeline ablations, scored by oracle hit rate.
    println!("key-phrase inference ablations (oracle hit rate on Earnings):");
    let t = TablePrinter::new(&[("variant", 40), ("hit rate", 9), ("phrases", 8)]);
    let variants: Vec<(&str, InferenceConfig)> = vec![
        (
            "paper defaults (sparsemax, noisy-or, excl.)",
            InferenceConfig::default(),
        ),
        (
            "sparsify = top-5 cosine",
            InferenceConfig {
                sparsify: Sparsify::TopK(5),
                ..InferenceConfig::default()
            },
        ),
        (
            "aggregation = mean",
            InferenceConfig {
                aggregation: Aggregation::Mean,
                ..InferenceConfig::default()
            },
        ),
        (
            "ground-truth exclusion OFF",
            InferenceConfig {
                exclude_ground_truth: false,
                ..InferenceConfig::default()
            },
        ),
    ];
    for (name, cfg) in &variants {
        let ranked = infer_key_phrases(&model, &target, cfg);
        let hit = oracle_hit_rate(Domain::Earnings, &ranked);
        let n: usize = ranked.iter().map(Vec::len).sum();
        t.row(&[
            name.to_string(),
            format!("{:.0}%", hit * 100.0),
            n.to_string(),
        ]);
    }

    // --- 1b: neighbor metric, via a model trained with each metric.
    println!("\nneighbor metric ablation (oracle hit rate on Earnings):");
    let t = TablePrinter::new(&[("variant", 40), ("hit rate", 9)]);
    for (name, metric) in [
        ("off-axis |dx|*|dy| (paper)", NeighborMetric::OffAxis),
        ("euclidean", NeighborMetric::Euclidean),
    ] {
        let mut m = ImportanceModel::new(
            ModelConfig {
                neighbors: if args.full { 100 } else { 24 },
                epochs: 2,
                neighbor_metric: metric,
                ..ModelConfig::default()
            },
            pretrain.schema.len(),
            seed,
        );
        m.train(&pretrain, seed ^ 1);
        let ranked = infer_key_phrases(&m, &target, &InferenceConfig::default());
        let hit = oracle_hit_rate(Domain::Earnings, &ranked);
        t.row(&[name.to_string(), format!("{:.0}%", hit * 100.0)]);
    }

    // --- 4: discard-unchanged rule, measured by contradiction count.
    println!("\ndiscard-unchanged rule (Earnings, oracle phrases, t2t):");
    let corpus = generate(Domain::Earnings, seed ^ 3, 20);
    let mut config = FieldSwapConfig::new(corpus.schema.len());
    for (name, phrases) in Domain::Earnings.generator().phrase_bank() {
        let id = corpus.schema.field_id(&name).unwrap();
        config.set_phrases(id, phrases);
    }
    config.set_pairs(PairStrategy::TypeToType.build(&corpus.schema, &config));
    let t = TablePrinter::new(&[("variant", 16), ("synthetics", 11), ("unchanged kept", 14)]);
    let (_, stats_on) = augment_corpus_with(
        &corpus,
        &config,
        &EngineOptions {
            discard_unchanged: true,
        },
    );
    let (_, stats_off) = augment_corpus_with(
        &corpus,
        &config,
        &EngineOptions {
            discard_unchanged: false,
        },
    );
    t.row(&[
        "rule ON".to_string(),
        stats_on.generated.to_string(),
        "0".to_string(),
    ]);
    t.row(&[
        "rule OFF".to_string(),
        stats_off.generated.to_string(),
        (stats_off.generated - stats_on.generated).to_string(),
    ]);
    println!("(with the rule off, every 'unchanged kept' document is a mislabeled");
    println!(" contradictory example of the Section II-B kind)");

    // --- 6: all-to-all vs type-to-type, end to end.
    println!("\npair-mapping ablation (Earnings @ 10 docs, macro-F1):");
    let harness = args.build_harness();
    let t = TablePrinter::new(&[("arm", 30), ("macro-F1", 9)]);
    let points: Vec<_> = [Arm::Baseline, Arm::AutoTypeToType, Arm::AutoAllToAll]
        .into_iter()
        .map(|arm| (Domain::Earnings, 10, arm))
        .collect();
    for p in harness.run_grid(&points) {
        t.row(&[p.arm.clone(), format!("{:.2}", p.macro_f1)]);
    }
    println!("(paper: all-to-all is 'nearly always worse' than type-to-type)");
    args.finish();
}
