//! Regenerates **Fig. 5**: mean micro-F1 learning curves — the same
//! protocol as Fig. 4 but instance-weighted instead of field-weighted.
//!
//! Shape expectation (Section IV-C1, "Macro-F1 vs Micro-F1"): the same
//! pattern as Fig. 4 persists but gains are smaller, because the largest
//! improvements come from rare fields, which macro-F1 amplifies and
//! micro-F1 discounts.

use fieldswap_bench::{BinArgs, TablePrinter};
use fieldswap_datagen::Domain;
use fieldswap_eval::{Arm, PointSummary};

fn main() {
    let args = BinArgs::parse();
    let sizes = [10usize, 50, 100];
    let harness = args.build_harness();

    println!(
        "Fig. 5 — mean micro-F1 ({} protocol, {} samples x {} trials, {} jobs)\n",
        if args.full { "full" } else { "quick" },
        harness.options().n_samples,
        harness.options().n_trials,
        fieldswap_eval::effective_jobs(harness.options().jobs),
    );

    let mut points: Vec<(Domain, usize, Arm)> = Vec::new();
    for domain in args.domains() {
        let mut arms = vec![Arm::Baseline, Arm::AutoFieldToField, Arm::AutoTypeToType];
        if matches!(domain, Domain::Earnings | Domain::LoanPayments) {
            arms.push(Arm::HumanExpert);
        }
        for &size in &sizes {
            for &arm in &arms {
                points.push((domain, size, arm));
            }
        }
    }
    let all: Vec<PointSummary> = harness.run_grid(&points);

    let mut results = points.iter().zip(&all).peekable();
    for domain in args.domains() {
        println!("== {} ==", domain.name());
        let t = TablePrinter::new(&[
            ("train size", 10),
            ("arm", 28),
            ("micro-F1", 9),
            ("Δ vs baseline", 13),
        ]);
        let mut baseline_f1 = None;
        while let Some(((d, size, arm), p)) = results.peek() {
            if *d != domain {
                break;
            }
            if *arm == Arm::Baseline {
                baseline_f1 = Some(p.micro_f1);
            }
            let delta = baseline_f1
                .map(|b| format!("{:+.2}", p.micro_f1 - b))
                .unwrap_or_default();
            t.row(&[
                size.to_string(),
                p.arm.clone(),
                format!("{:.2}", p.micro_f1),
                delta,
            ]);
            results.next();
        }
        println!();
    }
    println!("paper shape check: micro-F1 gains smaller than macro-F1 gains (2-5 Earnings, 1-5 Brokerage);");
    println!("rare fields drive the macro advantage.");
    args.maybe_write_json(&all);
    args.finish();
}
