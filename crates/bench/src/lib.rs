//! # fieldswap-bench
//!
//! Benchmarks and the table/figure regeneration binaries for the
//! FieldSwap paper. Each binary under `src/bin/` reproduces one table or
//! figure of the evaluation section (see `DESIGN.md` for the experiment
//! index) and prints paper-reported values next to measured ones.
//!
//! Binaries accept:
//! * `--full` — the paper's full 3x3 protocol on full test sets (slow);
//!   the default is the reduced quick protocol.
//! * `--domain <name>` — restrict to one domain (`fara`, `fcc`,
//!   `brokerage`, `earnings`, `loan`).
//! * `--seed <n>` — override the master seed.
//! * `--json <path>` — also dump results as JSON.
//! * `--jobs <n>` — worker threads for the experiment grid (0 = all
//!   cores, the default; 1 = serial). Results are bit-identical for
//!   every setting.
//! * `--train-jobs <n>` — worker threads *inside* each training run:
//!   corpus rendering, perceptron decode windows, and importance-model
//!   gradient batches (0 = all cores; default 1 = serial). Training is
//!   bitwise-identical for every setting.
//! * `--trace <path>` — record a JSONL span/log trace, print a span-tree
//!   summary to stderr at exit.
//! * `--trace-chrome <path>` — also export the trace as Chrome
//!   trace-event JSON (load in Perfetto; one track per worker thread).
//! * `--flame <path>` — export the span tree as collapsed stacks
//!   (flamegraph.pl input format).
//! * `--metrics <path>` — dump Prometheus-style counters/gauges/
//!   histograms at exit.
//! * `--metrics-flush-secs <n>` — additionally rewrite the `--metrics`
//!   file every `n` seconds, so a killed run leaves metrics on disk.
//! * `--obs-listen <addr>` — serve `/metrics`, `/healthz`, and `/spans`
//!   over HTTP (e.g. `127.0.0.1:9464`) for the lifetime of the run.
//! * `--checkpoint-dir <path>` — persist each completed grid cell to the
//!   directory (created if needed) so a killed run can be resumed.
//! * `--resume <path>` — resume from an existing checkpoint directory:
//!   finished cells are loaded instead of recomputed, and the output is
//!   byte-identical to an uninterrupted run.
//! * `--attacks <list>` — comma-separated form-attack names for the
//!   robustness binaries (`keyphrase-abbrev`, `token-drop`, `box-jitter`,
//!   `line-merge-split`, `value-noise`, `separation-shift`, or `all`).
//! * `--attack-strength <x>` — attack strength in `[0, 1]` (default 0.5).
//! * `--no-sanitize` — skip document validation/repair at corpus
//!   ingestion. Sanitization is a strict no-op on well-formed documents,
//!   so this flag exists only to prove that byte-identity in CI.
//! * `--quantized` — evaluate through the int8-quantized frozen
//!   emission table instead of exact f32. Approximate (see the CI
//!   quantization gate); training is unaffected.
//! * `--verbose`/`-v`, `--quiet`/`-q` — logger verbosity.
//!
//! Every option that takes a value rejects a `--`-prefixed token in the
//! value position (`--json --seed` is a forgotten path, not a file named
//! `--seed`) with a usage error rather than silently swallowing the next
//! flag.
//!
//! Tracing and metrics are **inert for correctness**: stdout tables and
//! `--json` dumps are byte-identical with or without them (enforced by
//! `tests/trace_identity.rs` and the CI diff job).

use fieldswap_datagen::Domain;
use fieldswap_eval::{CellCache, Harness, HarnessOptions};

pub mod gate;
pub mod trace_report;

/// Command-line options shared by the regeneration binaries.
#[derive(Debug, Clone)]
pub struct BinArgs {
    /// Paper protocol (3x3, full test sets) instead of the quick one.
    pub full: bool,
    /// Optional domain filter.
    pub domain: Option<Domain>,
    /// Master seed.
    pub seed: u64,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Override: document samples per point.
    pub samples: Option<usize>,
    /// Override: training trials per sample.
    pub trials: Option<usize>,
    /// Override: test-set cap (0 = full).
    pub test_cap: Option<usize>,
    /// Override: worker threads (0 = all cores, 1 = serial).
    pub jobs: Option<usize>,
    /// Override: worker threads inside each training run
    /// (`--train-jobs`; 0 = all cores, 1 = serial). Bitwise-neutral.
    pub train_jobs: Option<usize>,
    /// JSONL trace output path (`--trace`); enables span recording.
    pub trace: Option<String>,
    /// Chrome trace-event JSON output path (`--trace-chrome`); enables
    /// span recording. Loadable in Perfetto with one track per worker
    /// thread.
    pub trace_chrome: Option<String>,
    /// Collapsed-stack flamegraph output path (`--flame`); enables span
    /// recording.
    pub flame: Option<String>,
    /// Prometheus-style metrics output path (`--metrics`).
    pub metrics: Option<String>,
    /// Seconds between periodic metrics flushes to the `--metrics` path
    /// (`--metrics-flush-secs`; 0 or absent = write only at exit).
    pub metrics_flush_secs: Option<u64>,
    /// Address for the live observability HTTP server
    /// (`--obs-listen`, e.g. `127.0.0.1:9464`): serves `/metrics`,
    /// `/healthz`, and `/spans` for the lifetime of the process.
    /// Enables tracing and metrics; results stay byte-identical.
    pub obs_listen: Option<String>,
    /// Checkpoint directory for per-cell result persistence
    /// (`--checkpoint-dir`, created if needed).
    pub checkpoint_dir: Option<String>,
    /// Existing checkpoint directory to resume from (`--resume`).
    pub resume: Option<String>,
    /// Comma-separated attack names for the robustness binaries
    /// (`--attacks`; `all` or absent = the full taxonomy).
    pub attacks: Option<String>,
    /// Attack strength in `[0, 1]` (`--attack-strength`, default 0.5).
    pub attack_strength: Option<f64>,
    /// Skip ingestion sanitization (`--no-sanitize`). Sanitization is a
    /// strict no-op on well-formed corpora; CI diffs outputs with and
    /// without this flag to prove it.
    pub no_sanitize: bool,
    /// Evaluate through the int8-quantized frozen emission table
    /// (`--quantized`). Approximate; training is unaffected.
    pub quantized: bool,
    /// Logger verbosity override (`--verbose`/`-v`, `--quiet`/`-q`).
    pub verbosity: Option<fieldswap_obs::Verbosity>,
}

/// The value following a value-taking flag, rejecting `--`-prefixed
/// tokens: `--json --seed 7` means a forgotten path, and treating
/// `--seed` as the path would silently drop both options.
fn take_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
    *i += 1;
    match args.get(*i) {
        Some(v) if v.starts_with("--") => Err(format!(
            "{flag} expects a value, found flag {v} (use {flag} VALUE)"
        )),
        Some(v) => Ok(v),
        None => Err(format!("{flag} expects a value")),
    }
}

impl BinArgs {
    /// Parses `std::env::args()`, applying observability side effects
    /// (tracing/metrics enablement, verbosity). Errors abort with a
    /// usage message.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let out = Self::try_parse_from(&args).unwrap_or_else(|msg| usage(&msg));
        if out.trace.is_some() || out.trace_chrome.is_some() || out.flame.is_some() {
            fieldswap_obs::enable_tracing();
        }
        if out.metrics.is_some() {
            fieldswap_obs::enable_metrics();
        }
        if let Some(v) = out.verbosity {
            fieldswap_obs::set_verbosity(v);
        }
        if let Some(addr) = &out.obs_listen {
            // The live endpoints need both spans and metrics to serve
            // anything useful; both are inert for results (see the
            // byte-identity tests and the CI diff step).
            fieldswap_obs::enable_tracing();
            fieldswap_obs::enable_metrics();
            let server = fieldswap_obs::ObsServer::start(fieldswap_obs::global(), addr)
                .unwrap_or_else(|e| fail(&format!("--obs-listen {addr}: {e}")));
            fieldswap_obs::info!("obs server listening on http://{}", server.addr());
            // Process-lifetime server: leak the handle so the thread
            // keeps serving until exit.
            std::mem::forget(server);
        }
        if let (Some(path), Some(secs)) = (&out.metrics, out.metrics_flush_secs) {
            if secs > 0 {
                let flusher = fieldswap_obs::PeriodicFlush::start(
                    fieldswap_obs::global(),
                    path,
                    std::time::Duration::from_secs(secs),
                )
                .unwrap_or_else(|e| fail(&format!("--metrics-flush-secs: {e}")));
                std::mem::forget(flusher);
            }
        }
        out
    }

    /// The pure parser behind [`parse`](Self::parse): no process exit,
    /// no global side effects — testable.
    pub fn try_parse_from(args: &[String]) -> Result<Self, String> {
        let mut out = Self {
            full: false,
            domain: None,
            seed: 0x5EED,
            json: None,
            samples: None,
            trials: None,
            test_cap: None,
            jobs: None,
            train_jobs: None,
            trace: None,
            trace_chrome: None,
            flame: None,
            metrics: None,
            metrics_flush_secs: None,
            obs_listen: None,
            checkpoint_dir: None,
            resume: None,
            attacks: None,
            attack_strength: None,
            no_sanitize: false,
            quantized: false,
            verbosity: None,
        };
        fn num<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
            v.parse().map_err(|_| format!("{flag}: bad value {v:?}"))
        }
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => out.full = true,
                "--quick" => out.full = false,
                "--domain" => {
                    let name = take_value(args, &mut i, "--domain")?;
                    out.domain =
                        Some(parse_domain(name).ok_or_else(|| format!("bad domain {name:?}"))?);
                }
                "--seed" => out.seed = num(take_value(args, &mut i, "--seed")?, "--seed")?,
                "--json" => out.json = Some(take_value(args, &mut i, "--json")?.to_string()),
                "--samples" => {
                    out.samples = Some(num(take_value(args, &mut i, "--samples")?, "--samples")?)
                }
                "--trials" => {
                    out.trials = Some(num(take_value(args, &mut i, "--trials")?, "--trials")?)
                }
                "--testcap" => {
                    out.test_cap = Some(num(take_value(args, &mut i, "--testcap")?, "--testcap")?)
                }
                "--jobs" => out.jobs = Some(num(take_value(args, &mut i, "--jobs")?, "--jobs")?),
                "--train-jobs" => {
                    out.train_jobs = Some(num(
                        take_value(args, &mut i, "--train-jobs")?,
                        "--train-jobs",
                    )?)
                }
                "--trace" => out.trace = Some(take_value(args, &mut i, "--trace")?.to_string()),
                "--trace-chrome" => {
                    out.trace_chrome = Some(take_value(args, &mut i, "--trace-chrome")?.to_string())
                }
                "--flame" => out.flame = Some(take_value(args, &mut i, "--flame")?.to_string()),
                "--metrics" => {
                    out.metrics = Some(take_value(args, &mut i, "--metrics")?.to_string())
                }
                "--metrics-flush-secs" => {
                    out.metrics_flush_secs = Some(num(
                        take_value(args, &mut i, "--metrics-flush-secs")?,
                        "--metrics-flush-secs",
                    )?)
                }
                "--obs-listen" => {
                    out.obs_listen = Some(take_value(args, &mut i, "--obs-listen")?.to_string())
                }
                "--checkpoint-dir" => {
                    out.checkpoint_dir =
                        Some(take_value(args, &mut i, "--checkpoint-dir")?.to_string())
                }
                "--resume" => out.resume = Some(take_value(args, &mut i, "--resume")?.to_string()),
                "--attacks" => {
                    out.attacks = Some(take_value(args, &mut i, "--attacks")?.to_string())
                }
                "--attack-strength" => {
                    let s: f64 = num(
                        take_value(args, &mut i, "--attack-strength")?,
                        "--attack-strength",
                    )?;
                    if !(0.0..=1.0).contains(&s) {
                        return Err(format!("--attack-strength: {s} outside [0, 1]"));
                    }
                    out.attack_strength = Some(s);
                }
                "--no-sanitize" => out.no_sanitize = true,
                "--quantized" => out.quantized = true,
                "--verbose" | "-v" => out.verbosity = Some(fieldswap_obs::Verbosity::Verbose),
                "--quiet" | "-q" => out.verbosity = Some(fieldswap_obs::Verbosity::Quiet),
                other => return Err(format!("unknown flag {other}")),
            }
            i += 1;
        }
        if out.metrics_flush_secs.is_some() && out.metrics.is_none() {
            return Err(
                "--metrics-flush-secs needs --metrics PATH (it controls how often that file is \
                 rewritten)"
                    .to_string(),
            );
        }
        if out.checkpoint_dir.is_some() && out.resume.is_some() {
            return Err(
                "--checkpoint-dir and --resume are mutually exclusive (--resume already writes \
                 new cells to the directory it resumes from)"
                    .to_string(),
            );
        }
        Ok(out)
    }

    /// Harness options for the chosen protocol, with any command-line
    /// overrides applied.
    pub fn harness_options(&self) -> HarnessOptions {
        let mut o = if self.full {
            HarnessOptions::full()
        } else {
            HarnessOptions::quick()
        };
        o.seed = self.seed;
        if let Some(s) = self.samples {
            o.n_samples = s;
        }
        if let Some(t) = self.trials {
            o.n_trials = t;
        }
        if let Some(c) = self.test_cap {
            o.test_cap = c;
        }
        if let Some(j) = self.jobs {
            o.jobs = j;
        }
        if let Some(j) = self.train_jobs {
            o.train_jobs = j;
        }
        if self.no_sanitize {
            o.sanitize = false;
        }
        o.quantized = self.quantized;
        o
    }

    /// The attack suite selected by `--attacks`/`--attack-strength`
    /// (default: the full taxonomy at strength 0.5). Errors abort with a
    /// usage message, matching the other flag validators.
    pub fn attack_suite(&self) -> Vec<fieldswap_eval::AttackSpec> {
        let strength = self.attack_strength.unwrap_or(0.5);
        fieldswap_eval::AttackSpec::parse_list(self.attacks.as_deref().unwrap_or("all"), strength)
            .unwrap_or_else(|msg| usage(&format!("--attacks: {msg}")))
    }

    /// Builds the harness for these options and attaches the cell cache
    /// when `--checkpoint-dir` or `--resume` was given. A missing
    /// `--resume` directory is a hard error: the user pointed at the
    /// wrong path, and silently starting over would waste the very hours
    /// the flag exists to save.
    pub fn build_harness(&self) -> Harness {
        let opts = self.harness_options();
        let mut h = Harness::new(opts);
        let cache = if let Some(dir) = &self.resume {
            Some(CellCache::open(dir, &opts).unwrap_or_else(|e| fail(&format!("--resume: {e}"))))
        } else {
            self.checkpoint_dir.as_ref().map(|dir| {
                CellCache::create(dir, &opts)
                    .unwrap_or_else(|e| fail(&format!("--checkpoint-dir: {e}")))
            })
        };
        if let Some(cache) = cache {
            fieldswap_obs::info!("checkpointing cells to {}", cache.dir().display());
            h.attach_checkpoint(cache);
        }
        h
    }

    /// The domains to run: the filter, or all five evaluation domains.
    pub fn domains(&self) -> Vec<Domain> {
        match self.domain {
            Some(d) => vec![d],
            None => Domain::EVAL.to_vec(),
        }
    }

    /// Writes `value` to the `--json` path when given.
    pub fn maybe_write_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            let s = serde_json::to_string_pretty(value).expect("serializable");
            std::fs::write(path, s).unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
            fieldswap_obs::info!("wrote {path}");
        }
    }

    /// Flushes observability outputs: the JSONL trace plus a span-tree
    /// summary on stderr (`--trace`), the Chrome trace-event export
    /// (`--trace-chrome`), the collapsed-stack flamegraph (`--flame`),
    /// and the Prometheus metrics dump (`--metrics`). Call once at the
    /// end of `main`; a no-op when no obs flag was given.
    pub fn finish(&self) {
        finish_obs(self.trace.as_deref(), self.metrics.as_deref());
        let collector = fieldswap_obs::global();
        if let Some(path) = &self.trace_chrome {
            collector
                .write_chrome_trace(path)
                .unwrap_or_else(|e| fail(&format!("write chrome trace {path}: {e}")));
            fieldswap_obs::info!("wrote chrome trace {path} (load in Perfetto)");
        }
        if let Some(path) = &self.flame {
            collector
                .write_collapsed(path)
                .unwrap_or_else(|e| fail(&format!("write flamegraph {path}: {e}")));
            fieldswap_obs::info!("wrote collapsed stacks {path}");
        }
    }
}

/// Writes the JSONL trace + span-tree summary and/or the Prometheus
/// metrics dump. Shared by [`BinArgs::finish`] and the binaries that
/// parse their own flags.
pub fn finish_obs(trace: Option<&str>, metrics: Option<&str>) {
    if let Some(path) = trace {
        let collector = fieldswap_obs::global();
        collector
            .write_jsonl(path)
            .unwrap_or_else(|e| fail(&format!("write trace {path}: {e}")));
        eprint!("{}", collector.span_summary());
        fieldswap_obs::info!("wrote trace {path} ({} events)", collector.events_len());
    }
    if let Some(path) = metrics {
        fieldswap_obs::global()
            .write_prometheus(path)
            .unwrap_or_else(|e| fail(&format!("write metrics {path}: {e}")));
        fieldswap_obs::info!("wrote metrics {path}");
    }
}

/// Prints `msg` as an error through the obs logger and exits with status
/// 1 — the one failure path shared by every binary, so scripts can rely
/// on a uniform exit code and stderr shape for both usage mistakes and
/// runtime errors.
pub fn fail(msg: &str) -> ! {
    fieldswap_obs::error!("{msg}");
    std::process::exit(1)
}

fn parse_domain(name: &str) -> Option<Domain> {
    match name.to_lowercase().as_str() {
        "fara" => Some(Domain::Fara),
        "fcc" | "fcc_forms" | "fccforms" => Some(Domain::FccForms),
        "brokerage" => Some(Domain::Brokerage),
        "earnings" => Some(Domain::Earnings),
        "loan" | "loan_payments" | "loanpayments" => Some(Domain::LoanPayments),
        "invoices" => Some(Domain::Invoices),
        _ => None,
    }
}

/// Prints `msg` plus the shared usage line to stderr and exits 1.
pub fn usage(msg: &str) -> ! {
    fieldswap_obs::error!("{msg}");
    eprintln!("usage: <bin> [--full|--quick] [--domain fara|fcc|brokerage|earnings|loan] [--seed N] [--json PATH] [--samples N] [--trials N] [--testcap N] [--jobs N] [--train-jobs N] [--trace PATH] [--trace-chrome PATH] [--flame PATH] [--metrics PATH] [--metrics-flush-secs N] [--obs-listen ADDR] [--checkpoint-dir PATH] [--resume PATH] [--attacks LIST] [--attack-strength X] [--no-sanitize] [--quantized] [--verbose|-v] [--quiet|-q]");
    std::process::exit(1)
}

/// Fixed-width table printer.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// Creates a printer and prints the header row + rule.
    pub fn new(headers: &[(&str, usize)]) -> Self {
        let widths: Vec<usize> = headers.iter().map(|(_, w)| *w).collect();
        let p = Self { widths };
        p.row(
            &headers
                .iter()
                .map(|(h, _)| h.to_string())
                .collect::<Vec<_>>(),
        );
        println!(
            "{}",
            "-".repeat(p.widths.iter().sum::<usize>() + 2 * p.widths.len())
        );
        p
    }

    /// Prints one row.
    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            let w = self.widths.get(i).copied().unwrap_or(12);
            line.push_str(&format!("{c:<w$}  "));
        }
        println!("{}", line.trim_end());
    }
}

/// Paper-reported reference values, transcribed from the evaluation
/// section so binaries can print paper-vs-measured side by side.
pub mod paper {
    /// Table III: (domain, size, field-to-field, type-to-type,
    /// human-expert or None).
    pub const TABLE3: [(&str, usize, usize, usize, Option<usize>); 15] = [
        ("FARA", 10, 2, 5, None),
        ("FARA", 50, 176, 374, None),
        ("FARA", 100, 592, 1616, None),
        ("FCC Forms", 10, 246, 842, None),
        ("FCC Forms", 50, 1663, 5755, None),
        ("FCC Forms", 100, 3310, 11346, None),
        ("Brokerage Statements", 10, 256, 1266, None),
        ("Brokerage Statements", 50, 1486, 7994, None),
        ("Brokerage Statements", 100, 2917, 16590, None),
        ("Loan Payments", 10, 435, 2378, Some(1136)),
        ("Loan Payments", 50, 2699, 18118, Some(5933)),
        ("Loan Payments", 100, 6083, 38081, Some(11682)),
        ("Earnings", 10, 197, 1542, Some(366)),
        ("Earnings", 50, 1345, 11643, Some(1862)),
        ("Earnings", 100, 2717, 26001, Some(3707)),
    ];

    /// Table IV (Earnings @ 50 docs): field, document frequency,
    /// F1 automatic, F1 human expert.
    pub const TABLE4: [(&str, f64, f64, f64); 4] = [
        ("year_to_date.sales_pay", 0.039, 27.91, 56.27),
        ("current.sales_pay", 0.0285, 17.97, 46.23),
        ("year_to_date.pto_pay", 0.159, 50.30, 66.78),
        ("current.pto_pay", 0.095, 14.36, 28.18),
    ];

    /// Headline macro-F1 improvement ranges from Section IV-C1, per
    /// domain: (domain, min gain, max gain) in F1 points.
    pub const FIG4_GAINS: [(&str, f64, f64); 3] = [
        ("FCC Forms", 1.0, 4.0),
        ("Brokerage Statements", 2.0, 5.0),
        ("Earnings", 4.0, 11.0),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn try_parse_full_combo() {
        let a = BinArgs::try_parse_from(&argv(&[
            "--full",
            "--domain",
            "earnings",
            "--seed",
            "7",
            "--jobs",
            "2",
            "--train-jobs",
            "4",
            "--json",
            "out.json",
            "--checkpoint-dir",
            "ckpt",
            "--verbose",
        ]))
        .unwrap();
        assert!(a.full);
        assert_eq!(a.domain, Some(Domain::Earnings));
        assert_eq!(a.seed, 7);
        assert_eq!(a.jobs, Some(2));
        assert_eq!(a.train_jobs, Some(4));
        assert_eq!(a.json.as_deref(), Some("out.json"));
        assert_eq!(a.checkpoint_dir.as_deref(), Some("ckpt"));
        assert_eq!(a.verbosity, Some(fieldswap_obs::Verbosity::Verbose));
        assert_eq!(a.harness_options().seed, 7);
        assert_eq!(a.harness_options().jobs, 2);
        assert_eq!(a.harness_options().train_jobs, 4);

        // Absent, `--train-jobs` inherits the protocol default (serial).
        let d = BinArgs::try_parse_from(&argv(&[])).unwrap();
        assert_eq!(d.train_jobs, None);
        assert_eq!(d.harness_options().train_jobs, 1);
    }

    #[test]
    fn flag_like_value_is_rejected_not_swallowed() {
        // The old parser took `--seed` as the JSON path and dropped the
        // seed override entirely.
        let err = BinArgs::try_parse_from(&argv(&["--json", "--seed", "7"])).unwrap_err();
        assert!(err.contains("--json") && err.contains("--seed"), "{err}");
        for flag in [
            "--domain",
            "--seed",
            "--json",
            "--samples",
            "--trials",
            "--testcap",
            "--jobs",
            "--train-jobs",
            "--trace",
            "--metrics",
            "--checkpoint-dir",
            "--resume",
            "--attacks",
            "--attack-strength",
        ] {
            let err = BinArgs::try_parse_from(&argv(&[flag, "--full"])).unwrap_err();
            assert!(err.contains(flag), "{flag}: {err}");
        }
    }

    #[test]
    fn attack_flags_parse_and_validate() {
        let a = BinArgs::try_parse_from(&argv(&[
            "--attacks",
            "token-drop,box-jitter",
            "--attack-strength",
            "0.25",
            "--no-sanitize",
        ]))
        .unwrap();
        assert_eq!(a.attacks.as_deref(), Some("token-drop,box-jitter"));
        assert_eq!(a.attack_strength, Some(0.25));
        assert!(a.no_sanitize);
        assert!(!a.harness_options().sanitize);
        let suite = a.attack_suite();
        assert_eq!(suite.len(), 2);
        assert!((suite[0].strength - 0.25).abs() < 1e-12);

        // Default: sanitization on, full taxonomy at 0.5.
        let d = BinArgs::try_parse_from(&argv(&[])).unwrap();
        assert!(d.harness_options().sanitize);
        assert_eq!(d.attack_suite().len(), 6);
        assert!((d.attack_suite()[0].strength - 0.5).abs() < 1e-12);

        let err = BinArgs::try_parse_from(&argv(&["--attack-strength", "1.5"])).unwrap_err();
        assert!(err.contains("outside"), "{err}");
    }

    #[test]
    fn quantized_flag_threads_into_options() {
        let a = BinArgs::try_parse_from(&argv(&["--quantized"])).unwrap();
        assert!(a.quantized);
        assert!(a.harness_options().quantized);
        let d = BinArgs::try_parse_from(&argv(&[])).unwrap();
        assert!(!d.quantized);
        assert!(!d.harness_options().quantized);
    }

    #[test]
    fn obs_v2_flags_parse() {
        let a = BinArgs::try_parse_from(&argv(&[
            "--trace-chrome",
            "t.json",
            "--flame",
            "t.folded",
            "--metrics",
            "m.prom",
            "--metrics-flush-secs",
            "5",
            "--obs-listen",
            "127.0.0.1:9464",
        ]))
        .unwrap();
        assert_eq!(a.trace_chrome.as_deref(), Some("t.json"));
        assert_eq!(a.flame.as_deref(), Some("t.folded"));
        assert_eq!(a.metrics_flush_secs, Some(5));
        assert_eq!(a.obs_listen.as_deref(), Some("127.0.0.1:9464"));

        for flag in [
            "--trace-chrome",
            "--flame",
            "--obs-listen",
            "--metrics-flush-secs",
        ] {
            let err = BinArgs::try_parse_from(&argv(&[flag, "--full"])).unwrap_err();
            assert!(err.contains(flag), "{flag}: {err}");
        }
    }

    #[test]
    fn metrics_flush_requires_metrics_path() {
        let err = BinArgs::try_parse_from(&argv(&["--metrics-flush-secs", "5"])).unwrap_err();
        assert!(err.contains("--metrics"), "{err}");
        assert!(BinArgs::try_parse_from(&argv(&[
            "--metrics",
            "m.prom",
            "--metrics-flush-secs",
            "5"
        ]))
        .is_ok());
    }

    #[test]
    fn missing_trailing_value_is_an_error() {
        let err = BinArgs::try_parse_from(&argv(&["--seed"])).unwrap_err();
        assert!(err.contains("--seed") && err.contains("value"), "{err}");
    }

    #[test]
    fn bad_numeric_and_unknown_flag_are_errors() {
        assert!(BinArgs::try_parse_from(&argv(&["--seed", "xyz"])).is_err());
        assert!(BinArgs::try_parse_from(&argv(&["--domain", "narnia"])).is_err());
        let err = BinArgs::try_parse_from(&argv(&["--frobnicate"])).unwrap_err();
        assert!(err.contains("--frobnicate"), "{err}");
    }

    #[test]
    fn checkpoint_and_resume_conflict() {
        let err = BinArgs::try_parse_from(&argv(&["--checkpoint-dir", "a", "--resume", "b"]))
            .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        assert!(BinArgs::try_parse_from(&argv(&["--resume", "b"])).is_ok());
    }

    #[test]
    fn non_flag_dash_value_is_accepted() {
        // Only `--`-prefixed tokens are rejected in value position; a
        // file literally named `-odd.json` still works.
        let a = BinArgs::try_parse_from(&argv(&["--json", "-odd.json"])).unwrap();
        assert_eq!(a.json.as_deref(), Some("-odd.json"));
    }

    #[test]
    fn parse_domain_aliases() {
        assert_eq!(parse_domain("earnings"), Some(Domain::Earnings));
        assert_eq!(parse_domain("LOAN"), Some(Domain::LoanPayments));
        assert_eq!(parse_domain("fcc_forms"), Some(Domain::FccForms));
        assert_eq!(parse_domain("nope"), None);
    }

    #[test]
    fn paper_tables_well_formed() {
        assert_eq!(paper::TABLE3.len(), 15);
        // t2t always exceeds f2f in the paper's Table III.
        for (_, _, f2f, t2t, _) in paper::TABLE3 {
            assert!(t2t > f2f);
        }
        for (_, freq, auto, expert) in paper::TABLE4 {
            assert!(freq < 0.2);
            assert!(expert > auto);
        }
    }
}
