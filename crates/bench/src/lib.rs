//! # fieldswap-bench
//!
//! Benchmarks and the table/figure regeneration binaries for the
//! FieldSwap paper. Each binary under `src/bin/` reproduces one table or
//! figure of the evaluation section (see `DESIGN.md` for the experiment
//! index) and prints paper-reported values next to measured ones.
//!
//! Binaries accept:
//! * `--full` — the paper's full 3x3 protocol on full test sets (slow);
//!   the default is the reduced quick protocol.
//! * `--domain <name>` — restrict to one domain (`fara`, `fcc`,
//!   `brokerage`, `earnings`, `loan`).
//! * `--seed <n>` — override the master seed.
//! * `--json <path>` — also dump results as JSON.
//! * `--jobs <n>` — worker threads for the experiment grid (0 = all
//!   cores, the default; 1 = serial). Results are bit-identical for
//!   every setting.
//! * `--trace <path>` — record a JSONL span/log trace, print a span-tree
//!   summary to stderr at exit.
//! * `--metrics <path>` — dump Prometheus-style counters/gauges/
//!   histograms at exit.
//! * `--verbose`/`-v`, `--quiet`/`-q` — logger verbosity.
//!
//! Tracing and metrics are **inert for correctness**: stdout tables and
//! `--json` dumps are byte-identical with or without them (enforced by
//! `tests/trace_identity.rs` and the CI diff job).

use fieldswap_datagen::Domain;
use fieldswap_eval::HarnessOptions;

/// Command-line options shared by the regeneration binaries.
#[derive(Debug, Clone)]
pub struct BinArgs {
    /// Paper protocol (3x3, full test sets) instead of the quick one.
    pub full: bool,
    /// Optional domain filter.
    pub domain: Option<Domain>,
    /// Master seed.
    pub seed: u64,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Override: document samples per point.
    pub samples: Option<usize>,
    /// Override: training trials per sample.
    pub trials: Option<usize>,
    /// Override: test-set cap (0 = full).
    pub test_cap: Option<usize>,
    /// Override: worker threads (0 = all cores, 1 = serial).
    pub jobs: Option<usize>,
    /// JSONL trace output path (`--trace`); enables span recording.
    pub trace: Option<String>,
    /// Prometheus-style metrics output path (`--metrics`).
    pub metrics: Option<String>,
}

impl BinArgs {
    /// Parses `std::env::args()`. Unknown flags abort with a usage
    /// message.
    pub fn parse() -> Self {
        let mut out = Self {
            full: false,
            domain: None,
            seed: 0x5EED,
            json: None,
            samples: None,
            trials: None,
            test_cap: None,
            jobs: None,
            trace: None,
            metrics: None,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => out.full = true,
                "--quick" => out.full = false,
                "--domain" => {
                    i += 1;
                    let name = args.get(i).unwrap_or_else(|| usage("missing domain"));
                    out.domain = Some(parse_domain(name).unwrap_or_else(|| usage("bad domain")));
                }
                "--seed" => {
                    i += 1;
                    let v = args.get(i).unwrap_or_else(|| usage("missing seed"));
                    out.seed = v.parse().unwrap_or_else(|_| usage("bad seed"));
                }
                "--json" => {
                    i += 1;
                    out.json = Some(args.get(i).unwrap_or_else(|| usage("missing path")).clone());
                }
                "--samples" => {
                    i += 1;
                    let v = args.get(i).unwrap_or_else(|| usage("missing samples"));
                    out.samples = Some(v.parse().unwrap_or_else(|_| usage("bad samples")));
                }
                "--trials" => {
                    i += 1;
                    let v = args.get(i).unwrap_or_else(|| usage("missing trials"));
                    out.trials = Some(v.parse().unwrap_or_else(|_| usage("bad trials")));
                }
                "--testcap" => {
                    i += 1;
                    let v = args.get(i).unwrap_or_else(|| usage("missing testcap"));
                    out.test_cap = Some(v.parse().unwrap_or_else(|_| usage("bad testcap")));
                }
                "--jobs" => {
                    i += 1;
                    let v = args.get(i).unwrap_or_else(|| usage("missing jobs"));
                    out.jobs = Some(v.parse().unwrap_or_else(|_| usage("bad jobs")));
                }
                "--trace" => {
                    i += 1;
                    out.trace = Some(args.get(i).unwrap_or_else(|| usage("missing path")).clone());
                    fieldswap_obs::enable_tracing();
                }
                "--metrics" => {
                    i += 1;
                    out.metrics =
                        Some(args.get(i).unwrap_or_else(|| usage("missing path")).clone());
                    fieldswap_obs::enable_metrics();
                }
                "--verbose" | "-v" => {
                    fieldswap_obs::set_verbosity(fieldswap_obs::Verbosity::Verbose)
                }
                "--quiet" | "-q" => fieldswap_obs::set_verbosity(fieldswap_obs::Verbosity::Quiet),
                other => usage(&format!("unknown flag {other}")),
            }
            i += 1;
        }
        out
    }

    /// Harness options for the chosen protocol, with any command-line
    /// overrides applied.
    pub fn harness_options(&self) -> HarnessOptions {
        let mut o = if self.full {
            HarnessOptions::full()
        } else {
            HarnessOptions::quick()
        };
        o.seed = self.seed;
        if let Some(s) = self.samples {
            o.n_samples = s;
        }
        if let Some(t) = self.trials {
            o.n_trials = t;
        }
        if let Some(c) = self.test_cap {
            o.test_cap = c;
        }
        if let Some(j) = self.jobs {
            o.jobs = j;
        }
        o
    }

    /// The domains to run: the filter, or all five evaluation domains.
    pub fn domains(&self) -> Vec<Domain> {
        match self.domain {
            Some(d) => vec![d],
            None => Domain::EVAL.to_vec(),
        }
    }

    /// Writes `value` to the `--json` path when given.
    pub fn maybe_write_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            let s = serde_json::to_string_pretty(value).expect("serializable");
            std::fs::write(path, s).unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
            fieldswap_obs::info!("wrote {path}");
        }
    }

    /// Flushes observability outputs: the JSONL trace plus a span-tree
    /// summary on stderr (`--trace`), and the Prometheus metrics dump
    /// (`--metrics`). Call once at the end of `main`; a no-op when
    /// neither flag was given.
    pub fn finish(&self) {
        finish_obs(self.trace.as_deref(), self.metrics.as_deref());
    }
}

/// Writes the JSONL trace + span-tree summary and/or the Prometheus
/// metrics dump. Shared by [`BinArgs::finish`] and the binaries that
/// parse their own flags.
pub fn finish_obs(trace: Option<&str>, metrics: Option<&str>) {
    if let Some(path) = trace {
        let collector = fieldswap_obs::global();
        collector
            .write_jsonl(path)
            .unwrap_or_else(|e| fail(&format!("write trace {path}: {e}")));
        eprint!("{}", collector.span_summary());
        fieldswap_obs::info!("wrote trace {path} ({} events)", collector.events_len());
    }
    if let Some(path) = metrics {
        fieldswap_obs::global()
            .write_prometheus(path)
            .unwrap_or_else(|e| fail(&format!("write metrics {path}: {e}")));
        fieldswap_obs::info!("wrote metrics {path}");
    }
}

/// Prints `msg` as an error through the obs logger and exits with status
/// 1 — the one failure path shared by every binary, so scripts can rely
/// on a uniform exit code and stderr shape for both usage mistakes and
/// runtime errors.
pub fn fail(msg: &str) -> ! {
    fieldswap_obs::error!("{msg}");
    std::process::exit(1)
}

fn parse_domain(name: &str) -> Option<Domain> {
    match name.to_lowercase().as_str() {
        "fara" => Some(Domain::Fara),
        "fcc" | "fcc_forms" | "fccforms" => Some(Domain::FccForms),
        "brokerage" => Some(Domain::Brokerage),
        "earnings" => Some(Domain::Earnings),
        "loan" | "loan_payments" | "loanpayments" => Some(Domain::LoanPayments),
        "invoices" => Some(Domain::Invoices),
        _ => None,
    }
}

/// Prints `msg` plus the shared usage line to stderr and exits 1.
pub fn usage(msg: &str) -> ! {
    fieldswap_obs::error!("{msg}");
    eprintln!("usage: <bin> [--full|--quick] [--domain fara|fcc|brokerage|earnings|loan] [--seed N] [--json PATH] [--samples N] [--trials N] [--testcap N] [--jobs N] [--trace PATH] [--metrics PATH] [--verbose|-v] [--quiet|-q]");
    std::process::exit(1)
}

/// Fixed-width table printer.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// Creates a printer and prints the header row + rule.
    pub fn new(headers: &[(&str, usize)]) -> Self {
        let widths: Vec<usize> = headers.iter().map(|(_, w)| *w).collect();
        let p = Self { widths };
        p.row(
            &headers
                .iter()
                .map(|(h, _)| h.to_string())
                .collect::<Vec<_>>(),
        );
        println!(
            "{}",
            "-".repeat(p.widths.iter().sum::<usize>() + 2 * p.widths.len())
        );
        p
    }

    /// Prints one row.
    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            let w = self.widths.get(i).copied().unwrap_or(12);
            line.push_str(&format!("{c:<w$}  "));
        }
        println!("{}", line.trim_end());
    }
}

/// Paper-reported reference values, transcribed from the evaluation
/// section so binaries can print paper-vs-measured side by side.
pub mod paper {
    /// Table III: (domain, size, field-to-field, type-to-type,
    /// human-expert or None).
    pub const TABLE3: [(&str, usize, usize, usize, Option<usize>); 15] = [
        ("FARA", 10, 2, 5, None),
        ("FARA", 50, 176, 374, None),
        ("FARA", 100, 592, 1616, None),
        ("FCC Forms", 10, 246, 842, None),
        ("FCC Forms", 50, 1663, 5755, None),
        ("FCC Forms", 100, 3310, 11346, None),
        ("Brokerage Statements", 10, 256, 1266, None),
        ("Brokerage Statements", 50, 1486, 7994, None),
        ("Brokerage Statements", 100, 2917, 16590, None),
        ("Loan Payments", 10, 435, 2378, Some(1136)),
        ("Loan Payments", 50, 2699, 18118, Some(5933)),
        ("Loan Payments", 100, 6083, 38081, Some(11682)),
        ("Earnings", 10, 197, 1542, Some(366)),
        ("Earnings", 50, 1345, 11643, Some(1862)),
        ("Earnings", 100, 2717, 26001, Some(3707)),
    ];

    /// Table IV (Earnings @ 50 docs): field, document frequency,
    /// F1 automatic, F1 human expert.
    pub const TABLE4: [(&str, f64, f64, f64); 4] = [
        ("year_to_date.sales_pay", 0.039, 27.91, 56.27),
        ("current.sales_pay", 0.0285, 17.97, 46.23),
        ("year_to_date.pto_pay", 0.159, 50.30, 66.78),
        ("current.pto_pay", 0.095, 14.36, 28.18),
    ];

    /// Headline macro-F1 improvement ranges from Section IV-C1, per
    /// domain: (domain, min gain, max gain) in F1 points.
    pub const FIG4_GAINS: [(&str, f64, f64); 3] = [
        ("FCC Forms", 1.0, 4.0),
        ("Brokerage Statements", 2.0, 5.0),
        ("Earnings", 4.0, 11.0),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_domain_aliases() {
        assert_eq!(parse_domain("earnings"), Some(Domain::Earnings));
        assert_eq!(parse_domain("LOAN"), Some(Domain::LoanPayments));
        assert_eq!(parse_domain("fcc_forms"), Some(Domain::FccForms));
        assert_eq!(parse_domain("nope"), None);
    }

    #[test]
    fn paper_tables_well_formed() {
        assert_eq!(paper::TABLE3.len(), 15);
        // t2t always exceeds f2f in the paper's Table III.
        for (_, _, f2f, t2t, _) in paper::TABLE3 {
            assert!(t2t > f2f);
        }
        for (_, freq, auto, expert) in paper::TABLE4 {
            assert!(freq < 0.2);
            assert!(expert > auto);
        }
    }
}
