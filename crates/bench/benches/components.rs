//! Component micro-benchmarks: the hot paths of every subsystem.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fieldswap_core::{augment_document, find_phrase_matches, FieldSwapConfig, PairStrategy};
use fieldswap_datagen::{generate, Domain};
use fieldswap_extract::{Extractor, Lexicon, TrainConfig};
use fieldswap_keyphrase::{ImportanceModel, ModelConfig};
use fieldswap_nn::sparsemax;
use fieldswap_ocr::LineDetector;

fn bench_geometry(c: &mut Criterion) {
    use fieldswap_docmodel::{off_axis_distance, Point};
    let pts: Vec<Point> = (0..256)
        .map(|i| Point::new((i * 37 % 1000) as f32, (i * 91 % 1400) as f32))
        .collect();
    c.bench_function("geometry/off_axis_256", |b| {
        b.iter(|| {
            let anchor = Point::new(500.0, 700.0);
            let mut sum = 0.0f32;
            for p in &pts {
                sum += off_axis_distance(anchor, *p);
            }
            black_box(sum)
        })
    });
}

fn bench_sparsemax(c: &mut Criterion) {
    let scores: Vec<f32> = (0..100)
        .map(|i| ((i * 37 % 100) as f32) / 50.0 - 1.0)
        .collect();
    c.bench_function("nn/sparsemax_100", |b| {
        b.iter(|| black_box(sparsemax(&scores)))
    });
}

fn bench_line_detection(c: &mut Criterion) {
    let corpus = generate(Domain::LoanPayments, 1, 4);
    let doc = corpus.documents[0].clone();
    let det = LineDetector::default();
    c.bench_function("ocr/line_detection", |b| {
        b.iter(|| black_box(det.detect(&doc)))
    });
}

fn bench_datagen(c: &mut Criterion) {
    c.bench_function("datagen/earnings_doc", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(generate(Domain::Earnings, i, 1))
        })
    });
}

fn oracle_config(domain: Domain, schema: &fieldswap_docmodel::Schema) -> FieldSwapConfig {
    let mut config = FieldSwapConfig::new(schema.len());
    for (name, phrases) in domain.generator().phrase_bank() {
        let id = schema.field_id(&name).unwrap();
        config.set_phrases(id, phrases);
    }
    config.set_pairs(PairStrategy::TypeToType.build(schema, &config));
    config
}

fn bench_phrase_matching(c: &mut Criterion) {
    let corpus = generate(Domain::Earnings, 2, 1);
    let doc = &corpus.documents[0];
    c.bench_function("core/phrase_match", |b| {
        b.iter(|| black_box(find_phrase_matches(doc, "base salary")))
    });
}

fn bench_augment(c: &mut Criterion) {
    let corpus = generate(Domain::Earnings, 3, 1);
    let config = oracle_config(Domain::Earnings, &corpus.schema);
    let doc = &corpus.documents[0];
    c.bench_function("core/augment_document_t2t", |b| {
        b.iter(|| black_box(augment_document(doc, &config)))
    });
}

fn bench_importance(c: &mut Criterion) {
    let corpus = generate(Domain::Invoices, 4, 20);
    let mut model = ImportanceModel::new(
        ModelConfig {
            neighbors: 24,
            epochs: 1,
            ..ModelConfig::tiny()
        },
        corpus.schema.len(),
        1,
    );
    model.train(&corpus, 1);
    let doc = corpus
        .documents
        .iter()
        .find(|d| !d.annotations.is_empty())
        .unwrap();
    let a = doc.annotations[0];
    c.bench_function("keyphrase/neighbor_importance", |b| {
        b.iter(|| black_box(model.neighbor_importance(doc, a.start, a.end)))
    });
}

fn bench_extractor(c: &mut Criterion) {
    let train = generate(Domain::Earnings, 5, 20);
    let ex = Extractor::train_on(
        &train.schema,
        Lexicon::empty(),
        &train,
        &[],
        &TrainConfig {
            epochs: 2,
            synth_ratio: 0.0,
            seed: 1,
            ..TrainConfig::default()
        },
    );
    let doc = &train.documents[0];
    c.bench_function("extract/predict_doc", |b| {
        b.iter(|| black_box(ex.predict(doc)))
    });

    c.bench_function("extract/train_10docs_1epoch", |b| {
        let small =
            fieldswap_docmodel::Corpus::new(train.schema.clone(), train.documents[..10].to_vec());
        b.iter(|| {
            black_box(Extractor::train_on(
                &small.schema,
                Lexicon::empty(),
                &small,
                &[],
                &TrainConfig {
                    epochs: 1,
                    synth_ratio: 0.0,
                    seed: 2,
                    ..TrainConfig::default()
                },
            ))
        })
    });
}

criterion_group! {
    name = benches;
    // Training/augmentation iterations are expensive; 10 samples keeps
    // `cargo bench` to minutes while the micro ops still get stable
    // estimates.
    config = Criterion::default().sample_size(10);
    targets = bench_geometry,
    bench_sparsemax,
    bench_line_detection,
    bench_datagen,
    bench_phrase_matching,
    bench_augment,
    bench_importance,
    bench_extractor
}
criterion_main!(benches);
