//! Reduced-scale regeneration benches: one Criterion group per paper
//! table and figure. Each bench runs the same code path as the
//! corresponding `src/bin/` regeneration binary at a miniature scale, so
//! `cargo bench` both times the harness and smoke-tests every experiment.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fieldswap_datagen::{generate, generate_paper_splits, Domain};
use fieldswap_eval::{Arm, BoxStats, Harness, HarnessOptions};

fn bench_opts(seed: u64) -> HarnessOptions {
    HarnessOptions {
        n_samples: 1,
        n_trials: 1,
        pretrain_docs: 20,
        lexicon_docs: 30,
        neighbors: 8,
        test_cap: 20,
        epochs: 2,
        synth_ratio: 1.0,
        synthetic_cap: 100,
        seed,
        jobs: 1,
        train_jobs: 1,
        sanitize: true,
        quantized: false,
    }
}

fn table1(c: &mut Criterion) {
    c.bench_function("tables/table1_dataset_stats", |b| {
        b.iter(|| {
            let (pool, test) = generate_paper_splits(Domain::Fara, 1);
            black_box((pool.schema.len(), pool.len(), test.len()))
        })
    });
}

fn table2(c: &mut Criterion) {
    c.bench_function("tables/table2_field_types", |b| {
        b.iter(|| {
            let mut hists = Vec::new();
            for d in Domain::EVAL {
                hists.push(d.generator().schema().type_histogram());
            }
            black_box(hists)
        })
    });
}

fn table3(c: &mut Criterion) {
    c.bench_function("tables/table3_synthetic_counts", |b| {
        let h = Harness::new(bench_opts(3));
        b.iter(|| {
            let f2f = h.count_synthetics(Domain::Earnings, 5, Arm::AutoFieldToField);
            let t2t = h.count_synthetics(Domain::Earnings, 5, Arm::AutoTypeToType);
            black_box((f2f, t2t))
        })
    });
}

fn table4(c: &mut Criterion) {
    c.bench_function("tables/table4_rare_fields", |b| {
        let h = Harness::new(bench_opts(4));
        b.iter(|| {
            let auto = h.run_single(Domain::Earnings, 5, Arm::AutoFieldToField, 0, 0);
            let expert = h.run_single(Domain::Earnings, 5, Arm::HumanExpert, 0, 0);
            black_box((auto.per_field_f1, expert.per_field_f1))
        })
    });
}

fn fig4(c: &mut Criterion) {
    c.bench_function("figures/fig4_macro_point", |b| {
        let h = Harness::new(bench_opts(5));
        b.iter(|| {
            let base = h.run_single(Domain::Fara, 5, Arm::Baseline, 0, 0);
            let swap = h.run_single(Domain::Fara, 5, Arm::AutoTypeToType, 0, 0);
            black_box(swap.macro_f1 - base.macro_f1)
        })
    });
}

fn fig5(c: &mut Criterion) {
    c.bench_function("figures/fig5_micro_point", |b| {
        let h = Harness::new(bench_opts(6));
        b.iter(|| {
            let base = h.run_single(Domain::Fara, 5, Arm::Baseline, 0, 0);
            let swap = h.run_single(Domain::Fara, 5, Arm::AutoFieldToField, 0, 0);
            black_box(swap.micro_f1 - base.micro_f1)
        })
    });
}

fn fig6(c: &mut Criterion) {
    c.bench_function("figures/fig6_boxstats", |b| {
        let h = Harness::new(bench_opts(7));
        let base = h.run_single(Domain::Earnings, 5, Arm::Baseline, 0, 0);
        let swap = h.run_single(Domain::Earnings, 5, Arm::AutoTypeToType, 0, 0);
        b.iter(|| {
            let deltas: Vec<f64> = base
                .per_field_f1
                .iter()
                .zip(&swap.per_field_f1)
                .filter_map(|(b, s)| Some(s.as_ref()? - b.as_ref()?))
                .collect();
            black_box(BoxStats::compute(&deltas))
        })
    });
}

fn corpus_generation(c: &mut Criterion) {
    c.bench_function("tables/corpus_generation_100docs", |b| {
        let mut i = 0;
        b.iter(|| {
            i += 1;
            black_box(generate(Domain::Brokerage, i, 100).len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = table1, table2, table3, table4, fig4, fig5, fig6, corpus_generation
}
criterion_main!(benches);
