//! Ablation benches for the design choices DESIGN.md calls out: each
//! group times the paper's choice against its alternative on identical
//! inputs. The *quality* comparison of the same ablations lives in the
//! `ablation_study` binary.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fieldswap_core::{augment_corpus_with, EngineOptions, FieldSwapConfig, PairStrategy};
use fieldswap_datagen::{generate, Domain};
use fieldswap_docmodel::NeighborMetric;
use fieldswap_keyphrase::{
    infer_key_phrases, Aggregation, ImportanceModel, InferenceConfig, ModelConfig, Sparsify,
};
use fieldswap_nn::sparsemax;

fn neighbor_metric(c: &mut Criterion) {
    let corpus = generate(Domain::Earnings, 1, 2);
    let doc = &corpus.documents[0];
    let a = doc.annotations[0];
    let mut g = c.benchmark_group("ablation/neighbor_metric");
    g.bench_function("off_axis", |b| {
        b.iter(|| black_box(doc.neighbors_by_metric(a.start, a.end, 100, NeighborMetric::OffAxis)))
    });
    g.bench_function("euclidean", |b| {
        b.iter(|| {
            black_box(doc.neighbors_by_metric(a.start, a.end, 100, NeighborMetric::Euclidean))
        })
    });
    g.finish();
}

fn sparsify(c: &mut Criterion) {
    let scores: Vec<f32> = (0..100)
        .map(|i| ((i * 61 % 100) as f32) / 40.0 - 1.0)
        .collect();
    let mut g = c.benchmark_group("ablation/sparsify");
    g.bench_function("sparsemax", |b| b.iter(|| black_box(sparsemax(&scores))));
    g.bench_function("top_k", |b| {
        b.iter(|| {
            let mut s: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
            s.sort_by(|a, b| b.1.total_cmp(&a.1));
            s.truncate(5);
            black_box(s)
        })
    });
    g.finish();
}

fn trained_model() -> (ImportanceModel, fieldswap_docmodel::Corpus) {
    let corpus = generate(Domain::Invoices, 2, 25);
    let mut model = ImportanceModel::new(
        ModelConfig {
            neighbors: 12,
            epochs: 1,
            ..ModelConfig::tiny()
        },
        corpus.schema.len(),
        1,
    );
    model.train(&corpus, 1);
    (model, corpus)
}

fn aggregation(c: &mut Criterion) {
    let (model, _) = trained_model();
    let target = generate(Domain::Fara, 3, 10);
    let mut g = c.benchmark_group("ablation/aggregation");
    g.sample_size(10);
    g.bench_function("noisy_or", |b| {
        let cfg = InferenceConfig {
            aggregation: Aggregation::NoisyOr,
            ..InferenceConfig::default()
        };
        b.iter(|| black_box(infer_key_phrases(&model, &target, &cfg)))
    });
    g.bench_function("mean", |b| {
        let cfg = InferenceConfig {
            aggregation: Aggregation::Mean,
            ..InferenceConfig::default()
        };
        b.iter(|| black_box(infer_key_phrases(&model, &target, &cfg)))
    });
    g.finish();
}

fn sparsify_pipeline(c: &mut Criterion) {
    let (model, _) = trained_model();
    let target = generate(Domain::Fara, 6, 8);
    let mut g = c.benchmark_group("ablation/sparsify_pipeline");
    g.sample_size(10);
    for (name, mode) in [
        ("sparsemax", Sparsify::Sparsemax),
        ("top_k_5", Sparsify::TopK(5)),
    ] {
        let cfg = InferenceConfig {
            sparsify: mode,
            ..InferenceConfig::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| black_box(infer_key_phrases(&model, &target, &cfg)))
        });
    }
    g.finish();
}

fn gt_exclusion(c: &mut Criterion) {
    let (model, _) = trained_model();
    let target = generate(Domain::Brokerage, 4, 10);
    let mut g = c.benchmark_group("ablation/gt_exclusion");
    g.sample_size(10);
    for (name, on) in [("on", true), ("off", false)] {
        let cfg = InferenceConfig {
            exclude_ground_truth: on,
            ..InferenceConfig::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| black_box(infer_key_phrases(&model, &target, &cfg)))
        });
    }
    g.finish();
}

fn discard_rule(c: &mut Criterion) {
    let corpus = generate(Domain::Earnings, 5, 5);
    let mut config = FieldSwapConfig::new(corpus.schema.len());
    for (name, phrases) in Domain::Earnings.generator().phrase_bank() {
        let id = corpus.schema.field_id(&name).unwrap();
        config.set_phrases(id, phrases);
    }
    config.set_pairs(PairStrategy::TypeToType.build(&corpus.schema, &config));
    let mut g = c.benchmark_group("ablation/discard_rule");
    g.sample_size(10);
    for (name, on) in [("on", true), ("off", false)] {
        let opts = EngineOptions {
            discard_unchanged: on,
        };
        g.bench_function(name, |b| {
            b.iter(|| black_box(augment_corpus_with(&corpus, &config, &opts)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = neighbor_metric, sparsify, aggregation, sparsify_pipeline, gt_exclusion, discard_rule
}
criterion_main!(benches);
