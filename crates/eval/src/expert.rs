//! Human-expert FieldSwap configurations (paper Section III).
//!
//! The paper evaluates the human-expert setting on two domains, Earnings
//! and Loan Payments. The expert:
//!
//! * writes down the key phrases observed in ~10 training documents, plus
//!   phrases from domain knowledge for rare fields that may be absent from
//!   the sample — here the generator's own phrase banks play the role of
//!   that domain knowledge (they are exactly what an expert inspecting the
//!   corpus would record);
//! * excludes fields without clear key phrases (company names, corner
//!   address blocks, signature names);
//! * starts from type-to-type pairs and prunes those likely to live in
//!   different tables or sections — here: table pay-items never pair with
//!   summary singles, and `current.*` never pairs with `year_to_date.*`
//!   (the contradictory-pair hazard of Section II-B).

use fieldswap_core::{mapping, FieldSwapConfig};
use fieldswap_datagen::Domain;
use fieldswap_docmodel::Schema;

/// Builds the expert configuration for `domain`. Supported for
/// [`Domain::Earnings`] and [`Domain::LoanPayments`] (the two domains the
/// paper's expert covered); other domains return `None`.
pub fn expert_config(domain: Domain, schema: &Schema) -> Option<FieldSwapConfig> {
    match domain {
        Domain::Earnings | Domain::LoanPayments => {}
        _ => return None,
    }
    let mut config = FieldSwapConfig::new(schema.len());
    // The expert's phrase list: the generator phrase banks (what a human
    // reading the corpus would observe/know), *excluding* fields without
    // clear key phrases.
    for (name, phrases) in domain.generator().phrase_bank() {
        let id = schema.field_id(&name)?;
        if phrases.is_empty() {
            continue; // phrase-less field: excluded entirely
        }
        config.set_phrases(id, phrases);
    }
    // Extra exclusions by domain knowledge: weakly-anchored fields whose
    // automatic phrases tend to be spurious.
    for name in weakly_anchored(domain) {
        if let Some(id) = schema.field_id(name) {
            config.exclude_field(id);
        }
    }
    // Pairs: type-to-type, pruned.
    let pairs = mapping::expert_pairs(schema, &config, |s, t| keep_pair(domain, schema, s, t));
    config.set_pairs(pairs);
    Some(config)
}

fn weakly_anchored(domain: Domain) -> &'static [&'static str] {
    match domain {
        // The Earnings employee-address phrase ("Employee Address" etc.)
        // is a real anchor; nothing further to exclude beyond the
        // phrase-less fields.
        Domain::Earnings => &[],
        // Loan: `loan_type` values sit in a crowded identity block where
        // swapped phrases produce confusing neighbors; `property_address`
        // is the only anchored address and has no same-type partner left
        // after exclusions.
        Domain::LoanPayments => &["loan_type"],
        _ => &[],
    }
}

/// The expert's pair-pruning rule.
fn keep_pair(
    domain: Domain,
    schema: &Schema,
    s: fieldswap_docmodel::FieldId,
    t: fieldswap_docmodel::FieldId,
) -> bool {
    let sn = &schema.field(s).name;
    let tn = &schema.field(t).name;
    match domain {
        Domain::Earnings | Domain::LoanPayments => {
            let s_cur = sn.starts_with("current.");
            let s_ytd = sn.starts_with("year_to_date.");
            let t_cur = tn.starts_with("current.");
            let t_ytd = tn.starts_with("year_to_date.");
            // Never swap across the Current / Year-to-Date columns: the
            // row phrase is shared, so the synthetic would be mislabeled
            // (the paper's contradictory-pair example).
            if (s_cur && t_ytd) || (s_ytd && t_cur) {
                return false;
            }
            // Table pay items and summary singles live in different
            // sections; don't pair a table field with a non-table field.
            let s_table = s_cur || s_ytd;
            let t_table = t_cur || t_ytd;
            if s_table != t_table {
                return false;
            }
            true
        }
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_core::PairStrategy;

    #[test]
    fn unsupported_domains_return_none() {
        let schema = Domain::Fara.generator().schema();
        assert!(expert_config(Domain::Fara, &schema).is_none());
    }

    #[test]
    fn earnings_expert_excludes_phrase_less_fields() {
        let schema = Domain::Earnings.generator().schema();
        let c = expert_config(Domain::Earnings, &schema).unwrap();
        let employer = schema.field_id("employer_name").unwrap();
        assert!(!c.has_phrases(employer));
        assert!(c
            .pairs()
            .iter()
            .all(|&(s, t)| s != employer && t != employer));
        // Anchored fields keep phrases.
        let net = schema.field_id("net_pay").unwrap();
        assert!(c.has_phrases(net));
    }

    #[test]
    fn earnings_expert_prunes_current_vs_ytd() {
        let schema = Domain::Earnings.generator().schema();
        let c = expert_config(Domain::Earnings, &schema).unwrap();
        let cur = schema.field_id("current.overtime").unwrap();
        let ytd = schema.field_id("year_to_date.overtime").unwrap();
        assert!(!c.pairs().contains(&(cur, ytd)));
        assert!(!c.pairs().contains(&(ytd, cur)));
        // Within-column cross-field pairs survive.
        let cur_bonus = schema.field_id("current.bonus").unwrap();
        assert!(c.pairs().contains(&(cur, cur_bonus)));
        // Self-pairs survive.
        assert!(c.pairs().contains(&(cur, cur)));
    }

    #[test]
    fn earnings_expert_separates_table_from_summary() {
        let schema = Domain::Earnings.generator().schema();
        let c = expert_config(Domain::Earnings, &schema).unwrap();
        let cur = schema.field_id("current.base_salary").unwrap();
        let net = schema.field_id("net_pay").unwrap();
        assert!(!c.pairs().contains(&(cur, net)));
        assert!(!c.pairs().contains(&(net, cur)));
    }

    #[test]
    fn expert_includes_rare_field_phrases() {
        // The crucial Table IV mechanism: phrases for rare fields are
        // available even when a 10-doc sample contains no instance.
        let schema = Domain::Earnings.generator().schema();
        let c = expert_config(Domain::Earnings, &schema).unwrap();
        let sales = schema.field_id("current.sales_pay").unwrap();
        assert!(c.has_phrases(sales));
        assert!(c.phrases(sales).iter().any(|p| p.contains("sales")));
    }

    #[test]
    fn loan_expert_smaller_than_type_to_type() {
        let schema = Domain::LoanPayments.generator().schema();
        let c = expert_config(Domain::LoanPayments, &schema).unwrap();
        // Build the unpruned type-to-type pair list over the same phrases.
        let mut auto = c.clone();
        auto.set_pairs(PairStrategy::TypeToType.build(&schema, &auto));
        assert!(c.pairs().len() < auto.pairs().len());
        assert!(!c.pairs().is_empty());
    }
}
