//! End-to-end extraction metrics: per-field precision/recall/F1 under
//! exact span matching, macro-F1 (mean over fields with test support —
//! the paper's headline metric, sensitive to rare fields), and micro-F1
//! (instance-weighted).

use fieldswap_docmodel::{Corpus, EntitySpan, FieldId};
use fieldswap_extract::{Extractor, FrozenModel, InferScratch};
use serde::{Deserialize, Serialize};

/// Counts and scores for one field.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FieldScore {
    /// Exact-match true positives.
    pub tp: usize,
    /// Predicted spans with no exact gold match.
    pub fp: usize,
    /// Gold spans with no exact predicted match.
    pub fn_: usize,
}

impl FieldScore {
    /// Precision in `[0, 1]`; 0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall in `[0, 1]`; 0 when there is no gold.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 in `[0, 1]`.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Gold support (number of gold instances).
    pub fn support(&self) -> usize {
        self.tp + self.fn_
    }
}

/// Aggregated evaluation over a test corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Per-field counts, indexed by field id.
    pub fields: Vec<FieldScore>,
}

impl EvalResult {
    /// Macro-F1 in points (0–100): the unweighted mean F1 over fields
    /// with gold support in the test set.
    pub fn macro_f1(&self) -> f64 {
        let supported: Vec<&FieldScore> = self.fields.iter().filter(|f| f.support() > 0).collect();
        if supported.is_empty() {
            return 0.0;
        }
        100.0 * supported.iter().map(|f| f.f1()).sum::<f64>() / supported.len() as f64
    }

    /// Micro-F1 in points (0–100): F1 of the pooled counts.
    pub fn micro_f1(&self) -> f64 {
        let total = self
            .fields
            .iter()
            .fold(FieldScore::default(), |a, f| FieldScore {
                tp: a.tp + f.tp,
                fp: a.fp + f.fp,
                fn_: a.fn_ + f.fn_,
            });
        100.0 * total.f1()
    }

    /// Per-field F1 in points, `None` for fields without test support.
    pub fn per_field_f1(&self) -> Vec<Option<f64>> {
        self.fields
            .iter()
            .map(|f| {
                if f.support() > 0 {
                    Some(100.0 * f.f1())
                } else {
                    None
                }
            })
            .collect()
    }
}

/// Maximum tolerated macro-F1 drift (in points) between the exact f32
/// frozen path and the int8-quantized one. Shared by the in-repo guard
/// test and the CI quantization gate.
pub const QUANT_MACRO_F1_EPSILON: f64 = 1.5;

/// Scores `predictions` against `gold` for a document, updating `fields`.
///
/// Matching is one-to-one: each gold span can be consumed by at most one
/// exactly-equal prediction. A span predicted twice therefore earns one
/// TP and one FP (not two TPs), and a duplicated gold span that is
/// predicted once still leaves one FN — `tp + fn_` always equals the
/// number of gold spans, keeping support honest.
pub fn score_document(gold: &[EntitySpan], predictions: &[EntitySpan], fields: &mut [FieldScore]) {
    let mut consumed = vec![false; gold.len()];
    for p in predictions {
        let hit = gold
            .iter()
            .enumerate()
            .position(|(j, g)| !consumed[j] && g == p);
        match hit {
            Some(j) => {
                consumed[j] = true;
                fields[p.field as usize].tp += 1;
            }
            None => fields[p.field as usize].fp += 1,
        }
    }
    for (j, g) in gold.iter().enumerate() {
        if !consumed[j] {
            fields[g.field as usize].fn_ += 1;
        }
    }
}

/// Evaluates a trained extractor end-to-end on `test` through the frozen
/// inference fast path. The f32 frozen path is bitwise-identical to
/// [`Extractor::predict`], so this returns exactly the scores the
/// training-path decoder would.
pub fn evaluate(extractor: &Extractor, test: &Corpus) -> EvalResult {
    evaluate_frozen(&extractor.freeze(), test)
}

/// Evaluates a [`FrozenModel`] end-to-end on `test`, reusing one
/// [`InferScratch`] (feature-row cache + Viterbi buffers) across the
/// corpus. When metrics are enabled, records the batch decode latency in
/// the `fieldswap_infer_batch_ms` histogram.
pub fn evaluate_frozen(frozen: &FrozenModel, test: &Corpus) -> EvalResult {
    let mut fields = vec![FieldScore::default(); test.schema.len()];
    let mut scratch = InferScratch::default();
    let metrics = fieldswap_obs::metrics_enabled();
    let t0 = std::time::Instant::now();
    for doc in &test.documents {
        let pred = frozen.predict(doc, &mut scratch);
        score_document(&doc.annotations, &pred, &mut fields);
    }
    if metrics {
        fieldswap_obs::counter_add("fieldswap_eval_docs_total", test.documents.len() as u64);
        fieldswap_obs::observe("fieldswap_infer_batch_ms", t0.elapsed().as_secs_f64() * 1e3);
    }
    EvalResult { fields }
}

/// Evaluates a fixed prediction function (used by tests and ablations).
pub fn evaluate_with<F>(test: &Corpus, mut predict: F) -> EvalResult
where
    F: FnMut(&fieldswap_docmodel::Document) -> Vec<EntitySpan>,
{
    let mut fields = vec![FieldScore::default(); test.schema.len()];
    for doc in &test.documents {
        let pred = predict(doc);
        score_document(&doc.annotations, &pred, &mut fields);
    }
    EvalResult { fields }
}

/// Mean of a sample, `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Which field ids have gold support anywhere in the corpus.
pub fn supported_fields(corpus: &Corpus) -> Vec<FieldId> {
    let mut out = Vec::new();
    for (id, _) in corpus.schema.iter() {
        if corpus.documents.iter().any(|d| d.has_field(id)) {
            out.push(id);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_score_math() {
        let s = FieldScore {
            tp: 3,
            fp: 1,
            fn_: 2,
        };
        assert!((s.precision() - 0.75).abs() < 1e-12);
        assert!((s.recall() - 0.6).abs() < 1e-12);
        let f1 = 2.0 * 0.75 * 0.6 / 1.35;
        assert!((s.f1() - f1).abs() < 1e-12);
        assert_eq!(s.support(), 5);
    }

    #[test]
    fn zero_cases() {
        let s = FieldScore::default();
        assert_eq!(s.precision(), 0.0);
        assert_eq!(s.recall(), 0.0);
        assert_eq!(s.f1(), 0.0);
    }

    #[test]
    fn score_document_counts() {
        let gold = vec![EntitySpan::new(0, 0, 2), EntitySpan::new(1, 3, 4)];
        let pred = vec![EntitySpan::new(0, 0, 2), EntitySpan::new(1, 5, 6)];
        let mut fields = vec![FieldScore::default(); 2];
        score_document(&gold, &pred, &mut fields);
        assert_eq!(
            fields[0],
            FieldScore {
                tp: 1,
                fp: 0,
                fn_: 0
            }
        );
        assert_eq!(
            fields[1],
            FieldScore {
                tp: 0,
                fp: 1,
                fn_: 1
            }
        );
    }

    #[test]
    fn duplicate_prediction_is_not_double_counted() {
        // One gold span, predicted twice: one TP consumes the gold, the
        // duplicate is an FP. (The old all-pairs matching gave 2 TPs
        // against 1 gold, inflating both support and recall.)
        let gold = vec![EntitySpan::new(0, 0, 2)];
        let pred = vec![EntitySpan::new(0, 0, 2), EntitySpan::new(0, 0, 2)];
        let mut fields = vec![FieldScore::default(); 1];
        score_document(&gold, &pred, &mut fields);
        assert_eq!(
            fields[0],
            FieldScore {
                tp: 1,
                fp: 1,
                fn_: 0
            }
        );
        assert_eq!(fields[0].support(), gold.len());
    }

    #[test]
    fn duplicate_gold_requires_matching_multiplicity() {
        // The same span annotated twice with one matching prediction:
        // one gold is consumed, the other is still missed.
        let gold = vec![EntitySpan::new(0, 0, 2), EntitySpan::new(0, 0, 2)];
        let pred = vec![EntitySpan::new(0, 0, 2)];
        let mut fields = vec![FieldScore::default(); 1];
        score_document(&gold, &pred, &mut fields);
        assert_eq!(
            fields[0],
            FieldScore {
                tp: 1,
                fp: 0,
                fn_: 1
            }
        );
        assert_eq!(fields[0].support(), gold.len());
    }

    #[test]
    fn duplicate_on_both_sides_pairs_off() {
        let gold = vec![EntitySpan::new(1, 4, 6), EntitySpan::new(1, 4, 6)];
        let pred = vec![EntitySpan::new(1, 4, 6), EntitySpan::new(1, 4, 6)];
        let mut fields = vec![FieldScore::default(); 2];
        score_document(&gold, &pred, &mut fields);
        assert_eq!(
            fields[1],
            FieldScore {
                tp: 2,
                fp: 0,
                fn_: 0
            }
        );
    }

    #[test]
    fn near_miss_is_both_fp_and_fn() {
        // Span boundary off by one: penalized on both sides (exact match).
        let gold = vec![EntitySpan::new(0, 0, 3)];
        let pred = vec![EntitySpan::new(0, 0, 2)];
        let mut fields = vec![FieldScore::default(); 1];
        score_document(&gold, &pred, &mut fields);
        assert_eq!(
            fields[0],
            FieldScore {
                tp: 0,
                fp: 1,
                fn_: 1
            }
        );
    }

    #[test]
    fn macro_ignores_unsupported_fields() {
        let r = EvalResult {
            fields: vec![
                FieldScore {
                    tp: 1,
                    fp: 0,
                    fn_: 0,
                }, // F1 = 1
                FieldScore::default(), // no support
                FieldScore {
                    tp: 0,
                    fp: 0,
                    fn_: 1,
                }, // F1 = 0
            ],
        };
        assert!((r.macro_f1() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn micro_pools_counts() {
        let r = EvalResult {
            fields: vec![
                FieldScore {
                    tp: 8,
                    fp: 2,
                    fn_: 0,
                },
                FieldScore {
                    tp: 0,
                    fp: 0,
                    fn_: 10,
                },
            ],
        };
        // p = 8/10, r = 8/18.
        let p: f64 = 0.8;
        let rc: f64 = 8.0 / 18.0;
        let f1 = 100.0 * 2.0 * p * rc / (p + rc);
        assert!((r.micro_f1() - f1).abs() < 1e-9);
    }

    #[test]
    fn macro_rewards_rare_fields_more_than_micro() {
        // A rare field improving lifts macro more than micro — the
        // paper's rationale for reporting macro (Section IV-C1).
        let before = EvalResult {
            fields: vec![
                FieldScore {
                    tp: 90,
                    fp: 5,
                    fn_: 5,
                }, // frequent, good
                FieldScore {
                    tp: 0,
                    fp: 0,
                    fn_: 2,
                }, // rare, broken
            ],
        };
        let after = EvalResult {
            fields: vec![
                FieldScore {
                    tp: 90,
                    fp: 5,
                    fn_: 5,
                },
                FieldScore {
                    tp: 2,
                    fp: 0,
                    fn_: 0,
                }, // rare fixed
            ],
        };
        let macro_gain = after.macro_f1() - before.macro_f1();
        let micro_gain = after.micro_f1() - before.micro_f1();
        assert!(macro_gain > micro_gain);
        assert!(macro_gain > 40.0);
    }

    #[test]
    fn per_field_f1_reports_option() {
        let r = EvalResult {
            fields: vec![
                FieldScore {
                    tp: 1,
                    fp: 0,
                    fn_: 0,
                },
                FieldScore::default(),
            ],
        };
        let per = r.per_field_f1();
        assert_eq!(per[0], Some(100.0));
        assert_eq!(per[1], None);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
    }
}
