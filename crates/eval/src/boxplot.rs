//! Box-plot statistics for the per-field delta analysis of Fig. 6:
//! quartiles, whiskers at 1.5 x IQR, median, and outliers — matching the
//! figure's caption exactly.

use serde::{Deserialize, Serialize};

/// Five-number summary plus outliers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Lower quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile (75th percentile).
    pub q3: f64,
    /// Lowest datum within `q1 - 1.5 * IQR`.
    pub whisker_lo: f64,
    /// Highest datum within `q3 + 1.5 * IQR`.
    pub whisker_hi: f64,
    /// Data outside the whiskers.
    pub outliers: Vec<f64>,
    /// Sample size.
    pub n: usize,
}

/// Linear-interpolation percentile of a sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    let frac = idx - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

impl BoxStats {
    /// Computes box-plot statistics. Returns `None` for empty input.
    pub fn compute(data: &[f64]) -> Option<BoxStats> {
        if data.is_empty() {
            return None;
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        let q1 = percentile(&sorted, 0.25);
        let median = percentile(&sorted, 0.5);
        let q3 = percentile(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        // Whiskers extend from the box to the furthest datum inside the
        // fences; clamp to the box edges (interpolated quartiles can have
        // no datum between them and the fence).
        let whisker_lo = sorted
            .iter()
            .copied()
            .find(|&x| x >= lo_fence)
            .unwrap_or(sorted[0])
            .min(q1);
        let whisker_hi = sorted
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .unwrap_or(*sorted.last().unwrap())
            .max(q3);
        let outliers = sorted
            .iter()
            .copied()
            .filter(|&x| x < lo_fence || x > hi_fence)
            .collect();
        Some(BoxStats {
            q1,
            median,
            q3,
            whisker_lo,
            whisker_hi,
            outliers,
            n: data.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_is_none() {
        assert!(BoxStats::compute(&[]).is_none());
    }

    #[test]
    fn single_value_degenerate() {
        let b = BoxStats::compute(&[5.0]).unwrap();
        assert_eq!(b.median, 5.0);
        assert_eq!(b.q1, 5.0);
        assert_eq!(b.q3, 5.0);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn known_quartiles() {
        let b = BoxStats::compute(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 5.0);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn detects_outlier() {
        let b = BoxStats::compute(&[1.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0, 100.0]).unwrap();
        assert_eq!(b.outliers, vec![100.0]);
        assert!(b.whisker_hi < 100.0);
    }

    proptest! {
        #[test]
        fn prop_invariants(data in proptest::collection::vec(-50f64..50.0, 1..100)) {
            let b = BoxStats::compute(&data).unwrap();
            prop_assert!(b.q1 <= b.median && b.median <= b.q3);
            prop_assert!(b.whisker_lo <= b.q1 + 1e-9);
            prop_assert!(b.whisker_hi >= b.q3 - 1e-9);
            prop_assert_eq!(b.n, data.len());
            // Outliers lie strictly outside the whiskers.
            for o in &b.outliers {
                prop_assert!(*o < b.whisker_lo || *o > b.whisker_hi);
            }
        }
    }
}
