#![warn(missing_docs)]

//! # fieldswap-eval
//!
//! The evaluation harness reproducing the paper's experimental protocol
//! (Section IV):
//!
//! * **Metrics** ([`metrics`]) — per-field precision/recall/F1 under exact
//!   span matching, plus macro- and micro-averaged F1.
//! * **Human expert** ([`expert`]) — curated FieldSwap configurations for
//!   the Earnings and Loan Payments domains: oracle key phrases (including
//!   phrases for rare fields absent from small training samples),
//!   exclusion of phrase-less fields, and pruned type-to-type pairs
//!   (Section III).
//! * **Runner** ([`runner`]) — one experiment = (domain, train size, arm,
//!   sample seed, trial seed): sample N documents from the pool, infer or
//!   load key phrases, build pairs, augment, train the backbone, evaluate
//!   on the fixed hold-out test set. The protocol layer repeats each point
//!   over 3 document samples x 3 training trials and averages (Section
//!   IV-B, "Evaluation").
//! * **Box-plot statistics** ([`boxplot`]) — quartiles, 1.5-IQR whiskers,
//!   and outliers for the per-field delta analysis of Fig. 6.
//! * **Parallel primitives** ([`parallel`]) — the scoped worker pool and
//!   exactly-once concurrent cache behind the harness's `jobs` knob.
//!   Grids fan out across threads with results bit-identical to a serial
//!   run: every experiment's randomness derives purely from its
//!   `(domain, size, arm, sample, trial)` coordinates. Worker slots run
//!   under `catch_unwind` with one retry, so a poisoned cell degrades to
//!   a counted failure instead of killing the grid.
//! * **Checkpointing** ([`checkpoint`]) — per-cell JSON persistence keyed
//!   by grid coordinates plus an options fingerprint; a killed run
//!   resumed from its checkpoint directory produces byte-identical
//!   output to an uninterrupted one.
//! * **Robustness** ([`robustness`]) — the form-attack evaluation mode:
//!   train clean, evaluate on attacked test sets, report per-attack F1
//!   degradation. Inherits the grid's parallelism, determinism, and
//!   checkpointing guarantees.

pub mod boxplot;
pub mod checkpoint;
pub mod expert;
pub mod metrics;
pub mod parallel;
pub mod robustness;
pub mod runner;

pub use boxplot::BoxStats;
pub use checkpoint::{attacks_fingerprint, options_fingerprint, CellCache, CellCoords};
pub use expert::expert_config;
pub use metrics::{evaluate, evaluate_frozen, EvalResult, FieldScore, QUANT_MACRO_F1_EPSILON};
pub use parallel::{effective_jobs, par_map_indexed, par_try_map_indexed, OnceMap, SlotPanic};
pub use robustness::{AttackSpec, AttackSummary, RobustnessPoint, RobustnessResult};
pub use runner::{cell_seed, Arm, ExperimentResult, Harness, HarnessOptions, PointSummary};
