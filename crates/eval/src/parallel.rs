//! Parallel execution primitives for the experiment harness.
//!
//! The implementation lives in [`fieldswap_parallel`] so the training
//! crates (`extract`, `keyphrase`, `datagen`) can reuse the same pool
//! without depending on the harness; this module re-exports it under the
//! historical `fieldswap_eval::parallel` path.
//!
//! The experiment grid is embarrassingly parallel *if* two conditions
//! hold: every cell derives its randomness purely from its coordinates
//! (see [`crate::runner::cell_seed`]), and shared lazy state is computed
//! exactly once no matter which thread gets there first. See the
//! `fieldswap-parallel` crate docs for the building blocks and their
//! determinism contract.

pub use fieldswap_parallel::{
    effective_jobs, par_map_indexed, par_try_map_indexed, OnceMap, SlotPanic, WorkerPool,
};
