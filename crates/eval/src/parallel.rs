//! Parallel execution primitives for the experiment harness.
//!
//! The experiment grid is embarrassingly parallel *if* two conditions
//! hold: every cell derives its randomness purely from its coordinates
//! (see [`crate::runner::cell_seed`]), and shared lazy state is computed
//! exactly once no matter which thread gets there first. This module
//! supplies the two building blocks:
//!
//! * [`par_map_indexed`] / [`par_try_map_indexed`] — fan an index range
//!   out over a scoped worker pool, collecting results *by index* so the
//!   output order (and hence every downstream aggregate) is independent
//!   of thread scheduling. The `try` variant isolates a panicking slot
//!   with `catch_unwind`, retries it once, and returns the captured
//!   panic payload instead of tearing the whole pool down — a multi-hour
//!   grid survives one poisoned cell;
//! * [`OnceMap`] — a concurrent lazily-populated map whose values are
//!   initialized exactly once per key, with an initialization counter so
//!   tests can assert the exactly-once contract.
//!
//! `rayon` is not available in the offline build environment, so the pool
//! is a small `std::thread::scope` worker set over an atomic work index —
//! a few dozen lines that cover everything the grid needs.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Resolves a `jobs` knob: `0` means "all available cores", anything
/// else is taken literally.
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// A slot whose computation panicked on both the first attempt and the
/// retry: the grid cell is lost, but the captured payload lets the
/// caller account for it instead of crashing the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotPanic {
    /// The index passed to the worker closure.
    pub index: usize,
    /// The panic payload rendered as text (`&str` / `String` payloads
    /// verbatim, anything else a placeholder).
    pub payload: String,
}

/// Renders a `catch_unwind` payload as text.
fn payload_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one slot under `catch_unwind` with a single retry.
///
/// The retry is cheap insurance against transient faults; a
/// deterministic panic simply fails twice and is reported. Counter
/// `fieldswap_grid_cells_retried` ticks on every first-attempt panic,
/// `fieldswap_grid_cells_failed` when the retry also dies.
fn run_slot<U, F>(f: &F, i: usize) -> Result<U, SlotPanic>
where
    F: Fn(usize) -> U + Sync,
{
    match catch_unwind(AssertUnwindSafe(|| f(i))) {
        Ok(v) => Ok(v),
        Err(first) => {
            fieldswap_obs::counter_add("fieldswap_grid_cells_retried", 1);
            fieldswap_obs::warn!(
                "worker slot {i} panicked ({}); retrying once",
                payload_text(first)
            );
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(v) => Ok(v),
                Err(second) => {
                    fieldswap_obs::counter_add("fieldswap_grid_cells_failed", 1);
                    Err(SlotPanic {
                        index: i,
                        payload: payload_text(second),
                    })
                }
            }
        }
    }
}

/// Maps `f` over `0..n` using up to `jobs` worker threads (resolved via
/// [`effective_jobs`]), returning per-index outcomes in index order.
///
/// Work is distributed dynamically (an atomic cursor), so long cells
/// don't stall a fixed stripe, but each result lands in its own slot —
/// the output is bit-identical to the serial `(0..n).map(f)` whenever
/// `f` itself depends only on the index.
///
/// Each slot runs under [`catch_unwind`]: a panic is retried once, and a
/// second panic yields `Err(SlotPanic)` for that index while every other
/// slot completes normally. The pool itself never unwinds.
pub fn par_try_map_indexed<U, F>(n: usize, jobs: usize, f: F) -> Vec<Result<U, SlotPanic>>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let jobs = effective_jobs(jobs).min(n.max(1));
    if fieldswap_obs::metrics_enabled() {
        fieldswap_obs::gauge_set("fieldswap_worker_threads", jobs as f64);
    }
    if jobs <= 1 {
        return (0..n).map(|i| run_slot(&f, i)).collect();
    }
    // `Mutex<Option<..>>` slots rather than `OnceLock`: the mutex is
    // uncontended (each index is claimed by exactly one worker via the
    // cursor) and only demands `U: Send`, not `U: Sync`.
    let slots: Vec<Mutex<Option<Result<U, SlotPanic>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = run_slot(&f, i);
                let prev = slots[i].lock().expect("slot poisoned").replace(value);
                assert!(prev.is_none(), "slot {i} filled twice");
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("all slots filled")
        })
        .collect()
}

/// Infallible wrapper over [`par_try_map_indexed`]: any slot that still
/// fails after its retry re-raises the captured panic on the caller's
/// thread. Callers that need per-cell degradation use the `try` variant.
pub fn par_map_indexed<U, F>(n: usize, jobs: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_try_map_indexed(n, jobs, f)
        .into_iter()
        .map(|r| {
            r.unwrap_or_else(|p| panic!("parallel slot {} panicked twice: {}", p.index, p.payload))
        })
        .collect()
}

/// A concurrent map whose entries are computed exactly once per key.
///
/// Readers that race on the same key block until the single in-flight
/// initialization finishes; readers on different keys initialize
/// concurrently. Values are handed out by clone — store an `Arc` for
/// anything heavy.
pub struct OnceMap<K, V> {
    cells: Mutex<HashMap<K, Arc<OnceLock<V>>>>,
    inits: AtomicUsize,
    /// When set, hits and misses are reported to the metrics registry as
    /// `fieldswap_cache_{hits,misses}_total{cache="<name>"}`.
    name: Option<&'static str>,
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> OnceMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        Self {
            cells: Mutex::new(HashMap::new()),
            inits: AtomicUsize::new(0),
            name: None,
        }
    }

    /// An empty map that reports cache hit/miss counters under `name`
    /// whenever metrics collection is enabled.
    pub fn named(name: &'static str) -> Self {
        Self {
            cells: Mutex::new(HashMap::new()),
            inits: AtomicUsize::new(0),
            name: Some(name),
        }
    }

    /// The value for `key`, computing it with `init` on first access.
    ///
    /// The map lock is held only to fetch the key's cell; `init` runs
    /// outside it, so distinct keys never serialize each other.
    pub fn get_or_init(&self, key: K, init: impl FnOnce() -> V) -> V {
        let cell = {
            let mut cells = self.cells.lock().expect("OnceMap poisoned");
            Arc::clone(
                cells
                    .entry(key)
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        let mut ran_init = false;
        let value = cell
            .get_or_init(|| {
                self.inits.fetch_add(1, Ordering::Relaxed);
                ran_init = true;
                init()
            })
            .clone();
        if let Some(name) = self.name {
            if fieldswap_obs::metrics_enabled() {
                let kind = if ran_init { "misses" } else { "hits" };
                fieldswap_obs::counter_add(
                    &format!("fieldswap_cache_{kind}_total{{cache=\"{name}\"}}"),
                    1,
                );
            }
        }
        value
    }

    /// Number of initialized entries.
    pub fn len(&self) -> usize {
        let cells = self.cells.lock().expect("OnceMap poisoned");
        cells.values().filter(|c| c.get().is_some()).count()
    }

    /// Whether no entry has been initialized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many times an initializer has run — equals [`len`](Self::len)
    /// exactly when every entry was computed once.
    pub fn init_count(&self) -> usize {
        self.inits.load(Ordering::Relaxed)
    }
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> Default for OnceMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_output() {
        let serial: Vec<u64> = (0..57).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for jobs in [0, 1, 2, 4, 16] {
            let par = par_map_indexed(57, jobs, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        assert!(par_map_indexed(0, 4, |i| i).is_empty());
        assert_eq!(par_map_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn effective_jobs_resolves_zero() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn try_map_isolates_persistent_panic() {
        for jobs in [1, 4] {
            let out = par_try_map_indexed(6, jobs, |i| {
                if i == 3 {
                    panic!("cell {i} is poisoned");
                }
                i * 2
            });
            assert_eq!(out.len(), 6, "jobs={jobs}");
            for (i, r) in out.iter().enumerate() {
                if i == 3 {
                    let p = r.as_ref().unwrap_err();
                    assert_eq!(p.index, 3);
                    assert_eq!(p.payload, "cell 3 is poisoned");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 2, "jobs={jobs}");
                }
            }
        }
    }

    #[test]
    fn try_map_retries_transient_panic_once() {
        // The slot panics only on its first attempt; the retry succeeds
        // and the caller sees a clean result.
        let attempts = AtomicUsize::new(0);
        let out = par_try_map_indexed(3, 1, |i| {
            if i == 1 && attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient");
            }
            i + 100
        });
        assert_eq!(
            out,
            vec![Ok(100), Ok(101), Ok(102)],
            "retry should recover the transient slot"
        );
        assert_eq!(attempts.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn try_map_reports_retry_and_failure_counters() {
        fieldswap_obs::enable_metrics();
        let reg = fieldswap_obs::global().registry();
        let retried0 = reg.counter_value("fieldswap_grid_cells_retried");
        let failed0 = reg.counter_value("fieldswap_grid_cells_failed");
        let out = par_try_map_indexed(2, 1, |i| {
            if i == 0 {
                panic!("always");
            }
            i
        });
        assert!(out[0].is_err());
        assert_eq!(out[1], Ok(1));
        let retried1 = reg.counter_value("fieldswap_grid_cells_retried");
        let failed1 = reg.counter_value("fieldswap_grid_cells_failed");
        assert_eq!(retried1, retried0 + 1, "one first-attempt panic");
        assert_eq!(failed1, failed0 + 1, "one double failure");
    }

    #[test]
    fn infallible_map_repanics_with_payload() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map_indexed(2, 1, |i| {
                if i == 1 {
                    panic!("boom");
                }
                i
            })
        }));
        let payload = payload_text(caught.unwrap_err());
        assert!(
            payload.contains("slot 1") && payload.contains("boom"),
            "payload: {payload}"
        );
    }

    #[test]
    fn named_once_map_reports_hit_miss_counters() {
        fieldswap_obs::enable_metrics();
        let reg = fieldswap_obs::global().registry();
        let hits0 = reg.counter_value("fieldswap_cache_hits_total{cache=\"test_cache\"}");
        let misses0 = reg.counter_value("fieldswap_cache_misses_total{cache=\"test_cache\"}");
        let map: OnceMap<u32, u32> = OnceMap::named("test_cache");
        assert_eq!(map.get_or_init(7, || 70), 70);
        assert_eq!(map.get_or_init(7, || unreachable!()), 70);
        let hits1 = reg.counter_value("fieldswap_cache_hits_total{cache=\"test_cache\"}");
        let misses1 = reg.counter_value("fieldswap_cache_misses_total{cache=\"test_cache\"}");
        assert_eq!(hits1, hits0 + 1);
        assert_eq!(misses1, misses0 + 1);
    }

    #[test]
    fn once_map_initializes_exactly_once_per_key() {
        let map: OnceMap<u32, u32> = OnceMap::new();
        let hits = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for key in 0..4 {
                        let v = map.get_or_init(key, || {
                            hits.fetch_add(1, Ordering::Relaxed);
                            key * 10
                        });
                        assert_eq!(v, key * 10);
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4, "one init per key");
        assert_eq!(map.init_count(), 4);
        assert_eq!(map.len(), 4);
    }
}
