//! Parallel execution primitives for the experiment harness.
//!
//! The experiment grid is embarrassingly parallel *if* two conditions
//! hold: every cell derives its randomness purely from its coordinates
//! (see [`crate::runner::cell_seed`]), and shared lazy state is computed
//! exactly once no matter which thread gets there first. This module
//! supplies the two building blocks:
//!
//! * [`par_map_indexed`] — fan an index range out over a scoped worker
//!   pool, collecting results *by index* so the output order (and hence
//!   every downstream aggregate) is independent of thread scheduling;
//! * [`OnceMap`] — a concurrent lazily-populated map whose values are
//!   initialized exactly once per key, with an initialization counter so
//!   tests can assert the exactly-once contract.
//!
//! `rayon` is not available in the offline build environment, so the pool
//! is a small `std::thread::scope` worker set over an atomic work index —
//! ~30 lines that cover everything the grid needs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Resolves a `jobs` knob: `0` means "all available cores", anything
/// else is taken literally.
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// Maps `f` over `0..n` using up to `jobs` worker threads (resolved via
/// [`effective_jobs`]), returning results in index order.
///
/// Work is distributed dynamically (an atomic cursor), so long cells
/// don't stall a fixed stripe, but each result lands in its own slot —
/// the output is bit-identical to the serial `(0..n).map(f)` whenever
/// `f` itself depends only on the index.
pub fn par_map_indexed<U, F>(n: usize, jobs: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let jobs = effective_jobs(jobs).min(n.max(1));
    if fieldswap_obs::metrics_enabled() {
        fieldswap_obs::gauge_set("fieldswap_worker_threads", jobs as f64);
    }
    if jobs <= 1 {
        return (0..n).map(f).collect();
    }
    // `Mutex<Option<U>>` slots rather than `OnceLock<U>`: the mutex is
    // uncontended (each index is claimed by exactly one worker via the
    // cursor) and only demands `U: Send`, not `U: Sync`.
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                let prev = slots[i].lock().expect("slot poisoned").replace(value);
                assert!(prev.is_none(), "slot {i} filled twice");
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("all slots filled")
        })
        .collect()
}

/// A concurrent map whose entries are computed exactly once per key.
///
/// Readers that race on the same key block until the single in-flight
/// initialization finishes; readers on different keys initialize
/// concurrently. Values are handed out by clone — store an `Arc` for
/// anything heavy.
pub struct OnceMap<K, V> {
    cells: Mutex<HashMap<K, Arc<OnceLock<V>>>>,
    inits: AtomicUsize,
    /// When set, hits and misses are reported to the metrics registry as
    /// `fieldswap_cache_{hits,misses}_total{cache="<name>"}`.
    name: Option<&'static str>,
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> OnceMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        Self {
            cells: Mutex::new(HashMap::new()),
            inits: AtomicUsize::new(0),
            name: None,
        }
    }

    /// An empty map that reports cache hit/miss counters under `name`
    /// whenever metrics collection is enabled.
    pub fn named(name: &'static str) -> Self {
        Self {
            cells: Mutex::new(HashMap::new()),
            inits: AtomicUsize::new(0),
            name: Some(name),
        }
    }

    /// The value for `key`, computing it with `init` on first access.
    ///
    /// The map lock is held only to fetch the key's cell; `init` runs
    /// outside it, so distinct keys never serialize each other.
    pub fn get_or_init(&self, key: K, init: impl FnOnce() -> V) -> V {
        let cell = {
            let mut cells = self.cells.lock().expect("OnceMap poisoned");
            Arc::clone(
                cells
                    .entry(key)
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        let mut ran_init = false;
        let value = cell
            .get_or_init(|| {
                self.inits.fetch_add(1, Ordering::Relaxed);
                ran_init = true;
                init()
            })
            .clone();
        if let Some(name) = self.name {
            if fieldswap_obs::metrics_enabled() {
                let kind = if ran_init { "misses" } else { "hits" };
                fieldswap_obs::counter_add(
                    &format!("fieldswap_cache_{kind}_total{{cache=\"{name}\"}}"),
                    1,
                );
            }
        }
        value
    }

    /// Number of initialized entries.
    pub fn len(&self) -> usize {
        let cells = self.cells.lock().expect("OnceMap poisoned");
        cells.values().filter(|c| c.get().is_some()).count()
    }

    /// Whether no entry has been initialized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many times an initializer has run — equals [`len`](Self::len)
    /// exactly when every entry was computed once.
    pub fn init_count(&self) -> usize {
        self.inits.load(Ordering::Relaxed)
    }
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> Default for OnceMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_output() {
        let serial: Vec<u64> = (0..57).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for jobs in [0, 1, 2, 4, 16] {
            let par = par_map_indexed(57, jobs, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        assert!(par_map_indexed(0, 4, |i| i).is_empty());
        assert_eq!(par_map_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn effective_jobs_resolves_zero() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn named_once_map_reports_hit_miss_counters() {
        fieldswap_obs::enable_metrics();
        let reg = fieldswap_obs::global().registry();
        let hits0 = reg.counter_value("fieldswap_cache_hits_total{cache=\"test_cache\"}");
        let misses0 = reg.counter_value("fieldswap_cache_misses_total{cache=\"test_cache\"}");
        let map: OnceMap<u32, u32> = OnceMap::named("test_cache");
        assert_eq!(map.get_or_init(7, || 70), 70);
        assert_eq!(map.get_or_init(7, || unreachable!()), 70);
        let hits1 = reg.counter_value("fieldswap_cache_hits_total{cache=\"test_cache\"}");
        let misses1 = reg.counter_value("fieldswap_cache_misses_total{cache=\"test_cache\"}");
        assert_eq!(hits1, hits0 + 1);
        assert_eq!(misses1, misses0 + 1);
    }

    #[test]
    fn once_map_initializes_exactly_once_per_key() {
        let map: OnceMap<u32, u32> = OnceMap::new();
        let hits = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for key in 0..4 {
                        let v = map.get_or_init(key, || {
                            hits.fetch_add(1, Ordering::Relaxed);
                            key * 10
                        });
                        assert_eq!(v, key * 10);
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4, "one init per key");
        assert_eq!(map.init_count(), 4);
        assert_eq!(map.len(), 4);
    }
}
