//! The experiment runner: the paper's protocol (Section IV-B) end to end.
//!
//! One *experiment* is `(domain, train size, arm, sample, trial)`:
//!
//! 1. sample `N` documents from the domain's training pool (3 different
//!    samples per point);
//! 2. obtain a FieldSwap configuration — inferred automatically from the
//!    sample via the pre-trained importance model, or supplied by the
//!    human expert;
//! 3. augment the sample with FieldSwap;
//! 4. train the sequence-labeling backbone on originals + synthetics
//!    (3 training trials per sample, varying only the training seed; both
//!    arms get the same per-epoch document budget — the "same training
//!    time" control);
//! 5. evaluate end-to-end on the fixed hold-out test set.
//!
//! Shared state — the importance model pre-trained on out-of-domain
//! invoices, the unsupervised lexicon, the per-domain pools/test sets, and
//! the per-(domain, size, sample) inferred phrase cache — lives in
//! [`Harness`].

use crate::checkpoint::{CellCache, CellCoords};
use crate::expert::expert_config;
use crate::metrics::EvalResult;
use crate::parallel::{par_map_indexed, par_try_map_indexed, OnceMap, SlotPanic};
use crate::robustness::AttackSpec;
use fieldswap_core::{attack_corpus, augment_corpus, AttackKind, FieldSwapConfig, PairStrategy};
use fieldswap_datagen::{generate_jobs, Domain};
use fieldswap_docmodel::Corpus;
use fieldswap_extract::{Extractor, Lexicon, TrainConfig};
use fieldswap_keyphrase::{infer_key_phrases, ImportanceModel, InferenceConfig, ModelConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// The experimental arms of Fig. 4 / Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arm {
    /// No augmentation.
    Baseline,
    /// FieldSwap with automatically inferred phrases, field-to-field.
    AutoFieldToField,
    /// FieldSwap with automatically inferred phrases, type-to-type.
    AutoTypeToType,
    /// FieldSwap with automatically inferred phrases, all-to-all (the
    /// ablation the paper reports as "nearly always worse").
    AutoAllToAll,
    /// FieldSwap with the human-expert configuration (Earnings and Loan
    /// Payments only).
    HumanExpert,
    /// Extension (paper Section VI): phrases derived from field *names*
    /// by the simulated-LLM expander — zero annotations needed.
    NameDerived,
    /// Extension (paper Section II-C): type-to-type FieldSwap with the
    /// value-swap post-pass — relabeled instances receive values sampled
    /// from the target field's observed values.
    TypeToTypeValueSwap,
}

impl Arm {
    /// Label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Arm::Baseline => "baseline",
            Arm::AutoFieldToField => "fieldswap (field-to-field)",
            Arm::AutoTypeToType => "fieldswap (type-to-type)",
            Arm::AutoAllToAll => "fieldswap (all-to-all)",
            Arm::HumanExpert => "fieldswap (human expert)",
            Arm::NameDerived => "fieldswap (name-derived phrases)",
            Arm::TypeToTypeValueSwap => "fieldswap (t2t + value swap)",
        }
    }
}

/// Harness-level knobs. `quick()` trades protocol fidelity for wall-clock
/// time; `full()` follows the paper's 3x3 protocol.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOptions {
    /// Document samples per (domain, size) point (paper: 3).
    pub n_samples: usize,
    /// Training trials per sample (paper: 3).
    pub n_trials: usize,
    /// Size of the invoice corpus used to pre-train the importance model.
    pub pretrain_docs: usize,
    /// Size of the unlabeled corpus for the lexicon pass.
    pub lexicon_docs: usize,
    /// Neighbors per candidate in the importance model (paper: 100).
    pub neighbors: usize,
    /// Cap on test-set size (0 = the full Table I test set).
    pub test_cap: usize,
    /// Backbone training epochs.
    pub epochs: usize,
    /// Synthetic documents per original per epoch (the baseline repeats
    /// originals to match total updates).
    pub synth_ratio: f32,
    /// Cap on synthetic documents fed to training (0 = no cap); the
    /// per-epoch budget already equalizes exposure, this only bounds
    /// feature-extraction memory.
    pub synthetic_cap: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for `run_point`/`run_grid` (0 = all cores,
    /// 1 = serial). Results are bit-identical for every setting: each
    /// experiment's randomness is derived purely from its grid
    /// coordinates, never from scheduling order.
    pub jobs: usize,
    /// Worker threads *inside* each training run (0 = all cores,
    /// 1 = serial): the decode windows of the backbone trainer, the
    /// gradient windows of the importance-model pre-training, and the
    /// per-document render phase of corpus generation. Like `jobs`,
    /// any value produces bit-identical results — see
    /// [`fieldswap_extract::TRAIN_BATCH`] for the contract.
    pub train_jobs: usize,
    /// Validate and repair corpora at ingestion
    /// (`Document::sanitize`). A strict no-op on well-formed documents —
    /// the clean path stays byte-identical with the layer enabled — while
    /// degenerate inputs (non-finite boxes, empty tokens, overlapping
    /// spans) are repaired and counted instead of poisoning training.
    pub sanitize: bool,
    /// Evaluate through the int8-quantized emission table instead of the
    /// exact f32 one. Scores are approximate (guarded by the quantization
    /// accuracy gate); training is unaffected.
    pub quantized: bool,
}

impl HarnessOptions {
    /// The paper's protocol: 3 samples x 3 trials, full test sets.
    pub fn full() -> Self {
        Self {
            n_samples: 3,
            n_trials: 3,
            pretrain_docs: 400,
            lexicon_docs: 1000,
            neighbors: 100,
            test_cap: 0,
            epochs: 8,
            synth_ratio: 2.0,
            synthetic_cap: 4000,
            seed: 0x5EED,
            jobs: 0,
            train_jobs: 1,
            sanitize: true,
            quantized: false,
        }
    }

    /// A reduced 1x1 protocol for smoke runs and benches.
    pub fn quick() -> Self {
        Self {
            n_samples: 1,
            n_trials: 1,
            pretrain_docs: 80,
            lexicon_docs: 200,
            neighbors: 24,
            test_cap: 120,
            epochs: 5,
            synth_ratio: 2.0,
            synthetic_cap: 1500,
            seed: 0x5EED,
            jobs: 0,
            train_jobs: 1,
            sanitize: true,
            quantized: false,
        }
    }
}

/// The outcome of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Macro-F1 in points on the hold-out test set.
    pub macro_f1: f64,
    /// Micro-F1 in points.
    pub micro_f1: f64,
    /// Per-field F1 in points (`None` where the test set has no gold).
    pub per_field_f1: Vec<Option<f64>>,
    /// Synthetic documents generated by FieldSwap for this run.
    pub n_synthetics: usize,
    /// Training sample size (original documents).
    pub n_train_docs: usize,
}

/// Mean macro/micro-F1 over the protocol's repeated runs at one point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointSummary {
    /// Domain name (paper spelling).
    pub domain: String,
    /// Training set size.
    pub size: usize,
    /// Arm label.
    pub arm: String,
    /// Mean macro-F1 over all runs.
    pub macro_f1: f64,
    /// Mean micro-F1 over all runs.
    pub micro_f1: f64,
    /// Mean number of synthetic documents.
    pub synthetics: f64,
    /// Cells that panicked twice and were dropped from the averages.
    /// Non-zero means the means cover `runs.len()` successes, not the
    /// full protocol — reported rather than silently averaged over.
    pub failed_cells: usize,
    /// All individual runs.
    pub runs: Vec<ExperimentResult>,
}

/// A deterministic per-experiment seed, mixed purely from the master
/// seed and the experiment's grid coordinates. Because no scheduling
/// state enters the mix, a cell computes the same numbers whether it
/// runs first on one thread or last on sixteen.
pub fn cell_seed(
    master: u64,
    domain: Domain,
    size: usize,
    arm: Arm,
    sample_idx: usize,
    trial_idx: usize,
) -> u64 {
    mix_coords(
        master,
        &[
            domain as u64,
            size as u64,
            arm as u64,
            sample_idx as u64,
            trial_idx as u64,
        ],
    )
}

/// Folds coordinates into a master seed with a SplitMix64-style
/// avalanche per step, so neighboring grid cells get uncorrelated
/// streams. Also reused by [`crate::checkpoint`] to fingerprint
/// harness options.
pub(crate) fn mix_coords(master: u64, coords: &[u64]) -> u64 {
    let mut h = master ^ 0x9E37_79B9_7F4A_7C15;
    for &c in coords {
        let mut z = h.rotate_left(17) ^ c.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    }
    h
}

/// Stream separators so the independent random decisions inside one
/// experiment never share a seed.
const STREAM_SAMPLE: u64 = 0x5A;
const STREAM_TRAIN: u64 = 0x7A;
const STREAM_CAP: u64 = 0xCA;
const STREAM_VALUE_SWAP: u64 = 0xE5;

/// Immutable state shared by every experiment: built once in
/// [`Harness::new`], read concurrently by all workers.
struct Shared {
    /// Importance model pre-trained on out-of-domain invoices.
    importance: ImportanceModel,
    /// Unsupervised lexicon from the out-of-domain pass.
    lexicon: Lexicon,
}

/// Shared experiment state. Create one and reuse it for a whole sweep —
/// pre-training and corpus generation happen once.
///
/// All methods take `&self`: the immutable inputs (importance model,
/// lexicon) sit behind an [`Arc`], and the lazy caches (per-domain
/// pools, inferred phrase configs) are concurrent [`OnceMap`]s that
/// initialize each key exactly once regardless of how many workers race
/// on it. This is what lets [`run_point`](Self::run_point) and
/// [`run_grid`](Self::run_grid) fan experiments out across threads while
/// staying bit-identical to a serial run.
pub struct Harness {
    opts: HarnessOptions,
    shared: Arc<Shared>,
    /// (pool, test) per domain.
    data: OnceMap<Domain, Arc<(Corpus, Corpus)>>,
    /// Attacked test corpora per (domain, attack kind, strength bits),
    /// built once per key and shared by every robustness cell.
    attacked_tests: OnceMap<(Domain, AttackKind, u64), Arc<Corpus>>,
    /// Inferred phrase configs per (domain, size, sample).
    phrase_cache: OnceMap<(Domain, usize, usize), FieldSwapConfig>,
    /// On-disk per-cell result cache; when set, completed cells are
    /// persisted and consulted before computing (`--checkpoint-dir` /
    /// `--resume`).
    checkpoint: Option<CellCache>,
    /// Test hook: cells that should panic, with a remaining-failure
    /// count. Consulted *after* the cache, decremented per attempt, so a
    /// count of 1 exercises the retry path and a large count the
    /// failed-cell path.
    fail_injections: Mutex<HashMap<CellCoords, usize>>,
    /// Test hook: cells whose training should hit a non-finite epoch
    /// loss, exercising the trainer's divergence recovery end to end.
    diverge_injections: Mutex<HashSet<CellCoords>>,
}

impl Harness {
    /// Builds the harness: generates the invoice pre-training corpus,
    /// trains the importance model, and runs the unsupervised lexicon
    /// pass (all out-of-domain, per Section IV-B).
    pub fn new(opts: HarnessOptions) -> Self {
        let _span = fieldswap_obs::span("harness_build");
        let pretrain = generate_jobs(
            Domain::Invoices,
            opts.seed ^ 0xABCD,
            opts.pretrain_docs,
            opts.train_jobs,
        );
        let model_cfg = ModelConfig {
            neighbors: opts.neighbors,
            epochs: 2,
            train_jobs: opts.train_jobs,
            ..ModelConfig::default()
        };
        let mut importance = ImportanceModel::new(model_cfg, pretrain.schema.len(), opts.seed);
        {
            let _span = fieldswap_obs::span("pretrain_importance");
            importance.train(&pretrain, opts.seed ^ 0xF00D);
        }
        let lexicon = {
            let _span = fieldswap_obs::span("lexicon_pass");
            let lexicon_corpus = generate_jobs(
                Domain::Invoices,
                opts.seed ^ 0x1E81C0,
                opts.lexicon_docs,
                opts.train_jobs,
            );
            Lexicon::pretrain(&lexicon_corpus.documents)
        };
        Self {
            opts,
            shared: Arc::new(Shared {
                importance,
                lexicon,
            }),
            data: OnceMap::named("domain_data"),
            attacked_tests: OnceMap::named("attacked_tests"),
            phrase_cache: OnceMap::named("phrase_cache"),
            checkpoint: None,
            fail_injections: Mutex::new(HashMap::new()),
            diverge_injections: Mutex::new(HashSet::new()),
        }
    }

    /// The harness options.
    pub fn options(&self) -> &HarnessOptions {
        &self.opts
    }

    /// Attaches an on-disk cell cache: every completed cell is persisted,
    /// and already-persisted cells are returned without recomputation.
    /// Because cells are deterministic in their coordinates, a resumed
    /// grid is byte-identical to an uninterrupted one.
    pub fn attach_checkpoint(&mut self, cache: CellCache) {
        self.checkpoint = Some(cache);
    }

    /// The attached cell cache, if any.
    pub fn checkpoint(&self) -> Option<&CellCache> {
        self.checkpoint.as_ref()
    }

    /// Test hook: make a cell panic on its next `times` attempts. The
    /// injection sits between the cache lookup and the real computation,
    /// so `times = 1` exercises the worker retry and a larger count the
    /// failed-cell accounting.
    #[doc(hidden)]
    pub fn fail_cell_for_tests(&self, coords: CellCoords, times: usize) {
        self.fail_injections
            .lock()
            .expect("injection map poisoned")
            .insert(coords, times);
    }

    /// Test hook: force a cell's training to report a non-finite epoch
    /// loss, driving the trainer through its divergence recovery. The
    /// cell still completes — recovered, counted, logged — which is
    /// exactly the behavior the injection exists to prove.
    #[doc(hidden)]
    pub fn diverge_cell_for_tests(&self, coords: CellCoords) {
        self.diverge_injections
            .lock()
            .expect("divergence set poisoned")
            .insert(coords);
    }

    /// Test hook: pre-populate a domain's (pool, test) corpora instead of
    /// generating them — the injection point for feeding documents that
    /// fail `validate()` through the full grid. The injected corpora go
    /// through the same ingestion sanitization as generated ones.
    #[doc(hidden)]
    pub fn inject_domain_data_for_tests(&self, domain: Domain, pool: Corpus, test: Corpus) {
        let opts = self.opts;
        self.data
            .get_or_init(domain, || Arc::new(Self::ingest(&opts, pool, test)));
    }

    /// One cell through the cache: hit → cached result, miss → compute
    /// and persist. Panics (injected or organic) propagate to the worker
    /// pool's `catch_unwind`.
    fn run_cell(&self, coords: CellCoords) -> ExperimentResult {
        let (domain, size, arm, sample_idx, trial_idx) = coords;
        if let Some(cache) = &self.checkpoint {
            if let Some(hit) = cache.load(coords) {
                fieldswap_obs::counter_add("fieldswap_grid_cells_cached", 1);
                return hit;
            }
        }
        let inject = {
            // Decrement inside the lock, panic outside it: unwinding
            // while holding the guard would poison the map for every
            // other worker.
            let mut map = self.fail_injections.lock().expect("injection map poisoned");
            match map.get_mut(&coords) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    true
                }
                _ => false,
            }
        };
        if inject {
            panic!("injected failure for cell {coords:?}");
        }
        let result = self.run_single(domain, size, arm, sample_idx, trial_idx);
        if let Some(cache) = &self.checkpoint {
            cache.store_ok(coords, &result);
        }
        result
    }

    /// Records a double-panicked cell: an error log line, a diagnostic
    /// checkpoint record, and (via the caller) a slot in the summary's
    /// `failed_cells` count.
    pub(crate) fn note_failure(&self, coords: CellCoords, p: &SlotPanic) {
        fieldswap_obs::error!("grid cell {coords:?} failed after retry: {}", p.payload);
        if let Some(cache) = &self.checkpoint {
            cache.store_failed(coords, &p.payload);
        }
    }

    /// The (pool, test) corpora for a domain, generated on first use at
    /// the paper's Table I sizes (test capped per options). Concurrent
    /// callers block until the single in-flight generation finishes.
    pub fn domain_data(&self, domain: Domain) -> Arc<(Corpus, Corpus)> {
        let opts = self.opts;
        self.data.get_or_init(domain, || {
            let (pool, mut test) =
                fieldswap_datagen::generate_paper_splits_jobs(domain, opts.seed, opts.train_jobs);
            if opts.test_cap > 0 && test.len() > opts.test_cap {
                test.documents.truncate(opts.test_cap);
            }
            Arc::new(Self::ingest(&opts, pool, test))
        })
    }

    /// Corpus ingestion: the validation/repair gate every (pool, test)
    /// pair passes through, generated or injected. With `opts.sanitize`
    /// (the default) documents failing [`fieldswap_docmodel::Document::validate`]
    /// are repaired in place and counted; well-formed documents are
    /// untouched, byte for byte.
    fn ingest(opts: &HarnessOptions, mut pool: Corpus, mut test: Corpus) -> (Corpus, Corpus) {
        if opts.sanitize {
            let (pool_report, pool_docs) = pool.sanitize();
            let (test_report, test_docs) = test.sanitize();
            let docs = pool_docs + test_docs;
            if docs > 0 {
                fieldswap_obs::warn!(
                    "ingestion sanitized {docs} document(s) ({} repairs)",
                    pool_report.total() + test_report.total()
                );
                fieldswap_obs::counter_add("fieldswap_ingest_sanitized_docs_total", docs as u64);
            }
        }
        (pool, test)
    }

    /// The attacked variant of a domain's test set, built once per
    /// `(domain, kind, strength)` and shared across all robustness cells.
    /// Per-document attack seeds derive from the master seed and the
    /// document index (see [`fieldswap_core::attack_corpus`]), so the
    /// corpus is byte-identical across worker counts and resumes.
    pub fn attacked_test(&self, domain: Domain, spec: AttackSpec) -> Arc<Corpus> {
        let opts = self.opts;
        let data = self.domain_data(domain);
        self.attacked_tests
            .get_or_init((domain, spec.kind, spec.strength.to_bits()), || {
                let seed = mix_coords(opts.seed, &[domain as u64]);
                Arc::new(attack_corpus(&data.1, spec.kind, spec.strength, seed))
            })
    }

    /// The training sample for `(domain, size, sample_idx)`: a seeded
    /// random subset of the pool, identical across arms and trials.
    pub fn sample(&self, domain: Domain, size: usize, sample_idx: usize) -> Corpus {
        let seed = mix_coords(
            self.opts.seed,
            &[STREAM_SAMPLE, domain as u64, size as u64, sample_idx as u64],
        );
        let data = self.domain_data(domain);
        let pool = &data.0;
        let mut indices: Vec<usize> = (0..pool.len()).collect();
        indices.shuffle(&mut StdRng::seed_from_u64(seed));
        indices.truncate(size.min(pool.len()));
        pool.subset(&indices)
    }

    /// Automatically inferred key phrases for a sample (cached across
    /// arms and trials; the paper infers once per training set). Under
    /// concurrent access the inference for a key runs exactly once.
    fn inferred_phrases(&self, domain: Domain, size: usize, sample_idx: usize) -> FieldSwapConfig {
        self.phrase_cache
            .get_or_init((domain, size, sample_idx), || {
                let _span = fieldswap_obs::span("infer");
                let sample = self.sample(domain, size, sample_idx);
                let ranked = infer_key_phrases(
                    &self.shared.importance,
                    &sample,
                    &InferenceConfig::default(),
                );
                fieldswap_keyphrase::pipeline::to_fieldswap_config(&ranked)
            })
    }

    /// The FieldSwap configuration for an arm, or `None` for the baseline
    /// (and for the expert arm on unsupported domains).
    pub fn arm_config(
        &self,
        domain: Domain,
        size: usize,
        sample_idx: usize,
        arm: Arm,
    ) -> Option<FieldSwapConfig> {
        let schema = self.domain_data(domain).0.schema.clone();
        match arm {
            Arm::Baseline => None,
            Arm::HumanExpert => expert_config(domain, &schema),
            Arm::NameDerived => {
                let mut config = fieldswap_keyphrase::config_from_schema(&schema);
                config.set_pairs(PairStrategy::TypeToType.build(&schema, &config));
                Some(config)
            }
            Arm::AutoFieldToField
            | Arm::AutoTypeToType
            | Arm::AutoAllToAll
            | Arm::TypeToTypeValueSwap => {
                let mut config = self.inferred_phrases(domain, size, sample_idx);
                let strategy = match arm {
                    Arm::AutoFieldToField => PairStrategy::FieldToField,
                    Arm::AutoAllToAll => PairStrategy::AllToAll,
                    _ => PairStrategy::TypeToType,
                };
                config.set_pairs(strategy.build(&schema, &config));
                Some(config)
            }
        }
    }

    /// The training front half of one experiment, shared verbatim by
    /// [`run_single`](Self::run_single) and the robustness evaluation
    /// (`run_robustness_cell`): sample, configure, augment, and train —
    /// everything except the final evaluation. Identical spans, identical
    /// random draws, identical extractor.
    pub(crate) fn train_cell(
        &self,
        domain: Domain,
        size: usize,
        arm: Arm,
        sample_idx: usize,
        trial_idx: usize,
    ) -> (Extractor, usize) {
        let cell = cell_seed(self.opts.seed, domain, size, arm, sample_idx, trial_idx);
        let sample = {
            let _span = fieldswap_obs::span("sample");
            self.sample(domain, size, sample_idx)
        };
        let config = self.arm_config(domain, size, sample_idx, arm);
        let (mut synthetics, _stats) = {
            let _span = fieldswap_obs::span("augment");
            match &config {
                Some(c) => augment_corpus(&sample, c),
                None => (Vec::new(), Default::default()),
            }
        };
        if arm == Arm::TypeToTypeValueSwap {
            // The Section II-C extension: give relabeled instances values
            // drawn from their new field's observed value bank.
            let bank = fieldswap_core::ValueBank::collect(&sample);
            synthetics = synthetics
                .iter()
                .enumerate()
                .map(|(k, s)| {
                    fieldswap_core::apply_value_swap_all(
                        s,
                        &bank,
                        mix_coords(cell, &[STREAM_VALUE_SWAP, k as u64]),
                    )
                })
                .collect();
        }
        if self.opts.synthetic_cap > 0 && synthetics.len() > self.opts.synthetic_cap {
            let mut rng = StdRng::seed_from_u64(mix_coords(cell, &[STREAM_CAP]));
            synthetics.shuffle(&mut rng);
            synthetics.truncate(self.opts.synthetic_cap);
        }
        let n_synthetics = synthetics.len();
        let train_cfg = TrainConfig {
            epochs: self.opts.epochs,
            synth_ratio: self.opts.synth_ratio,
            // Deliberately excludes `arm`: all arms of one (sample, trial)
            // share a training seed — the paper's matched-training
            // control, so F1 deltas come from the data, not the draw.
            seed: mix_coords(
                self.opts.seed,
                &[
                    STREAM_TRAIN,
                    domain as u64,
                    size as u64,
                    sample_idx as u64,
                    trial_idx as u64,
                ],
            ),
            inject_nan_epoch_mask: {
                let injected = self
                    .diverge_injections
                    .lock()
                    .expect("divergence set poisoned")
                    .contains(&(domain, size, arm, sample_idx, trial_idx));
                if injected {
                    1 // epoch 0 diverges once; recovery replays it
                } else {
                    0
                }
            },
            train_jobs: self.opts.train_jobs,
            ..TrainConfig::default()
        };
        let schema = sample.schema.clone();
        let extractor = {
            let _span = fieldswap_obs::span("train");
            Extractor::train_on(
                &schema,
                self.shared.lexicon.clone(),
                &sample,
                &synthetics,
                &train_cfg,
            )
        };
        let report = extractor.train_report();
        if report.divergences > 0 {
            fieldswap_obs::warn!(
                "cell ({}, {size}, {}, {sample_idx}, {trial_idx}): training diverged {} time(s), \
                 {} retr{} used{}",
                domain.name(),
                arm.label(),
                report.divergences,
                report.retries,
                if report.retries == 1 { "y" } else { "ies" },
                if report.exhausted {
                    "; retry budget exhausted, weights scrubbed"
                } else {
                    ""
                }
            );
        }
        (extractor, n_synthetics)
    }

    /// Runs one experiment. Every random decision is seeded from the
    /// experiment's grid coordinates via [`cell_seed`], so the result is
    /// the same whether this cell runs serially or on a worker thread.
    pub fn run_single(
        &self,
        domain: Domain,
        size: usize,
        arm: Arm,
        sample_idx: usize,
        trial_idx: usize,
    ) -> ExperimentResult {
        let _cell_span = fieldswap_obs::span_tagged("cell", || {
            vec![
                ("domain", domain.name().to_string()),
                ("size", size.to_string()),
                ("arm", arm.label().to_string()),
                ("sample", sample_idx.to_string()),
                ("trial", trial_idx.to_string()),
            ]
        });
        let (extractor, n_synthetics) = self.train_cell(domain, size, arm, sample_idx, trial_idx);
        let data = self.domain_data(domain);
        let eval: EvalResult = {
            let _span = fieldswap_obs::span("eval");
            let mut frozen = extractor.freeze();
            if self.opts.quantized {
                frozen = frozen.quantize();
            }
            crate::metrics::evaluate_frozen(&frozen, &data.1)
        };
        ExperimentResult {
            macro_f1: eval.macro_f1(),
            micro_f1: eval.micro_f1(),
            per_field_f1: eval.per_field_f1(),
            n_synthetics,
            n_train_docs: size,
        }
    }

    /// Runs the full protocol for one `(domain, size, arm)` point:
    /// `n_samples x n_trials` experiments, averaged. Experiments fan out
    /// over `opts.jobs` workers; the summary is bit-identical to a serial
    /// run because each cell's randomness and output slot depend only on
    /// its coordinates. A cell that panics twice is dropped from the
    /// averages and counted in `failed_cells` while the rest of the
    /// point completes.
    pub fn run_point(&self, domain: Domain, size: usize, arm: Arm) -> PointSummary {
        let n_trials = self.opts.n_trials;
        let n_cells = self.opts.n_samples * n_trials;
        // Root span on the caller's thread: cell spans close on worker
        // threads, so this is what gives a trace its wall-clock root
        // (and `trace_report` its critical-path anchor).
        let _point_span = fieldswap_obs::span_tagged("point", || {
            vec![
                ("domain", domain.name().to_string()),
                ("size", size.to_string()),
                ("arm", arm.label().to_string()),
                ("cells", n_cells.to_string()),
                ("jobs", self.opts.jobs.to_string()),
            ]
        });
        let coords = |cell: usize| (domain, size, arm, cell / n_trials, cell % n_trials);
        let outcomes =
            par_try_map_indexed(n_cells, self.opts.jobs, |cell| self.run_cell(coords(cell)));
        let mut runs = Vec::with_capacity(n_cells);
        let mut failed = 0;
        for (cell, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(r) => runs.push(r),
                Err(p) => {
                    failed += 1;
                    self.note_failure(coords(cell), &p);
                }
            }
        }
        self.summarize(domain, size, arm, runs, failed)
    }

    /// Runs every `(domain, size, arm)` point of a grid, fanning *all*
    /// experiments of *all* points into one worker pool — so small points
    /// can't leave cores idle while a big point finishes. Summaries come
    /// back in the order of `points`, each reporting its own
    /// `failed_cells` count.
    pub fn run_grid(&self, points: &[(Domain, usize, Arm)]) -> Vec<PointSummary> {
        let n_trials = self.opts.n_trials;
        let per_point = self.opts.n_samples * n_trials;
        let _grid_span = fieldswap_obs::span_tagged("grid", || {
            vec![
                ("points", points.len().to_string()),
                ("cells", (points.len() * per_point).to_string()),
                ("jobs", self.opts.jobs.to_string()),
            ]
        });
        let coords = |i: usize| {
            let (domain, size, arm) = points[i / per_point];
            let cell = i % per_point;
            (domain, size, arm, cell / n_trials, cell % n_trials)
        };
        let outcomes = par_try_map_indexed(points.len() * per_point, self.opts.jobs, |i| {
            self.run_cell(coords(i))
        });
        let mut outcomes = outcomes.into_iter().enumerate();
        let mut out = Vec::with_capacity(points.len());
        for &(domain, size, arm) in points {
            let mut runs = Vec::with_capacity(per_point);
            let mut failed = 0;
            for (i, outcome) in outcomes.by_ref().take(per_point) {
                match outcome {
                    Ok(r) => runs.push(r),
                    Err(p) => {
                        failed += 1;
                        self.note_failure(coords(i), &p);
                    }
                }
            }
            out.push(self.summarize(domain, size, arm, runs, failed));
        }
        out
    }

    fn summarize(
        &self,
        domain: Domain,
        size: usize,
        arm: Arm,
        runs: Vec<ExperimentResult>,
        failed_cells: usize,
    ) -> PointSummary {
        if failed_cells > 0 {
            fieldswap_obs::warn!(
                "({}, {}, {}): {} cell(s) failed; means cover {} success(es) only",
                domain.name(),
                size,
                arm.label(),
                failed_cells,
                runs.len()
            );
        }
        // Guard the all-cells-failed case: 0.0, not 0/0 — NaN would be
        // unrepresentable in the JSON reports.
        let mean = |sum: f64| {
            if runs.is_empty() {
                0.0
            } else {
                sum / runs.len() as f64
            }
        };
        PointSummary {
            domain: domain.name().to_string(),
            size,
            arm: arm.label().to_string(),
            macro_f1: mean(runs.iter().map(|r| r.macro_f1).sum::<f64>()),
            micro_f1: mean(runs.iter().map(|r| r.micro_f1).sum::<f64>()),
            synthetics: mean(runs.iter().map(|r| r.n_synthetics as f64).sum::<f64>()),
            failed_cells,
            runs,
        }
    }

    /// Counts synthetic documents for one point without training — the
    /// Table III measurement (averaged over samples, in parallel).
    pub fn count_synthetics(&self, domain: Domain, size: usize, arm: Arm) -> f64 {
        let n = self.opts.n_samples;
        let counts = par_map_indexed(n, self.opts.jobs, |sample_idx| {
            let sample = self.sample(domain, size, sample_idx);
            match self.arm_config(domain, size, sample_idx, arm) {
                Some(c) => augment_corpus(&sample, &c).0.len(),
                None => 0,
            }
        });
        counts.iter().sum::<usize>() as f64 / n as f64
    }
}

// The whole point of the `&self` refactor: a `Harness` reference can be
// handed to worker threads. Compile-time proof.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<Harness>();
    assert_sync_send::<HarnessOptions>();
    assert_sync_send::<PointSummary>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> HarnessOptions {
        HarnessOptions {
            n_samples: 1,
            n_trials: 1,
            pretrain_docs: 30,
            lexicon_docs: 50,
            neighbors: 12,
            test_cap: 40,
            epochs: 3,
            synth_ratio: 2.0,
            synthetic_cap: 300,
            seed: 0x7E57,
            jobs: 1,
            train_jobs: 1,
            sanitize: true,
            quantized: false,
        }
    }

    #[test]
    fn quantized_scores_stay_close_to_f32() {
        // The int8 emission table is an approximation; this guards the
        // accuracy contract behind `HarnessOptions::quantized` (and the CI
        // quantization gate) on a small trained cell.
        let h = Harness::new(tiny_options());
        let (extractor, _) = h.train_cell(Domain::Earnings, 12, Arm::Baseline, 0, 0);
        let data = h.domain_data(Domain::Earnings);
        let frozen = extractor.freeze();
        let exact = crate::metrics::evaluate_frozen(&frozen, &data.1);
        let quant = crate::metrics::evaluate_frozen(&frozen.quantize(), &data.1);
        let delta = (exact.macro_f1() - quant.macro_f1()).abs();
        assert!(
            delta <= crate::metrics::QUANT_MACRO_F1_EPSILON,
            "quantized macro-F1 drifted {delta:.3} points (exact {:.3}, quantized {:.3})",
            exact.macro_f1(),
            quant.macro_f1()
        );
    }

    #[test]
    fn baseline_experiment_runs() {
        let h = Harness::new(tiny_options());
        let r = h.run_single(Domain::Fara, 10, Arm::Baseline, 0, 0);
        assert_eq!(r.n_synthetics, 0);
        assert_eq!(r.n_train_docs, 10);
        assert!(r.macro_f1 >= 0.0 && r.macro_f1 <= 100.0);
        assert!(r.micro_f1 >= 0.0 && r.micro_f1 <= 100.0);
    }

    #[test]
    fn augmented_arm_generates_synthetics() {
        let h = Harness::new(tiny_options());
        let r = h.run_single(Domain::Earnings, 10, Arm::HumanExpert, 0, 0);
        assert!(r.n_synthetics > 0, "expert arm produced no synthetics");
    }

    #[test]
    fn type_to_type_produces_more_than_field_to_field() {
        let h = Harness::new(tiny_options());
        let f2f = h.count_synthetics(Domain::Earnings, 20, Arm::AutoFieldToField);
        let t2t = h.count_synthetics(Domain::Earnings, 20, Arm::AutoTypeToType);
        assert!(
            t2t > f2f,
            "t2t ({t2t}) should generate more synthetics than f2f ({f2f})"
        );
    }

    #[test]
    fn samples_are_deterministic_and_distinct() {
        let h = Harness::new(tiny_options());
        let a = h.sample(Domain::Fara, 10, 0);
        let b = h.sample(Domain::Fara, 10, 0);
        let c = h.sample(Domain::Fara, 10, 1);
        assert_eq!(a.documents, b.documents);
        assert_ne!(a.documents, c.documents);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn expert_arm_unsupported_domain_falls_back_to_none() {
        let h = Harness::new(tiny_options());
        assert!(h
            .arm_config(Domain::Fara, 10, 0, Arm::HumanExpert)
            .is_none());
        assert!(h.arm_config(Domain::Fara, 10, 0, Arm::Baseline).is_none());
    }

    #[test]
    fn phrase_cache_hits() {
        let h = Harness::new(tiny_options());
        let a = h.arm_config(Domain::Fara, 10, 0, Arm::AutoTypeToType);
        let b = h.arm_config(Domain::Fara, 10, 0, Arm::AutoFieldToField);
        // Same inferred phrases behind both arms.
        let (a, b) = (a.unwrap(), b.unwrap());
        for f in 0..a.n_fields() {
            assert_eq!(a.phrases(f as u16), b.phrases(f as u16));
        }
        assert_eq!(h.phrase_cache.len(), 1);
        assert_eq!(h.phrase_cache.init_count(), 1, "inference ran twice");
    }

    #[test]
    fn phrase_cache_initializes_once_under_concurrency() {
        let h = Harness::new(tiny_options());
        // Eight threads race on the same (domain, size, sample) key via
        // two different arms; inference must run exactly once.
        std::thread::scope(|s| {
            for i in 0..8 {
                let h = &h;
                s.spawn(move || {
                    let arm = if i % 2 == 0 {
                        Arm::AutoTypeToType
                    } else {
                        Arm::AutoFieldToField
                    };
                    assert!(h.arm_config(Domain::Fara, 10, 0, arm).is_some());
                });
            }
        });
        assert_eq!(h.phrase_cache.len(), 1);
        assert_eq!(h.phrase_cache.init_count(), 1, "racing init ran twice");
    }

    #[test]
    fn run_point_averages_runs() {
        let mut opts = tiny_options();
        opts.n_trials = 2;
        let h = Harness::new(opts);
        let p = h.run_point(Domain::Fara, 10, Arm::Baseline);
        assert_eq!(p.runs.len(), 2);
        let mean = (p.runs[0].macro_f1 + p.runs[1].macro_f1) / 2.0;
        assert!((p.macro_f1 - mean).abs() < 1e-9);
        assert_eq!(p.domain, "FARA");
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let mut opts = tiny_options();
        opts.n_samples = 2;
        opts.n_trials = 2;

        opts.jobs = 1;
        let serial = Harness::new(opts);
        let s = serial.run_point(Domain::Earnings, 10, Arm::AutoTypeToType);

        opts.jobs = 4;
        let parallel = Harness::new(opts);
        let p = parallel.run_point(Domain::Earnings, 10, Arm::AutoTypeToType);

        // PartialEq over every field, including each run's full
        // per-field F1 vector: bit-identical, not approximately equal.
        assert_eq!(s, p);
    }

    #[test]
    fn parallel_training_run_is_bit_identical_to_serial() {
        // Unlike `jobs` (which shards whole cells), `train_jobs` threads
        // the training loops *inside* a cell: corpus rendering, the
        // perceptron decode windows, and the importance-model gradient
        // batches. The end-to-end summary must not move by a single bit.
        let mut opts = tiny_options();
        opts.n_trials = 2;

        opts.train_jobs = 1;
        let s = Harness::new(opts).run_point(Domain::Earnings, 10, Arm::AutoTypeToType);

        opts.train_jobs = 4;
        let p = Harness::new(opts).run_point(Domain::Earnings, 10, Arm::AutoTypeToType);

        assert_eq!(s, p);
    }

    #[test]
    fn run_grid_matches_point_by_point() {
        let mut opts = tiny_options();
        opts.jobs = 4;
        let h = Harness::new(opts);
        let points = [
            (Domain::Fara, 10, Arm::Baseline),
            (Domain::Fara, 20, Arm::Baseline),
        ];
        let grid = h.run_grid(&points);
        assert_eq!(grid.len(), 2);
        for ((domain, size, arm), summary) in points.iter().zip(&grid) {
            assert_eq!(summary, &h.run_point(*domain, *size, *arm));
        }
    }

    #[test]
    fn injected_panic_fails_cell_but_grid_survives() {
        let mut opts = tiny_options();
        opts.n_trials = 2;
        opts.jobs = 2;
        let h = Harness::new(opts);
        // Panic persistently: first attempt AND retry both die.
        h.fail_cell_for_tests((Domain::Fara, 10, Arm::Baseline, 0, 1), usize::MAX);
        let p = h.run_point(Domain::Fara, 10, Arm::Baseline);
        assert_eq!(p.failed_cells, 1);
        assert_eq!(p.runs.len(), 1, "surviving cell still reported");
        // The surviving cell matches what a clean harness computes.
        let clean = Harness::new(tiny_options());
        let expect = clean.run_single(Domain::Fara, 10, Arm::Baseline, 0, 0);
        assert_eq!(p.runs[0], expect);
        assert_eq!(p.macro_f1, expect.macro_f1, "mean over successes only");
    }

    #[test]
    fn transient_injected_panic_is_retried_to_success() {
        let mut opts = tiny_options();
        opts.n_trials = 2;
        let h = Harness::new(opts);
        // One failure: the first attempt panics, the retry computes.
        h.fail_cell_for_tests((Domain::Fara, 10, Arm::Baseline, 0, 0), 1);
        let p = h.run_point(Domain::Fara, 10, Arm::Baseline);
        assert_eq!(p.failed_cells, 0);
        assert_eq!(p.runs.len(), 2);
        let clean = Harness::new({
            let mut o = tiny_options();
            o.n_trials = 2;
            o
        });
        assert_eq!(p, clean.run_point(Domain::Fara, 10, Arm::Baseline));
    }

    #[test]
    fn all_cells_failed_reports_zeroed_means_not_nan() {
        let h = Harness::new(tiny_options());
        h.fail_cell_for_tests((Domain::Fara, 10, Arm::Baseline, 0, 0), usize::MAX);
        let p = h.run_point(Domain::Fara, 10, Arm::Baseline);
        assert_eq!(p.failed_cells, 1);
        assert!(p.runs.is_empty());
        assert_eq!(p.macro_f1, 0.0);
        // The summary must stay representable in the JSON reports.
        assert!(serde_json::to_string(&p).is_ok());
    }

    #[test]
    fn cell_seeds_are_distinct_across_coordinates() {
        let mut seen = std::collections::HashSet::new();
        for size in [10, 50] {
            for arm in [Arm::Baseline, Arm::AutoTypeToType] {
                for sample in 0..3 {
                    for trial in 0..3 {
                        assert!(seen.insert(cell_seed(
                            0x5EED,
                            Domain::Fara,
                            size,
                            arm,
                            sample,
                            trial
                        )));
                    }
                }
            }
        }
        assert_eq!(seen.len(), 2 * 2 * 3 * 3);
    }
}
