//! The experiment runner: the paper's protocol (Section IV-B) end to end.
//!
//! One *experiment* is `(domain, train size, arm, sample, trial)`:
//!
//! 1. sample `N` documents from the domain's training pool (3 different
//!    samples per point);
//! 2. obtain a FieldSwap configuration — inferred automatically from the
//!    sample via the pre-trained importance model, or supplied by the
//!    human expert;
//! 3. augment the sample with FieldSwap;
//! 4. train the sequence-labeling backbone on originals + synthetics
//!    (3 training trials per sample, varying only the training seed; both
//!    arms get the same per-epoch document budget — the "same training
//!    time" control);
//! 5. evaluate end-to-end on the fixed hold-out test set.
//!
//! Shared state — the importance model pre-trained on out-of-domain
//! invoices, the unsupervised lexicon, the per-domain pools/test sets, and
//! the per-(domain, size, sample) inferred phrase cache — lives in
//! [`Harness`].

use crate::expert::expert_config;
use crate::metrics::{evaluate, EvalResult};
use fieldswap_core::{augment_corpus, FieldSwapConfig, PairStrategy};
use fieldswap_datagen::{generate, Domain};
use fieldswap_docmodel::Corpus;
use fieldswap_extract::{Extractor, Lexicon, TrainConfig};
use fieldswap_keyphrase::{infer_key_phrases, ImportanceModel, InferenceConfig, ModelConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The experimental arms of Fig. 4 / Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arm {
    /// No augmentation.
    Baseline,
    /// FieldSwap with automatically inferred phrases, field-to-field.
    AutoFieldToField,
    /// FieldSwap with automatically inferred phrases, type-to-type.
    AutoTypeToType,
    /// FieldSwap with automatically inferred phrases, all-to-all (the
    /// ablation the paper reports as "nearly always worse").
    AutoAllToAll,
    /// FieldSwap with the human-expert configuration (Earnings and Loan
    /// Payments only).
    HumanExpert,
    /// Extension (paper Section VI): phrases derived from field *names*
    /// by the simulated-LLM expander — zero annotations needed.
    NameDerived,
    /// Extension (paper Section II-C): type-to-type FieldSwap with the
    /// value-swap post-pass — relabeled instances receive values sampled
    /// from the target field's observed values.
    TypeToTypeValueSwap,
}

impl Arm {
    /// Label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Arm::Baseline => "baseline",
            Arm::AutoFieldToField => "fieldswap (field-to-field)",
            Arm::AutoTypeToType => "fieldswap (type-to-type)",
            Arm::AutoAllToAll => "fieldswap (all-to-all)",
            Arm::HumanExpert => "fieldswap (human expert)",
            Arm::NameDerived => "fieldswap (name-derived phrases)",
            Arm::TypeToTypeValueSwap => "fieldswap (t2t + value swap)",
        }
    }
}

/// Harness-level knobs. `quick()` trades protocol fidelity for wall-clock
/// time; `full()` follows the paper's 3x3 protocol.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOptions {
    /// Document samples per (domain, size) point (paper: 3).
    pub n_samples: usize,
    /// Training trials per sample (paper: 3).
    pub n_trials: usize,
    /// Size of the invoice corpus used to pre-train the importance model.
    pub pretrain_docs: usize,
    /// Size of the unlabeled corpus for the lexicon pass.
    pub lexicon_docs: usize,
    /// Neighbors per candidate in the importance model (paper: 100).
    pub neighbors: usize,
    /// Cap on test-set size (0 = the full Table I test set).
    pub test_cap: usize,
    /// Backbone training epochs.
    pub epochs: usize,
    /// Synthetic documents per original per epoch (the baseline repeats
    /// originals to match total updates).
    pub synth_ratio: f32,
    /// Cap on synthetic documents fed to training (0 = no cap); the
    /// per-epoch budget already equalizes exposure, this only bounds
    /// feature-extraction memory.
    pub synthetic_cap: usize,
    /// Master seed.
    pub seed: u64,
}

impl HarnessOptions {
    /// The paper's protocol: 3 samples x 3 trials, full test sets.
    pub fn full() -> Self {
        Self {
            n_samples: 3,
            n_trials: 3,
            pretrain_docs: 400,
            lexicon_docs: 1000,
            neighbors: 100,
            test_cap: 0,
            epochs: 8,
            synth_ratio: 2.0,
            synthetic_cap: 4000,
            seed: 0x5EED,
        }
    }

    /// A reduced 1x1 protocol for smoke runs and benches.
    pub fn quick() -> Self {
        Self {
            n_samples: 1,
            n_trials: 1,
            pretrain_docs: 80,
            lexicon_docs: 200,
            neighbors: 24,
            test_cap: 120,
            epochs: 5,
            synth_ratio: 2.0,
            synthetic_cap: 1500,
            seed: 0x5EED,
        }
    }
}

/// The outcome of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Macro-F1 in points on the hold-out test set.
    pub macro_f1: f64,
    /// Micro-F1 in points.
    pub micro_f1: f64,
    /// Per-field F1 in points (`None` where the test set has no gold).
    pub per_field_f1: Vec<Option<f64>>,
    /// Synthetic documents generated by FieldSwap for this run.
    pub n_synthetics: usize,
    /// Training sample size (original documents).
    pub n_train_docs: usize,
}

/// Mean macro/micro-F1 over the protocol's repeated runs at one point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointSummary {
    /// Domain name (paper spelling).
    pub domain: String,
    /// Training set size.
    pub size: usize,
    /// Arm label.
    pub arm: String,
    /// Mean macro-F1 over all runs.
    pub macro_f1: f64,
    /// Mean micro-F1 over all runs.
    pub micro_f1: f64,
    /// Mean number of synthetic documents.
    pub synthetics: f64,
    /// All individual runs.
    pub runs: Vec<ExperimentResult>,
}

/// Shared experiment state. Create one and reuse it for a whole sweep —
/// pre-training and corpus generation happen once.
pub struct Harness {
    opts: HarnessOptions,
    importance: ImportanceModel,
    lexicon: Lexicon,
    /// (pool, test) per domain.
    data: HashMap<Domain, (Corpus, Corpus)>,
    /// Inferred phrase configs per (domain, size, sample).
    phrase_cache: HashMap<(Domain, usize, usize), FieldSwapConfig>,
}

impl Harness {
    /// Builds the harness: generates the invoice pre-training corpus,
    /// trains the importance model, and runs the unsupervised lexicon
    /// pass (all out-of-domain, per Section IV-B).
    pub fn new(opts: HarnessOptions) -> Self {
        let pretrain = generate(Domain::Invoices, opts.seed ^ 0xABCD, opts.pretrain_docs);
        let model_cfg = ModelConfig {
            neighbors: opts.neighbors,
            epochs: 2,
            ..ModelConfig::default()
        };
        let mut importance = ImportanceModel::new(model_cfg, pretrain.schema.len(), opts.seed);
        importance.train(&pretrain, opts.seed ^ 0xF00D);
        let lexicon_corpus = generate(Domain::Invoices, opts.seed ^ 0x1E81C0, opts.lexicon_docs);
        let lexicon = Lexicon::pretrain(&lexicon_corpus.documents);
        Self {
            opts,
            importance,
            lexicon,
            data: HashMap::new(),
            phrase_cache: HashMap::new(),
        }
    }

    /// The harness options.
    pub fn options(&self) -> &HarnessOptions {
        &self.opts
    }

    /// The (pool, test) corpora for a domain, generated on first use at
    /// the paper's Table I sizes (test capped per options).
    pub fn domain_data(&mut self, domain: Domain) -> &(Corpus, Corpus) {
        let opts = self.opts;
        self.data.entry(domain).or_insert_with(|| {
            let (pool, mut test) = fieldswap_datagen::generate_paper_splits(domain, opts.seed);
            if opts.test_cap > 0 && test.len() > opts.test_cap {
                test.documents.truncate(opts.test_cap);
            }
            (pool, test)
        })
    }

    /// The training sample for `(domain, size, sample_idx)`: a seeded
    /// random subset of the pool.
    pub fn sample(&mut self, domain: Domain, size: usize, sample_idx: usize) -> Corpus {
        let seed = self
            .opts
            .seed
            .wrapping_mul(31)
            .wrapping_add((domain as u64) << 24)
            .wrapping_add((size as u64) << 8)
            .wrapping_add(sample_idx as u64);
        let (pool, _) = self.domain_data(domain);
        let mut indices: Vec<usize> = (0..pool.len()).collect();
        indices.shuffle(&mut StdRng::seed_from_u64(seed));
        indices.truncate(size.min(pool.len()));
        pool.subset(&indices)
    }

    /// Automatically inferred key phrases for a sample (cached across
    /// arms and trials; the paper infers once per training set).
    fn inferred_phrases(&mut self, domain: Domain, size: usize, sample_idx: usize) -> FieldSwapConfig {
        if let Some(c) = self.phrase_cache.get(&(domain, size, sample_idx)) {
            return c.clone();
        }
        let sample = self.sample(domain, size, sample_idx);
        let ranked = infer_key_phrases(&self.importance, &sample, &InferenceConfig::default());
        let config = fieldswap_keyphrase::pipeline::to_fieldswap_config(&ranked);
        self.phrase_cache
            .insert((domain, size, sample_idx), config.clone());
        config
    }

    /// The FieldSwap configuration for an arm, or `None` for the baseline
    /// (and for the expert arm on unsupported domains).
    pub fn arm_config(
        &mut self,
        domain: Domain,
        size: usize,
        sample_idx: usize,
        arm: Arm,
    ) -> Option<FieldSwapConfig> {
        let schema = self.domain_data(domain).0.schema.clone();
        match arm {
            Arm::Baseline => None,
            Arm::HumanExpert => expert_config(domain, &schema),
            Arm::NameDerived => {
                let mut config = fieldswap_keyphrase::config_from_schema(&schema);
                config.set_pairs(PairStrategy::TypeToType.build(&schema, &config));
                Some(config)
            }
            Arm::AutoFieldToField
            | Arm::AutoTypeToType
            | Arm::AutoAllToAll
            | Arm::TypeToTypeValueSwap => {
                let mut config = self.inferred_phrases(domain, size, sample_idx);
                let strategy = match arm {
                    Arm::AutoFieldToField => PairStrategy::FieldToField,
                    Arm::AutoAllToAll => PairStrategy::AllToAll,
                    _ => PairStrategy::TypeToType,
                };
                config.set_pairs(strategy.build(&schema, &config));
                Some(config)
            }
        }
    }

    /// Runs one experiment.
    pub fn run_single(
        &mut self,
        domain: Domain,
        size: usize,
        arm: Arm,
        sample_idx: usize,
        trial_idx: usize,
    ) -> ExperimentResult {
        let sample = self.sample(domain, size, sample_idx);
        let config = self.arm_config(domain, size, sample_idx, arm);
        let (mut synthetics, _stats) = match &config {
            Some(c) => augment_corpus(&sample, c),
            None => (Vec::new(), Default::default()),
        };
        if arm == Arm::TypeToTypeValueSwap {
            // The Section II-C extension: give relabeled instances values
            // drawn from their new field's observed value bank.
            let bank = fieldswap_core::ValueBank::collect(&sample);
            synthetics = synthetics
                .iter()
                .enumerate()
                .map(|(k, s)| {
                    fieldswap_core::apply_value_swap_all(s, &bank, self.opts.seed ^ k as u64)
                })
                .collect();
        }
        if self.opts.synthetic_cap > 0 && synthetics.len() > self.opts.synthetic_cap {
            let mut rng = StdRng::seed_from_u64(self.opts.seed ^ 0xCA9);
            synthetics.shuffle(&mut rng);
            synthetics.truncate(self.opts.synthetic_cap);
        }
        let n_synthetics = synthetics.len();
        let train_cfg = TrainConfig {
            epochs: self.opts.epochs,
            synth_ratio: self.opts.synth_ratio,
            seed: self
                .opts
                .seed
                .wrapping_add(trial_idx as u64)
                .wrapping_add((sample_idx as u64) << 32),
        };
        let schema = sample.schema.clone();
        let extractor = Extractor::train_on(
            &schema,
            self.lexicon.clone(),
            &sample,
            &synthetics,
            &train_cfg,
        );
        let test = &self.domain_data(domain).1;
        let eval: EvalResult = evaluate(&extractor, test);
        ExperimentResult {
            macro_f1: eval.macro_f1(),
            micro_f1: eval.micro_f1(),
            per_field_f1: eval.per_field_f1(),
            n_synthetics,
            n_train_docs: size,
        }
    }

    /// Runs the full protocol for one `(domain, size, arm)` point:
    /// `n_samples x n_trials` experiments, averaged.
    pub fn run_point(&mut self, domain: Domain, size: usize, arm: Arm) -> PointSummary {
        let mut runs = Vec::new();
        for sample_idx in 0..self.opts.n_samples {
            for trial_idx in 0..self.opts.n_trials {
                runs.push(self.run_single(domain, size, arm, sample_idx, trial_idx));
            }
        }
        let n = runs.len() as f64;
        PointSummary {
            domain: domain.name().to_string(),
            size,
            arm: arm.label().to_string(),
            macro_f1: runs.iter().map(|r| r.macro_f1).sum::<f64>() / n,
            micro_f1: runs.iter().map(|r| r.micro_f1).sum::<f64>() / n,
            synthetics: runs.iter().map(|r| r.n_synthetics as f64).sum::<f64>() / n,
            runs,
        }
    }

    /// Counts synthetic documents for one point without training — the
    /// Table III measurement (averaged over samples).
    pub fn count_synthetics(&mut self, domain: Domain, size: usize, arm: Arm) -> f64 {
        let mut total = 0usize;
        let n = self.opts.n_samples;
        for sample_idx in 0..n {
            let sample = self.sample(domain, size, sample_idx);
            if let Some(c) = self.arm_config(domain, size, sample_idx, arm) {
                let (synths, _) = augment_corpus(&sample, &c);
                total += synths.len();
            }
        }
        total as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> HarnessOptions {
        HarnessOptions {
            n_samples: 1,
            n_trials: 1,
            pretrain_docs: 30,
            lexicon_docs: 50,
            neighbors: 12,
            test_cap: 40,
            epochs: 3,
            synth_ratio: 2.0,
            synthetic_cap: 300,
            seed: 0x7E57,
        }
    }

    #[test]
    fn baseline_experiment_runs() {
        let mut h = Harness::new(tiny_options());
        let r = h.run_single(Domain::Fara, 10, Arm::Baseline, 0, 0);
        assert_eq!(r.n_synthetics, 0);
        assert_eq!(r.n_train_docs, 10);
        assert!(r.macro_f1 >= 0.0 && r.macro_f1 <= 100.0);
        assert!(r.micro_f1 >= 0.0 && r.micro_f1 <= 100.0);
    }

    #[test]
    fn augmented_arm_generates_synthetics() {
        let mut h = Harness::new(tiny_options());
        let r = h.run_single(Domain::Earnings, 10, Arm::HumanExpert, 0, 0);
        assert!(r.n_synthetics > 0, "expert arm produced no synthetics");
    }

    #[test]
    fn type_to_type_produces_more_than_field_to_field() {
        let mut h = Harness::new(tiny_options());
        let f2f = h.count_synthetics(Domain::Earnings, 20, Arm::AutoFieldToField);
        let t2t = h.count_synthetics(Domain::Earnings, 20, Arm::AutoTypeToType);
        assert!(
            t2t > f2f,
            "t2t ({t2t}) should generate more synthetics than f2f ({f2f})"
        );
    }

    #[test]
    fn samples_are_deterministic_and_distinct() {
        let mut h = Harness::new(tiny_options());
        let a = h.sample(Domain::Fara, 10, 0);
        let b = h.sample(Domain::Fara, 10, 0);
        let c = h.sample(Domain::Fara, 10, 1);
        assert_eq!(a.documents, b.documents);
        assert_ne!(a.documents, c.documents);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn expert_arm_unsupported_domain_falls_back_to_none() {
        let mut h = Harness::new(tiny_options());
        assert!(h.arm_config(Domain::Fara, 10, 0, Arm::HumanExpert).is_none());
        assert!(h.arm_config(Domain::Fara, 10, 0, Arm::Baseline).is_none());
    }

    #[test]
    fn phrase_cache_hits() {
        let mut h = Harness::new(tiny_options());
        let a = h.arm_config(Domain::Fara, 10, 0, Arm::AutoTypeToType);
        let b = h.arm_config(Domain::Fara, 10, 0, Arm::AutoFieldToField);
        // Same inferred phrases behind both arms.
        let (a, b) = (a.unwrap(), b.unwrap());
        for f in 0..a.n_fields() {
            assert_eq!(a.phrases(f as u16), b.phrases(f as u16));
        }
        assert_eq!(h.phrase_cache.len(), 1);
    }

    #[test]
    fn run_point_averages_runs() {
        let mut opts = tiny_options();
        opts.n_trials = 2;
        let mut h = Harness::new(opts);
        let p = h.run_point(Domain::Fara, 10, Arm::Baseline);
        assert_eq!(p.runs.len(), 2);
        let mean = (p.runs[0].macro_f1 + p.runs[1].macro_f1) / 2.0;
        assert!((p.macro_f1 - mean).abs() < 1e-9);
        assert_eq!(p.domain, "FARA");
    }
}
