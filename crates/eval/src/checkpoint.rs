//! Per-cell result persistence for crash-resilient, resumable grids.
//!
//! A full-protocol grid is hours of compute made of thousands of
//! independent cells; losing the whole run to a crash at cell 2,993 is
//! unacceptable. This module stores each completed
//! `(domain, size, arm, sample, trial)` cell as one small JSON file in a
//! checkpoint directory, keyed by the grid coordinates *and* a
//! fingerprint of the [`HarnessOptions`] that produced it — a cache can
//! never leak results across protocols, seeds, or model sizes.
//!
//! The write is atomic (temp file + rename in the same directory), so a
//! run killed mid-write leaves either the previous state or the complete
//! new record, never a torn file. Unreadable or corrupt records are
//! treated as misses: the worst a damaged cache can do is recompute.
//!
//! Failed cells (a worker that panicked twice, see
//! [`crate::parallel::par_try_map_indexed`]) are recorded too — under a
//! distinct `.failed.json` suffix so they are *diagnostic only*: a
//! resumed run always re-attempts them rather than trusting a panic.
//!
//! Because every cell's randomness derives purely from its coordinates
//! (see [`crate::runner::cell_seed`]), a run resumed from a checkpoint
//! directory is byte-identical to an uninterrupted run: the cached cells
//! are the exact values the live cells would have produced.

use crate::robustness::{AttackSpec, RobustnessResult};
use crate::runner::{mix_coords, Arm, ExperimentResult, HarnessOptions};
use fieldswap_datagen::Domain;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// Record-format version; bumped whenever [`CellRecord`]'s shape or
/// semantics change, so stale caches read as misses instead of
/// mis-parsing.
const CELL_SCHEMA_VERSION: i64 = 2;

/// Record-format version for robustness cells, independent of the plain
/// cell schema so the two record families can evolve separately.
const ROBUSTNESS_SCHEMA_VERSION: i64 = 1;

/// Fingerprints every option that can influence a cell's result.
///
/// `jobs` and `train_jobs` are deliberately excluded: results are
/// bit-identical for every worker count — each cell's randomness derives
/// purely from its grid coordinates, and the in-training fan-out keeps a
/// fixed reduction order (see `fieldswap_extract::TRAIN_BATCH`) — so a
/// grid checkpointed with `--jobs 8 --train-jobs 8` must resume cleanly
/// under `--jobs 1 --train-jobs 1` and vice versa. The float knob goes
/// in via `to_bits`, which distinguishes every representable value
/// without rounding surprises.
pub fn options_fingerprint(opts: &HarnessOptions) -> u64 {
    mix_coords(
        0xC3EC_4901_7E57_0001 ^ CELL_SCHEMA_VERSION as u64,
        &[
            opts.n_samples as u64,
            opts.n_trials as u64,
            opts.pretrain_docs as u64,
            opts.lexicon_docs as u64,
            opts.neighbors as u64,
            opts.test_cap as u64,
            opts.epochs as u64,
            opts.synth_ratio.to_bits() as u64,
            opts.synthetic_cap as u64,
            opts.seed,
            opts.sanitize as u64,
            opts.quantized as u64,
        ],
    )
}

/// Fingerprints an attack suite — kinds and strengths, in order — so
/// robustness records cached for one `--attacks`/`--attack-strength`
/// combination can never satisfy a lookup for another.
pub fn attacks_fingerprint(attacks: &[AttackSpec]) -> u64 {
    let mut coords = Vec::with_capacity(attacks.len() * 2 + 1);
    coords.push(attacks.len() as u64);
    for a in attacks {
        coords.push(a.kind.index());
        coords.push(a.strength.to_bits());
    }
    mix_coords(
        0xA77A_C3ED_7E57_0002 ^ ROBUSTNESS_SCHEMA_VERSION as u64,
        &coords,
    )
}

/// One persisted cell. Flat named-field struct (the vendored serde
/// derive's sweet spot); exactly one of `ok` / `panic` is set.
///
/// `opts_hash` is hex text rather than a JSON number: the vendored JSON
/// layer stores integers as `i64`, and a 64-bit fingerprint can exceed
/// that range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CellRecord {
    schema_version: i64,
    opts_hash: String,
    domain: String,
    size: i64,
    arm: String,
    sample: i64,
    trial: i64,
    ok: Option<ExperimentResult>,
    panic: Option<String>,
}

/// One persisted robustness cell: the clean and per-attack F1s of a
/// trained cell, keyed by the grid coordinates, the options fingerprint,
/// *and* the attack-suite fingerprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct RobustnessRecord {
    schema_version: i64,
    opts_hash: String,
    attacks_hash: String,
    domain: String,
    size: i64,
    arm: String,
    sample: i64,
    trial: i64,
    ok: Option<RobustnessResult>,
}

/// Grid coordinates of one cell, as the cache addresses them.
pub type CellCoords = (Domain, usize, Arm, usize, usize);

/// An on-disk cache of completed grid cells.
///
/// Multiple worker threads write concurrently without coordination: each
/// cell has its own file, and each write is a temp-file-plus-rename.
/// Write failures are reported through `fieldswap-obs` and otherwise
/// ignored — checkpointing is belt-and-braces, never a reason to lose
/// the in-memory run.
#[derive(Debug, Clone)]
pub struct CellCache {
    dir: PathBuf,
    opts_hash: u64,
}

impl CellCache {
    /// Opens (creating if needed) a checkpoint directory for runs with
    /// these options. This is the `--checkpoint-dir` entry point.
    pub fn create(dir: impl Into<PathBuf>, opts: &HarnessOptions) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            opts_hash: options_fingerprint(opts),
        })
    }

    /// Opens an *existing* checkpoint directory — the `--resume` entry
    /// point, where a missing directory means the user pointed at the
    /// wrong path and should hear about it rather than silently start a
    /// fresh run.
    pub fn open(dir: impl Into<PathBuf>, opts: &HarnessOptions) -> io::Result<Self> {
        let dir = dir.into();
        if !dir.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("checkpoint directory not found: {}", dir.display()),
            ));
        }
        Ok(Self {
            dir,
            opts_hash: options_fingerprint(opts),
        })
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The options fingerprint this cache validates records against.
    pub fn opts_hash(&self) -> u64 {
        self.opts_hash
    }

    fn stem(&self, (domain, size, arm, sample, trial): CellCoords) -> String {
        format!(
            "cell-{:016x}-{}-{}-{}-{}-{}",
            self.opts_hash,
            format!("{domain:?}").to_lowercase(),
            size,
            format!("{arm:?}").to_lowercase(),
            sample,
            trial,
        )
    }

    fn ok_path(&self, coords: CellCoords) -> PathBuf {
        self.dir.join(format!("{}.json", self.stem(coords)))
    }

    fn failed_path(&self, coords: CellCoords) -> PathBuf {
        self.dir.join(format!("{}.failed.json", self.stem(coords)))
    }

    fn record(&self, coords: CellCoords) -> CellRecord {
        let (domain, size, arm, sample, trial) = coords;
        CellRecord {
            schema_version: CELL_SCHEMA_VERSION,
            opts_hash: format!("{:016x}", self.opts_hash),
            domain: format!("{domain:?}").to_lowercase(),
            size: size as i64,
            arm: format!("{arm:?}").to_lowercase(),
            sample: sample as i64,
            trial: trial as i64,
            ok: None,
            panic: None,
        }
    }

    /// The cached result for a cell, if a valid success record exists.
    /// Anything else — no file, unparseable JSON, a schema or options
    /// mismatch, a failure record — is a miss.
    pub fn load(&self, coords: CellCoords) -> Option<ExperimentResult> {
        let text = std::fs::read_to_string(self.ok_path(coords)).ok()?;
        let rec: CellRecord = serde_json::from_str(&text).ok()?;
        if rec.schema_version != CELL_SCHEMA_VERSION
            || rec.opts_hash != format!("{:016x}", self.opts_hash)
        {
            return None;
        }
        rec.ok
    }

    /// Persists a completed cell.
    pub fn store_ok(&self, coords: CellCoords, result: &ExperimentResult) {
        let mut rec = self.record(coords);
        rec.ok = Some(result.clone());
        self.write_atomic(self.ok_path(coords), &rec);
    }

    /// Persists a cell that panicked twice, for post-mortem diagnosis.
    /// Failure records are never consulted by [`load`](Self::load).
    pub fn store_failed(&self, coords: CellCoords, payload: &str) {
        let mut rec = self.record(coords);
        rec.panic = Some(payload.to_string());
        self.write_atomic(self.failed_path(coords), &rec);
    }

    fn robustness_path(&self, coords: CellCoords, attacks_hash: u64) -> PathBuf {
        self.dir.join(format!(
            "rob-{attacks_hash:016x}-{}.json",
            self.stem(coords)
        ))
    }

    fn robustness_record(&self, coords: CellCoords, attacks_hash: u64) -> RobustnessRecord {
        let (domain, size, arm, sample, trial) = coords;
        RobustnessRecord {
            schema_version: ROBUSTNESS_SCHEMA_VERSION,
            opts_hash: format!("{:016x}", self.opts_hash),
            attacks_hash: format!("{attacks_hash:016x}"),
            domain: format!("{domain:?}").to_lowercase(),
            size: size as i64,
            arm: format!("{arm:?}").to_lowercase(),
            sample: sample as i64,
            trial: trial as i64,
            ok: None,
        }
    }

    /// The cached robustness result for a cell under a given attack
    /// suite, if a valid record exists. Any mismatch — schema, options
    /// fingerprint, attack-suite fingerprint — is a miss.
    pub fn load_robustness(
        &self,
        coords: CellCoords,
        attacks_hash: u64,
    ) -> Option<RobustnessResult> {
        let text = std::fs::read_to_string(self.robustness_path(coords, attacks_hash)).ok()?;
        let rec: RobustnessRecord = serde_json::from_str(&text).ok()?;
        if rec.schema_version != ROBUSTNESS_SCHEMA_VERSION
            || rec.opts_hash != format!("{:016x}", self.opts_hash)
            || rec.attacks_hash != format!("{attacks_hash:016x}")
        {
            return None;
        }
        rec.ok
    }

    /// Persists a completed robustness cell.
    pub fn store_robustness(
        &self,
        coords: CellCoords,
        attacks_hash: u64,
        result: &RobustnessResult,
    ) {
        let mut rec = self.robustness_record(coords, attacks_hash);
        rec.ok = Some(result.clone());
        self.write_atomic(self.robustness_path(coords, attacks_hash), &rec);
    }

    fn write_atomic<T: Serialize>(&self, path: PathBuf, rec: &T) {
        let json = match serde_json::to_string_pretty(rec) {
            Ok(j) => j,
            Err(e) => {
                fieldswap_obs::warn!("checkpoint serialize failed: {e}");
                return;
            }
        };
        let tmp = path.with_extension("tmp");
        let wrote = std::fs::write(&tmp, json).and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = wrote {
            fieldswap_obs::warn!("checkpoint write failed for {}: {e}", path.display());
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let d = std::env::temp_dir().join(format!(
            "fieldswap-ckpt-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_result() -> ExperimentResult {
        ExperimentResult {
            macro_f1: 61.25,
            micro_f1: 70.5,
            per_field_f1: vec![Some(81.0), None, Some(0.125)],
            n_synthetics: 42,
            n_train_docs: 10,
        }
    }

    const COORDS: CellCoords = (Domain::Fara, 10, Arm::Baseline, 0, 1);

    #[test]
    fn fingerprint_ignores_jobs_but_tracks_everything_else() {
        let base = HarnessOptions::quick();
        let mut jobs_differ = base;
        jobs_differ.jobs = 13;
        assert_eq!(
            options_fingerprint(&base),
            options_fingerprint(&jobs_differ),
            "jobs must not enter the fingerprint"
        );
        let mut train_jobs_differ = base;
        train_jobs_differ.train_jobs = 7;
        assert_eq!(
            options_fingerprint(&base),
            options_fingerprint(&train_jobs_differ),
            "train_jobs must not enter the fingerprint"
        );
        let variants = [
            |o: &mut HarnessOptions| o.n_samples += 1,
            |o: &mut HarnessOptions| o.n_trials += 1,
            |o: &mut HarnessOptions| o.pretrain_docs += 1,
            |o: &mut HarnessOptions| o.lexicon_docs += 1,
            |o: &mut HarnessOptions| o.neighbors += 1,
            |o: &mut HarnessOptions| o.test_cap += 1,
            |o: &mut HarnessOptions| o.epochs += 1,
            |o: &mut HarnessOptions| o.synth_ratio += 0.5,
            |o: &mut HarnessOptions| o.synthetic_cap += 1,
            |o: &mut HarnessOptions| o.seed ^= 1,
            |o: &mut HarnessOptions| o.sanitize = !o.sanitize,
        ];
        for (i, tweak) in variants.iter().enumerate() {
            let mut v = base;
            tweak(&mut v);
            assert_ne!(
                options_fingerprint(&base),
                options_fingerprint(&v),
                "variant {i} did not change the fingerprint"
            );
        }
    }

    #[test]
    fn store_and_load_roundtrip() {
        let dir = temp_dir("roundtrip");
        let cache = CellCache::create(&dir, &HarnessOptions::quick()).unwrap();
        assert_eq!(cache.load(COORDS), None, "empty cache must miss");
        let r = sample_result();
        cache.store_ok(COORDS, &r);
        assert_eq!(cache.load(COORDS), Some(r));
        // A neighboring cell is still a miss.
        assert_eq!(cache.load((Domain::Fara, 10, Arm::Baseline, 0, 0)), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn float_fields_roundtrip_exactly() {
        // The resume byte-identity guarantee hinges on exact f64
        // round-trips through the JSON layer.
        let dir = temp_dir("floats");
        let cache = CellCache::create(&dir, &HarnessOptions::quick()).unwrap();
        let r = ExperimentResult {
            macro_f1: 66.666_666_666_666_67,
            micro_f1: 0.1 + 0.2, // the classic non-representable sum
            per_field_f1: vec![Some(1.0 / 3.0)],
            n_synthetics: 0,
            n_train_docs: 1,
        };
        cache.store_ok(COORDS, &r);
        let back = cache.load(COORDS).unwrap();
        assert_eq!(back.macro_f1.to_bits(), r.macro_f1.to_bits());
        assert_eq!(back.micro_f1.to_bits(), r.micro_f1.to_bits());
        assert_eq!(
            back.per_field_f1[0].unwrap().to_bits(),
            r.per_field_f1[0].unwrap().to_bits()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn different_options_do_not_share_cells() {
        let dir = temp_dir("opts");
        let quick = CellCache::create(&dir, &HarnessOptions::quick()).unwrap();
        quick.store_ok(COORDS, &sample_result());
        let mut other_opts = HarnessOptions::quick();
        other_opts.seed ^= 0xDEAD;
        let other = CellCache::create(&dir, &other_opts).unwrap();
        assert_eq!(
            other.load(COORDS),
            None,
            "a different protocol must never see this cache's cells"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_is_a_miss() {
        let dir = temp_dir("corrupt");
        let cache = CellCache::create(&dir, &HarnessOptions::quick()).unwrap();
        cache.store_ok(COORDS, &sample_result());
        let path = cache.ok_path(COORDS);
        std::fs::write(&path, "{ not json").unwrap();
        assert_eq!(cache.load(COORDS), None);
        // Tampered options hash inside an otherwise valid record: miss.
        let mut rec = cache.record(COORDS);
        rec.opts_hash = "0000000000000000".into();
        rec.ok = Some(sample_result());
        std::fs::write(&path, serde_json::to_string(&rec).unwrap()).unwrap();
        assert_eq!(cache.load(COORDS), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failure_records_are_diagnostic_only() {
        let dir = temp_dir("failed");
        let cache = CellCache::create(&dir, &HarnessOptions::quick()).unwrap();
        cache.store_failed(COORDS, "cell exploded");
        assert_eq!(
            cache.load(COORDS),
            None,
            "a recorded panic must not satisfy a resume lookup"
        );
        let text = std::fs::read_to_string(cache.failed_path(COORDS)).unwrap();
        assert!(text.contains("cell exploded"));
        // A later successful attempt coexists with the failure record.
        cache.store_ok(COORDS, &sample_result());
        assert_eq!(cache.load(COORDS), Some(sample_result()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn robustness_records_roundtrip_and_key_on_the_suite() {
        use fieldswap_core::AttackKind;
        let dir = temp_dir("rob");
        let cache = CellCache::create(&dir, &HarnessOptions::quick()).unwrap();
        let suite = [AttackSpec {
            kind: AttackKind::TokenDrop,
            strength: 0.5,
        }];
        let hash = attacks_fingerprint(&suite);
        assert_eq!(cache.load_robustness(COORDS, hash), None);
        let r = RobustnessResult {
            clean_macro_f1: 61.0,
            clean_micro_f1: 70.5,
            attacked_macro_f1: vec![55.125],
            attacked_micro_f1: vec![60.25],
            n_synthetics: 9,
        };
        cache.store_robustness(COORDS, hash, &r);
        assert_eq!(cache.load_robustness(COORDS, hash), Some(r.clone()));
        // A different strength is a different suite: miss, not a hit.
        let other = attacks_fingerprint(&[AttackSpec {
            kind: AttackKind::TokenDrop,
            strength: 0.75,
        }]);
        assert_ne!(hash, other);
        assert_eq!(cache.load_robustness(COORDS, other), None);
        // A different kind too, and the empty suite differs from both.
        let kind_differs = attacks_fingerprint(&[AttackSpec {
            kind: AttackKind::BoxJitter,
            strength: 0.5,
        }]);
        assert_ne!(hash, kind_differs);
        assert_ne!(hash, attacks_fingerprint(&[]));
        // Robustness records never satisfy plain cell lookups.
        assert_eq!(cache.load(COORDS), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_requires_existing_directory() {
        let missing = std::env::temp_dir().join("fieldswap-ckpt-definitely-missing");
        let err = CellCache::open(&missing, &HarnessOptions::quick()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let dir = temp_dir("open");
        assert!(CellCache::open(&dir, &HarnessOptions::quick()).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
