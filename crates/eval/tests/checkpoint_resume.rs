//! End-to-end crash/resume tests for the experiment grid.
//!
//! The contract under test: a grid that is interrupted (here: a cell
//! that dies mid-run) and later resumed from its checkpoint directory
//! produces **byte-identical** JSON to an uninterrupted run, and a cell
//! that fails persistently is isolated — counted and recorded on disk —
//! while every other cell completes.

use fieldswap_datagen::Domain;
use fieldswap_eval::{Arm, CellCache, Harness, HarnessOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn tiny_options() -> HarnessOptions {
    HarnessOptions {
        n_samples: 1,
        n_trials: 2,
        pretrain_docs: 30,
        lexicon_docs: 50,
        neighbors: 12,
        test_cap: 40,
        epochs: 3,
        synth_ratio: 2.0,
        synthetic_cap: 300,
        seed: 0x7E57,
        jobs: 2,
        train_jobs: 1,
        sanitize: true,
        quantized: false,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "fieldswap-resume-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

const POINTS: [(Domain, usize, Arm); 1] = [(Domain::Fara, 10, Arm::Baseline)];

#[test]
fn resumed_grid_is_byte_identical_to_uninterrupted() {
    let opts = tiny_options();

    // Reference: one uninterrupted run, no checkpointing at all.
    let uninterrupted = Harness::new(opts).run_grid(&POINTS);
    let expect = serde_json::to_string_pretty(&uninterrupted).unwrap();

    // "Crash": a checkpointed run where cell (sample 0, trial 1) dies on
    // every attempt — it is never persisted, but trial 0 is.
    let dir = temp_dir("identity");
    let mut crashed = Harness::new(opts);
    crashed.attach_checkpoint(CellCache::create(&dir, &opts).unwrap());
    crashed.fail_cell_for_tests((Domain::Fara, 10, Arm::Baseline, 0, 1), usize::MAX);
    let partial = crashed.run_grid(&POINTS);
    assert_eq!(partial[0].failed_cells, 1, "the dying cell must be counted");
    assert_eq!(partial[0].runs.len(), 1, "the healthy cell must complete");

    // Resume: a fresh harness over the same directory. The injection on
    // trial 0 proves the cache is actually consulted — a cache miss
    // would recompute that cell, hit the injected panic, and break the
    // byte-identity assertion below.
    let mut resumed = Harness::new(opts);
    resumed.attach_checkpoint(CellCache::open(&dir, &opts).unwrap());
    resumed.fail_cell_for_tests((Domain::Fara, 10, Arm::Baseline, 0, 0), usize::MAX);
    let full = resumed.run_grid(&POINTS);
    assert_eq!(full[0].failed_cells, 0);
    assert_eq!(
        serde_json::to_string_pretty(&full).unwrap(),
        expect,
        "resumed grid must be byte-identical to the uninterrupted run"
    );

    // Second resume: now *both* cells come from the cache, so even a
    // harness where every cell would panic reproduces the run.
    let mut cached = Harness::new(opts);
    cached.attach_checkpoint(CellCache::open(&dir, &opts).unwrap());
    cached.fail_cell_for_tests((Domain::Fara, 10, Arm::Baseline, 0, 0), usize::MAX);
    cached.fail_cell_for_tests((Domain::Fara, 10, Arm::Baseline, 0, 1), usize::MAX);
    assert_eq!(
        serde_json::to_string_pretty(&cached.run_grid(&POINTS)).unwrap(),
        expect
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_resumes_across_train_jobs_settings() {
    // `train_jobs` is a pure threading knob: it is excluded from the
    // options fingerprint, and training itself is bitwise-invariant to
    // it. A grid checkpointed serially must therefore (a) open cleanly
    // under a parallel-training harness, and (b) produce byte-identical
    // JSON whether the cells come from the cache or are recomputed with
    // `train_jobs: 4`.
    let serial_opts = tiny_options();
    let expect =
        serde_json::to_string_pretty(&Harness::new(serial_opts).run_grid(&POINTS)).unwrap();

    let dir = temp_dir("trainjobs");
    let mut writer = Harness::new(serial_opts);
    writer.attach_checkpoint(CellCache::create(&dir, &serial_opts).unwrap());
    writer.run_grid(&POINTS);

    let par_opts = HarnessOptions {
        train_jobs: 4,
        ..serial_opts
    };

    // Cache hit path: every cell served from the jobs=1 checkpoint.
    let mut cached = Harness::new(par_opts);
    cached.attach_checkpoint(CellCache::open(&dir, &par_opts).unwrap());
    cached.fail_cell_for_tests((Domain::Fara, 10, Arm::Baseline, 0, 0), usize::MAX);
    cached.fail_cell_for_tests((Domain::Fara, 10, Arm::Baseline, 0, 1), usize::MAX);
    assert_eq!(
        serde_json::to_string_pretty(&cached.run_grid(&POINTS)).unwrap(),
        expect,
        "jobs=1 checkpoint must resume byte-identically under train_jobs=4"
    );

    // Recompute path: the same cells computed fresh with parallel
    // training must also match, or mixing cached and fresh cells in one
    // resumed grid would silently produce inconsistent results.
    assert_eq!(
        serde_json::to_string_pretty(&Harness::new(par_opts).run_grid(&POINTS)).unwrap(),
        expect,
        "train_jobs=4 recompute must match the serial grid bit-for-bit"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn persistent_failure_is_recorded_on_disk_and_isolated() {
    let opts = tiny_options();
    let dir = temp_dir("failrec");
    let mut h = Harness::new(opts);
    h.attach_checkpoint(CellCache::create(&dir, &opts).unwrap());
    h.fail_cell_for_tests((Domain::Fara, 10, Arm::Baseline, 0, 0), usize::MAX);
    let grid = h.run_grid(&POINTS);
    assert_eq!(grid[0].failed_cells, 1);
    assert_eq!(grid[0].runs.len(), 1);

    // The failure left a diagnostic record; the success left a cell.
    let mut ok_files = 0;
    let mut failed_files = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name().into_string().unwrap();
        if name.ends_with(".failed.json") {
            failed_files += 1;
            let text = std::fs::read_to_string(dir.join(&name)).unwrap();
            assert!(text.contains("injected failure"), "{text}");
        } else if name.ends_with(".json") {
            ok_files += 1;
        }
    }
    assert_eq!((ok_files, failed_files), (1, 1));

    // A resume re-attempts the failed cell (failure records are never
    // trusted) and completes the grid.
    let mut resumed = Harness::new(opts);
    resumed.attach_checkpoint(CellCache::open(&dir, &opts).unwrap());
    let full = resumed.run_grid(&POINTS);
    assert_eq!(full[0].failed_cells, 0);
    assert_eq!(full[0].runs.len(), 2);

    std::fs::remove_dir_all(&dir).unwrap();
}
