//! The FieldSwap configuration: per-field key phrases and the
//! source→target pair list. Serializable so that human-expert
//! configurations can be stored and reviewed as JSON files (Section III).

use fieldswap_docmodel::FieldId;
use serde::{Deserialize, Serialize};

/// The two inputs that govern FieldSwap augmentation (Section II): valid
/// key phrases per field, and the source→target field pairs eligible for
/// swapping.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FieldSwapConfig {
    /// `phrases[f]` — the valid key phrases for field `f`, ordered by
    /// preference (inferred phrases come ranked by importance).
    phrases: Vec<Vec<String>>,
    /// Source→target pairs. May include self-pairs `(f, f)` — the
    /// field-to-field case.
    pairs: Vec<(FieldId, FieldId)>,
}

impl FieldSwapConfig {
    /// An empty configuration for a schema with `n_fields` fields.
    pub fn new(n_fields: usize) -> Self {
        Self {
            phrases: vec![Vec::new(); n_fields],
            pairs: Vec::new(),
        }
    }

    /// Number of fields the configuration covers.
    pub fn n_fields(&self) -> usize {
        self.phrases.len()
    }

    /// Sets the key phrases for `field`, normalizing each phrase
    /// (lowercase, trimmed, inner whitespace collapsed) and dropping empty
    /// ones and duplicates. Grows the table if `field` is beyond the
    /// configured field count (configs deserialized from JSON may disagree
    /// with the schema).
    pub fn set_phrases(&mut self, field: FieldId, phrases: Vec<String>) {
        let mut out: Vec<String> = Vec::with_capacity(phrases.len());
        for p in phrases {
            let norm = normalize_phrase(&p);
            if !norm.is_empty() && !out.contains(&norm) {
                out.push(norm);
            }
        }
        self.ensure_field(field);
        self.phrases[field as usize] = out;
    }

    /// Adds a single phrase for `field` (normalized, deduplicated).
    pub fn add_phrase(&mut self, field: FieldId, phrase: &str) {
        let norm = normalize_phrase(phrase);
        self.ensure_field(field);
        if !norm.is_empty() && !self.phrases[field as usize].contains(&norm) {
            self.phrases[field as usize].push(norm);
        }
    }

    fn ensure_field(&mut self, field: FieldId) {
        if field as usize >= self.phrases.len() {
            self.phrases.resize(field as usize + 1, Vec::new());
        }
    }

    /// The key phrases configured for `field`. An out-of-range field
    /// (a config file narrower than the schema) has no phrases rather
    /// than panicking.
    pub fn phrases(&self, field: FieldId) -> &[String] {
        self.phrases
            .get(field as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether the field has at least one key phrase.
    pub fn has_phrases(&self, field: FieldId) -> bool {
        !self.phrases(field).is_empty()
    }

    /// Removes all phrases for `field`, excluding it from augmentation —
    /// what a human expert does for fields without clear key phrases
    /// (Section III).
    pub fn exclude_field(&mut self, field: FieldId) {
        if let Some(p) = self.phrases.get_mut(field as usize) {
            p.clear();
        }
        self.pairs.retain(|&(s, t)| s != field && t != field);
    }

    /// Replaces the pair list.
    pub fn set_pairs(&mut self, pairs: Vec<(FieldId, FieldId)>) {
        self.pairs = pairs;
    }

    /// The source→target pairs.
    pub fn pairs(&self) -> &[(FieldId, FieldId)] {
        &self.pairs
    }

    /// Fields that participate in at least one pair and have phrases.
    pub fn active_fields(&self) -> Vec<FieldId> {
        let mut fields: Vec<FieldId> = self
            .pairs
            .iter()
            .flat_map(|&(s, t)| [s, t])
            .filter(|&f| self.has_phrases(f))
            .collect();
        fields.sort_unstable();
        fields.dedup();
        fields
    }

    /// Serializes to pretty JSON (for storing expert configurations).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serialization cannot fail")
    }

    /// Deserializes from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Normalizes a phrase for matching: lowercase, trim, collapse internal
/// whitespace, strip leading/trailing punctuation from each word (the
/// paper's post-processing of OCR-line phrases, Section II-A3).
pub fn normalize_phrase(p: &str) -> String {
    p.split_whitespace()
        .map(|w| {
            w.trim_matches(|c: char| c.is_ascii_punctuation())
                .to_lowercase()
        })
        .filter(|w| !w.is_empty())
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_phrase_cleans() {
        assert_eq!(normalize_phrase("  Amount Due: "), "amount due");
        assert_eq!(normalize_phrase("TOTAL"), "total");
        assert_eq!(normalize_phrase("(Base   Salary)"), "base salary");
        assert_eq!(normalize_phrase("::"), "");
    }

    #[test]
    fn set_phrases_dedups_and_drops_empty() {
        let mut c = FieldSwapConfig::new(2);
        c.set_phrases(
            0,
            vec![
                "Total".into(),
                "total".into(),
                "  ".into(),
                "Amount Due".into(),
            ],
        );
        assert_eq!(
            c.phrases(0),
            &["total".to_string(), "amount due".to_string()]
        );
        assert!(c.has_phrases(0));
        assert!(!c.has_phrases(1));
    }

    #[test]
    fn add_phrase_appends_once() {
        let mut c = FieldSwapConfig::new(1);
        c.add_phrase(0, "Net Pay");
        c.add_phrase(0, "net pay");
        c.add_phrase(0, "Take Home");
        assert_eq!(c.phrases(0).len(), 2);
    }

    #[test]
    fn exclude_field_clears_phrases_and_pairs() {
        let mut c = FieldSwapConfig::new(3);
        c.add_phrase(0, "a");
        c.add_phrase(1, "b");
        c.set_pairs(vec![(0, 1), (1, 0), (1, 2), (2, 2)]);
        c.exclude_field(1);
        assert!(!c.has_phrases(1));
        assert_eq!(c.pairs(), &[(2, 2)]);
    }

    #[test]
    fn active_fields_requires_phrases_and_pairs() {
        let mut c = FieldSwapConfig::new(4);
        c.add_phrase(0, "a");
        c.add_phrase(1, "b");
        c.add_phrase(3, "d");
        c.set_pairs(vec![(0, 1), (2, 0)]);
        // 2 has no phrases; 3 has phrases but no pairs.
        assert_eq!(c.active_fields(), vec![0, 1]);
    }

    #[test]
    fn out_of_range_field_is_phraseless_not_a_panic() {
        let c = FieldSwapConfig::new(2);
        assert!(c.phrases(17).is_empty());
        assert!(!c.has_phrases(17));
        let mut c = c;
        c.exclude_field(17); // no-op, no panic
        c.add_phrase(5, "grown");
        assert_eq!(c.n_fields(), 6);
        assert!(c.has_phrases(5));
    }

    #[test]
    fn json_round_trip() {
        let mut c = FieldSwapConfig::new(2);
        c.add_phrase(0, "Total Due");
        c.set_pairs(vec![(0, 1)]);
        let j = c.to_json();
        let back = FieldSwapConfig::from_json(&j).unwrap();
        assert_eq!(c, back);
    }
}
