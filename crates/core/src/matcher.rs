//! Key-phrase matching inside documents.
//!
//! A phrase matches a run of consecutive tokens *on one OCR line* whose
//! normalized texts equal the phrase's words. Restricting matches to a
//! single line mirrors the paper's observation that "an important phrase
//! typically resides within a single line" (Section II-A3) and prevents
//! false matches across column boundaries.

use fieldswap_docmodel::Document;

/// A phrase occurrence: the contiguous token-id range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhraseMatch {
    /// First token of the occurrence (inclusive).
    pub start: u32,
    /// One-past-last token (exclusive).
    pub end: u32,
}

/// Normalizes a token for matching: lowercase with leading/trailing
/// punctuation stripped (so `"Total:"` matches the phrase word `total`).
fn norm_token(text: &str) -> String {
    text.trim_matches(|c: char| c.is_ascii_punctuation())
        .to_lowercase()
}

/// Per-document matching context: token texts normalized once, labeled
/// set built once. The augmentation engine probes every (pair, phrase)
/// combination against the same document, so hoisting the per-token
/// normalization out of the window scan turns the inner comparison into
/// an allocation-free `&str` equality.
pub struct DocMatcher<'a> {
    doc: &'a Document,
    normed: Vec<String>,
    labeled: Vec<bool>,
}

impl<'a> DocMatcher<'a> {
    /// Builds the matching context for `doc`.
    pub fn new(doc: &'a Document) -> Self {
        Self {
            doc,
            normed: doc.tokens.iter().map(|t| norm_token(&t.text)).collect(),
            labeled: doc.labeled_token_set(),
        }
    }

    /// Finds all occurrences of `phrase` (already normalized,
    /// space-separated words). Matches are restricted to single OCR lines
    /// and to windows whose token ids are contiguous (which holds for text
    /// emitted in reading order). Overlapping annotations are excluded: a
    /// field *value* can never be treated as a key phrase occurrence
    /// (Section II-A5).
    pub fn find(&self, phrase: &str) -> Vec<PhraseMatch> {
        let words: Vec<&str> = phrase.split_whitespace().collect();
        if words.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for line in &self.doc.lines {
            if line.tokens.len() < words.len() {
                continue;
            }
            for w in line.tokens.windows(words.len()) {
                // Window ids must be contiguous so the match is a clean
                // replaceable token range.
                if !w.windows(2).all(|p| p[1] == p[0] + 1) {
                    continue;
                }
                let matches = w
                    .iter()
                    .zip(&words)
                    .all(|(&tid, &word)| self.normed[tid as usize] == word);
                if !matches {
                    continue;
                }
                if w.iter().any(|&tid| self.labeled[tid as usize]) {
                    continue;
                }
                out.push(PhraseMatch {
                    start: w[0],
                    end: w[w.len() - 1] + 1,
                });
            }
        }
        out.sort_by_key(|m| m.start);
        out
    }
}

/// One-shot convenience over [`DocMatcher`] for single-phrase lookups.
pub fn find_phrase_matches(doc: &Document, phrase: &str) -> Vec<PhraseMatch> {
    DocMatcher::new(doc).find(phrase)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_docmodel::{BBox, DocumentBuilder, EntitySpan, Token};

    fn doc(rows: &[&str]) -> Document {
        let mut b = DocumentBuilder::new("t");
        for (r, row) in rows.iter().enumerate() {
            let mut x = 10.0;
            for w in row.split_whitespace() {
                let width = 8.0 * w.len() as f32;
                b.push_token(Token::new(
                    w,
                    BBox::new(x, 30.0 * r as f32, x + width, 30.0 * r as f32 + 12.0),
                ));
                x += width + 5.0;
            }
        }
        let mut d = b.build();
        fieldswap_ocr::detect_lines(&mut d);
        d
    }

    #[test]
    fn single_word_match() {
        let d = doc(&["Overtime $120.00", "Bonus $50.00"]);
        let m = find_phrase_matches(&d, "overtime");
        assert_eq!(m.len(), 1);
        assert_eq!((m[0].start, m[0].end), (0, 1));
    }

    #[test]
    fn multi_word_match() {
        let d = doc(&["Base Salary $3,308.62"]);
        let m = find_phrase_matches(&d, "base salary");
        assert_eq!(m.len(), 1);
        assert_eq!((m[0].start, m[0].end), (0, 2));
    }

    #[test]
    fn punctuation_insensitive() {
        let d = doc(&["Total: $99.00"]);
        assert_eq!(find_phrase_matches(&d, "total").len(), 1);
    }

    #[test]
    fn no_cross_row_match() {
        let d = doc(&["Base", "Salary"]);
        assert!(find_phrase_matches(&d, "base salary").is_empty());
    }

    #[test]
    fn multiple_occurrences_sorted() {
        let d = doc(&["Bonus $1.00", "Bonus $2.00"]);
        let m = find_phrase_matches(&d, "bonus");
        assert_eq!(m.len(), 2);
        assert!(m[0].start < m[1].start);
    }

    #[test]
    fn labeled_tokens_never_match() {
        let mut d = doc(&["Overtime Overtime"]);
        // Label the second "Overtime" as a field value.
        d.annotations = vec![EntitySpan::new(0, 1, 2)];
        let m = find_phrase_matches(&d, "overtime");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].start, 0);
    }

    #[test]
    fn empty_phrase_matches_nothing() {
        let d = doc(&["Total $1.00"]);
        assert!(find_phrase_matches(&d, "").is_empty());
        assert!(find_phrase_matches(&d, "   ").is_empty());
    }

    #[test]
    fn proptest_constructed_occurrences_found() {
        use proptest::prelude::*;
        use proptest::test_runner::{Config, TestRunner};
        let mut runner = TestRunner::new(Config::with_cases(48));
        let words = ["total", "due", "amount", "pay", "xzxz"];
        runner
            .run(
                &(
                    proptest::collection::vec(0usize..words.len(), 1..3), // phrase
                    proptest::collection::vec(0usize..words.len(), 0..8), // prefix row
                    1usize..4,                                            // occurrences
                ),
                |(phrase_idx, prefix_idx, occurrences)| {
                    let phrase_words: Vec<&str> = phrase_idx.iter().map(|&i| words[i]).collect();
                    let phrase = phrase_words.join(" ");
                    // Build rows: a prefix row of filler, then N rows each
                    // containing exactly the phrase.
                    let mut rows: Vec<String> = Vec::new();
                    let prefix: Vec<&str> = prefix_idx.iter().map(|&i| words[i]).collect();
                    if !prefix.is_empty() {
                        // Guard: the filler row must not itself contain the
                        // phrase as a subsequence of adjacent words.
                        let joined = prefix.join(" ");
                        if joined.contains(&phrase) {
                            return Ok(());
                        }
                        rows.push(joined);
                    }
                    for _ in 0..occurrences {
                        rows.push(phrase.clone());
                    }
                    let row_refs: Vec<&str> = rows.iter().map(String::as_str).collect();
                    let d = doc(&row_refs);
                    let found = find_phrase_matches(&d, &phrase);
                    prop_assert!(
                        found.len() >= occurrences,
                        "phrase {:?}: found {} < constructed {}",
                        phrase,
                        found.len(),
                        occurrences
                    );
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    fn case_insensitive() {
        let d = doc(&["AMOUNT DUE $5.00"]);
        assert_eq!(find_phrase_matches(&d, "amount due").len(), 1);
    }
}
