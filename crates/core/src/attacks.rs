//! Form-attack transforms for robustness evaluation.
//!
//! Implements the attack taxonomy of Xue et al. (*Robustness Evaluation of
//! Transformer-based Form Field Extractors via Form Attacks*, see
//! PAPERS.md) against this workspace's document model: perturbations of
//! the key phrases, the OCR geometry, and the field values that a
//! deployed extractor would encounter in the wild. Each attack is a pure
//! `Document -> Document` transform — deterministic given `(kind,
//! strength, seed)` — so attacked corpora are byte-identical across
//! worker counts and across resumed runs.
//!
//! Attacks mirror the paper's taxonomy:
//!
//! * [`AttackKind::KeyPhraseAbbrev`] — key-phrase synonym/abbreviation
//!   swap: unlabeled alphabetic tokens (the key-phrase vocabulary) are
//!   abbreviated (`Salary` → `Sal.`).
//! * [`AttackKind::TokenDrop`] — OCR misses: unlabeled tokens are
//!   dropped and annotation indices remapped.
//! * [`AttackKind::BoxJitter`] — bounding-box noise: every token's box is
//!   translated by a random offset proportional to its height.
//! * [`AttackKind::LineMergeSplit`] — line-detection errors: whole lines
//!   are pulled up into their predecessor (merge) or a suffix of a line
//!   is pushed down (split), then lines are re-detected.
//! * [`AttackKind::ValueNoise`] — field-value character noise: the OCR
//!   noise model (`fieldswap_ocr::noise`) applied to *labeled* tokens
//!   only.
//! * [`AttackKind::SeparationShift`] — key-phrase/value separation: the
//!   value tokens of each annotation are translated away from their key
//!   phrase.
//!
//! `strength` in `[0, 1]` scales every attack's rates and displacements
//! (0 = no-op probabilities, 1 = harshest). All randomness derives from
//! the caller's seed through a per-document SplitMix64 mix, so attacking
//! a corpus is independent of document iteration order and thread count.

use fieldswap_docmodel::{Corpus, Document, EntitySpan};
use fieldswap_ocr::{detect_lines, NoiseModel, NoiseParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stream separator for attack randomness: mixed into every per-document
/// attack seed so attack draws can never collide with sampling, training,
/// or value-swap streams derived from the same master seed.
pub const STREAM_ATTACK: u64 = 0xA7;

/// The attack taxonomy. See the module docs for what each kind perturbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttackKind {
    /// Abbreviates unlabeled alphabetic tokens (key-phrase vocabulary).
    KeyPhraseAbbrev,
    /// Drops unlabeled tokens, remapping annotation indices.
    TokenDrop,
    /// Jitters every token's bounding box.
    BoxJitter,
    /// Merges lines into predecessors / splits line suffixes downward.
    LineMergeSplit,
    /// Applies OCR character noise to labeled (value) tokens only.
    ValueNoise,
    /// Translates annotation values away from their key phrases.
    SeparationShift,
}

impl AttackKind {
    /// Every attack kind, in canonical order.
    pub const ALL: [AttackKind; 6] = [
        AttackKind::KeyPhraseAbbrev,
        AttackKind::TokenDrop,
        AttackKind::BoxJitter,
        AttackKind::LineMergeSplit,
        AttackKind::ValueNoise,
        AttackKind::SeparationShift,
    ];

    /// Stable kebab-case name (CLI flag values, table rows, seeds).
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::KeyPhraseAbbrev => "keyphrase-abbrev",
            AttackKind::TokenDrop => "token-drop",
            AttackKind::BoxJitter => "box-jitter",
            AttackKind::LineMergeSplit => "line-merge-split",
            AttackKind::ValueNoise => "value-noise",
            AttackKind::SeparationShift => "separation-shift",
        }
    }

    /// Parses a kind from its [`AttackKind::name`]. Case-sensitive.
    pub fn parse(s: &str) -> Option<AttackKind> {
        AttackKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Stable index of the kind in [`AttackKind::ALL`] (seed derivation).
    pub fn index(self) -> u64 {
        AttackKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("kind present in ALL") as u64
    }
}

/// SplitMix64-style avalanche mix of a seed with stream coordinates —
/// the same construction the experiment harness uses for cell seeds, so
/// per-document attack seeds are pure functions of `(master seed, stream,
/// kind, strength, document index)`.
fn mix(seed: u64, coords: &[u64]) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for &c in coords {
        h ^= c.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
    }
    h
}

fn clamp_strength(strength: f64) -> f64 {
    if strength.is_finite() {
        strength.clamp(0.0, 1.0)
    } else {
        0.0
    }
}

/// Applies one attack to a document, returning the perturbed copy. Pure:
/// the input is never mutated, and equal `(doc, kind, strength, seed)`
/// always produce byte-identical output. Degenerate inputs are sanitized
/// first; the output always passes [`Document::validate`].
pub fn attack_document(doc: &Document, kind: AttackKind, strength: f64, seed: u64) -> Document {
    let strength = clamp_strength(strength);
    let mut doc = doc.clone();
    if doc.validate().is_err() {
        doc.sanitize();
    }
    if doc.lines.is_empty() {
        detect_lines(&mut doc);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = match kind {
        AttackKind::KeyPhraseAbbrev => keyphrase_abbrev(doc, strength, &mut rng),
        AttackKind::TokenDrop => token_drop(doc, strength, &mut rng),
        AttackKind::BoxJitter => box_jitter(doc, strength, &mut rng),
        AttackKind::LineMergeSplit => line_merge_split(doc, strength, &mut rng),
        AttackKind::ValueNoise => value_noise(doc, strength, seed),
        AttackKind::SeparationShift => separation_shift(doc, strength, &mut rng),
    };
    detect_lines(&mut out);
    debug_assert!(out.validate().is_ok(), "{:?}", out.validate());
    out
}

/// Applies one attack to every document of a corpus. Each document's
/// randomness is seeded independently from `(seed, STREAM_ATTACK, kind,
/// strength, doc index)`, so the result does not depend on evaluation
/// order or worker count. Emits an `attack_corpus` span, per-kind
/// document counters, and a per-kind wall-time histogram when
/// observability is enabled.
pub fn attack_corpus(corpus: &Corpus, kind: AttackKind, strength: f64, seed: u64) -> Corpus {
    let _span = fieldswap_obs::span_tagged("attack_corpus", || {
        vec![
            ("attack", kind.name().to_string()),
            ("strength", format!("{strength}")),
            ("docs", corpus.len().to_string()),
        ]
    });
    let metrics = fieldswap_obs::metrics_enabled();
    let started = metrics.then(std::time::Instant::now);
    let strength = clamp_strength(strength);
    let documents = corpus
        .documents
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let doc_seed = mix(
                seed,
                &[STREAM_ATTACK, kind.index(), strength.to_bits(), i as u64],
            );
            attack_document(d, kind, strength, doc_seed)
        })
        .collect();
    if metrics {
        fieldswap_obs::counter_add(
            &format!("fieldswap_attack_docs_total{{kind=\"{}\"}}", kind.name()),
            corpus.len() as u64,
        );
        if let Some(t) = started {
            fieldswap_obs::observe(
                &format!("fieldswap_attack_corpus_ms{{kind=\"{}\"}}", kind.name()),
                t.elapsed().as_secs_f64() * 1e3,
            );
        }
    }
    Corpus {
        schema: corpus.schema.clone(),
        documents,
    }
}

/// Key-phrase abbreviation: unlabeled alphabetic tokens of 4+ characters
/// are truncated to their first 3 characters plus `"."` with probability
/// `0.2 + 0.6 * strength`. Labeled (value) tokens are never touched —
/// this attacks the *cues*, not the answers.
fn keyphrase_abbrev(mut doc: Document, strength: f64, rng: &mut StdRng) -> Document {
    let p = 0.2 + 0.6 * strength;
    let labeled = doc.labeled_token_set();
    for (i, t) in doc.tokens.iter_mut().enumerate() {
        if labeled[i] || t.text.chars().count() < 4 || !t.text.chars().all(|c| c.is_alphabetic()) {
            continue;
        }
        if p > 0.0 && rng.gen_bool(p) {
            let mut abbrev: String = t.text.chars().take(3).collect();
            abbrev.push('.');
            t.text = abbrev;
        }
    }
    doc
}

/// Token drop: unlabeled tokens vanish with probability `0.05 + 0.25 *
/// strength` (an OCR miss). Labeled tokens are always kept, so every
/// annotation span survives contiguously; indices are remapped. The
/// document is never emptied: if every token would drop, the first
/// survives.
fn token_drop(doc: Document, strength: f64, rng: &mut StdRng) -> Document {
    let p = 0.05 + 0.25 * strength;
    let labeled = doc.labeled_token_set();
    let mut keep: Vec<bool> = (0..doc.tokens.len())
        .map(|i| labeled[i] || !(p > 0.0 && rng.gen_bool(p)))
        .collect();
    if !keep.iter().any(|&k| k) && !keep.is_empty() {
        keep[0] = true;
    }
    let mut index_map: Vec<Option<u32>> = vec![None; doc.tokens.len()];
    let mut tokens = Vec::with_capacity(doc.tokens.len());
    for (i, t) in doc.tokens.into_iter().enumerate() {
        if keep[i] {
            index_map[i] = Some(tokens.len() as u32);
            tokens.push(t);
        }
    }
    // Labeled tokens are all kept, so each span maps to a contiguous
    // range starting at its remapped start.
    let annotations = doc
        .annotations
        .iter()
        .filter_map(|a| {
            index_map[a.start as usize]
                .map(|new_start| EntitySpan::new(a.field, new_start, new_start + (a.end - a.start)))
        })
        .collect();
    Document {
        id: doc.id,
        tokens,
        lines: Vec::new(),
        annotations,
    }
}

/// Bounding-box jitter: every token's box is translated by a uniform
/// offset in `±strength × 0.6 × height` vertically and `±strength × 2 ×
/// height` horizontally. Layout-derived features (lines, neighbor order,
/// key-phrase adjacency) degrade while the text survives.
fn box_jitter(mut doc: Document, strength: f64, rng: &mut StdRng) -> Document {
    for t in &mut doc.tokens {
        let h = t.bbox.height().max(1.0);
        let dx = rng.gen_range(-1.0f32..1.0) * (strength as f32) * 2.0 * h;
        let dy = rng.gen_range(-1.0f32..1.0) * (strength as f32) * 0.6 * h;
        t.bbox = t.bbox.translated(dx, dy);
    }
    doc.lines = Vec::new();
    doc
}

/// Line merge/split: with probability `0.1 + 0.3 × strength` a line's
/// tokens are pulled up so the line fuses with its predecessor (merge);
/// with the same probability the right half of a line is pushed down one
/// line-height (split). Re-detection then sees the corrupted geometry.
fn line_merge_split(mut doc: Document, strength: f64, rng: &mut StdRng) -> Document {
    let p = 0.1 + 0.3 * strength;
    let lines = doc.lines.clone();
    for (li, line) in lines.iter().enumerate() {
        let r: f64 = rng.gen_range(0.0..1.0);
        if r < p && li > 0 {
            // Merge up: align this line's band with the previous line's.
            let dy = lines[li - 1].bbox.y0 - line.bbox.y0;
            for &t in &line.tokens {
                let b = &mut doc.tokens[t as usize].bbox;
                *b = b.translated(0.0, dy);
            }
        } else if r >= p && r < 2.0 * p && line.tokens.len() >= 2 {
            // Split: push the right half down a line-height.
            let dy = line.bbox.height().max(1.0) * 1.5;
            for &t in &line.tokens[line.tokens.len() / 2..] {
                let b = &mut doc.tokens[t as usize].bbox;
                *b = b.translated(0.0, dy);
            }
        }
    }
    doc.lines = Vec::new();
    doc
}

/// Field-value character noise: the OCR noise model applied to labeled
/// tokens only, with rates scaled by strength. The cues stay pristine;
/// the answers garble.
fn value_noise(mut doc: Document, strength: f64, seed: u64) -> Document {
    let params = NoiseParams {
        token_error_rate: 0.2 + 0.6 * strength,
        char_sub_rate: 0.5,
        char_del_rate: 0.15 * strength,
        case_flip_rate: 0.2 * strength,
    }
    .clamped();
    let mut model = NoiseModel::new(params, seed);
    let labeled = doc.labeled_token_set();
    for (i, t) in doc.tokens.iter_mut().enumerate() {
        if labeled[i] {
            t.text = model.corrupt_text(&t.text);
        }
    }
    doc
}

/// Key-phrase/value separation shift: each annotation's value tokens are
/// translated away from the rest of the line — rightwards by `8 + 40 ×
/// strength` units, or downwards by `(0.5 + strength) × height` when the
/// RNG picks the vertical direction.
fn separation_shift(mut doc: Document, strength: f64, rng: &mut StdRng) -> Document {
    let annotations = doc.annotations.clone();
    for a in &annotations {
        let horizontal = rng.gen_bool(0.5);
        for t in a.start..a.end.min(doc.tokens.len() as u32) {
            let b = &mut doc.tokens[t as usize].bbox;
            let h = b.height().max(1.0);
            if horizontal {
                *b = b.translated(8.0 + 40.0 * strength as f32, 0.0);
            } else {
                *b = b.translated(0.0, (0.5 + strength as f32) * h);
            }
        }
    }
    doc.lines = Vec::new();
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_docmodel::{BBox, DocumentBuilder, Token};
    use proptest::prelude::*;

    fn paystub() -> Document {
        let mut b = DocumentBuilder::new("paystub");
        let push = |text: &str, x: f32, y: f32, b: &mut DocumentBuilder| {
            let w = 8.0 * text.len() as f32;
            b.push_token(Token::new(text, BBox::new(x, y, x + w, y + 12.0)));
        };
        push("Base", 10.0, 10.0, &mut b); // 0
        push("Salary", 60.0, 10.0, &mut b); // 1
        push("$3,308.62", 300.0, 10.0, &mut b); // 2
        push("Overtime", 10.0, 40.0, &mut b); // 3
        push("$120.00", 300.0, 40.0, &mut b); // 4
        b.push_annotation(EntitySpan::new(0, 2, 3));
        b.push_annotation(EntitySpan::new(1, 4, 5));
        let mut d = b.build();
        detect_lines(&mut d);
        d
    }

    #[test]
    fn names_round_trip() {
        for k in AttackKind::ALL {
            assert_eq!(AttackKind::parse(k.name()), Some(k));
        }
        assert_eq!(AttackKind::parse("no-such-attack"), None);
    }

    #[test]
    fn attacks_are_deterministic_and_pure() {
        let doc = paystub();
        for k in AttackKind::ALL {
            let before = doc.clone();
            let a = attack_document(&doc, k, 0.7, 99);
            let b = attack_document(&doc, k, 0.7, 99);
            assert_eq!(a, b, "{} not deterministic", k.name());
            assert_eq!(doc, before, "{} mutated its input", k.name());
            assert!(a.validate().is_ok(), "{}: {:?}", k.name(), a.validate());
        }
    }

    /// Compact but debuggable pin of an attacked document: the token
    /// texts verbatim plus a rotate-xor checksum of every bbox corner's
    /// bit pattern.
    fn fingerprint(d: &Document) -> (String, u64) {
        let texts = d
            .tokens
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join("|");
        let mut geo: u64 = 0;
        for t in &d.tokens {
            for c in [t.bbox.x0, t.bbox.y0, t.bbox.x1, t.bbox.y1] {
                geo = geo.rotate_left(7) ^ u64::from(c.to_bits());
            }
        }
        (texts, geo)
    }

    #[test]
    fn golden_attack_outputs_are_pinned() {
        // The cross-release determinism contract: the same (document,
        // kind, strength, seed) must keep producing byte-identical output,
        // or every checkpointed robustness study silently changes meaning.
        // If an attack algorithm changes *intentionally*, regenerate the
        // table from the printed actual values.
        let doc = paystub();
        let expected: [(&str, &str, u64); 6] = [
            (
                "keyphrase-abbrev",
                "Bas.|Salary|$3,308.62|Ove.|$120.00",
                0x761F_B103_06A5_667F,
            ),
            (
                "token-drop",
                "Salary|$3,308.62|Overtime|$120.00",
                0x761F_B10B_32CC_33CF,
            ),
            (
                "box-jitter",
                "Base|Salary|$3,308.62|Overtime|$120.00",
                0x2468_E821_02DC_34D1,
            ),
            (
                "line-merge-split",
                "Base|Salary|$3,308.62|Overtime|$120.00",
                0x761F_B103_06A5_667F,
            ),
            (
                "value-noise",
                "Base|Salary|$3,3OB.6|Overtime|$l20.00",
                0x761F_B103_06A5_667F,
            ),
            (
                "separation-shift",
                "Base|Salary|$3,308.62|Overtime|$120.00",
                0x761F_B11A_A02C_2AB2,
            ),
        ];
        for (k, (name, texts, geo)) in AttackKind::ALL.into_iter().zip(expected) {
            assert_eq!(k.name(), name, "taxonomy order changed");
            let (t, g) = fingerprint(&attack_document(&doc, k, 0.7, 99));
            assert_eq!(t, texts, "{name}: token texts drifted");
            assert_eq!(g, geo, "{name}: geometry drifted (got 0x{g:016X})");
        }
    }

    #[test]
    fn different_seeds_differ_for_stochastic_kinds() {
        let doc = paystub();
        // Box jitter always displaces; two seeds virtually never agree.
        let a = attack_document(&doc, AttackKind::BoxJitter, 1.0, 1);
        let b = attack_document(&doc, AttackKind::BoxJitter, 1.0, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn keyphrase_abbrev_never_touches_values() {
        let doc = paystub();
        let a = attack_document(&doc, AttackKind::KeyPhraseAbbrev, 1.0, 5);
        // Annotated tokens (2 and 4) keep their text under every seed.
        for ann in &a.annotations {
            for t in ann.start..ann.end {
                let text = &a.tokens[t as usize].text;
                assert!(text.starts_with('$'), "value token corrupted: {text}");
            }
        }
        // At strength 1.0 (p = 0.8), some 4+-char alphabetic token
        // abbreviates under this seed.
        assert!(a.tokens.iter().any(|t| t.text.ends_with('.')));
    }

    #[test]
    fn token_drop_keeps_annotations_intact() {
        let doc = paystub();
        for seed in 0..20 {
            let a = attack_document(&doc, AttackKind::TokenDrop, 1.0, seed);
            assert!(!a.tokens.is_empty());
            assert_eq!(a.annotations.len(), doc.annotations.len());
            for (orig, new) in doc.annotations.iter().zip(&a.annotations) {
                assert_eq!(
                    doc.span_text(orig.start, orig.end),
                    a.span_text(new.start, new.end),
                    "annotation text changed under token drop"
                );
            }
        }
    }

    #[test]
    fn token_drop_never_empties_document() {
        // A fully unlabeled doc at max strength must keep >= 1 token.
        let mut b = DocumentBuilder::new("unlabeled");
        b.push_token(Token::new("only", BBox::new(0.0, 0.0, 20.0, 10.0)));
        let doc = b.build();
        for seed in 0..50 {
            let a = attack_document(&doc, AttackKind::TokenDrop, 1.0, seed);
            assert!(!a.tokens.is_empty());
        }
    }

    #[test]
    fn value_noise_only_corrupts_labeled_tokens() {
        let doc = paystub();
        let a = attack_document(&doc, AttackKind::ValueNoise, 1.0, 3);
        for (i, labeled) in doc.labeled_token_set().iter().enumerate() {
            if !labeled {
                assert_eq!(a.tokens[i].text, doc.tokens[i].text);
            }
        }
    }

    #[test]
    fn zero_strength_geometry_attacks_keep_structure() {
        // At strength 0 the box-jitter displacement is exactly 0 and the
        // doc's geometry (hence re-detected lines) is unchanged.
        let doc = paystub();
        let a = attack_document(&doc, AttackKind::BoxJitter, 0.0, 123);
        assert_eq!(a.tokens, doc.tokens);
        assert_eq!(a.lines, doc.lines);
    }

    #[test]
    fn separation_shift_moves_values() {
        let doc = paystub();
        let a = attack_document(&doc, AttackKind::SeparationShift, 1.0, 9);
        let moved = doc
            .annotations
            .iter()
            .any(|ann| a.tokens[ann.start as usize].bbox != doc.tokens[ann.start as usize].bbox);
        assert!(moved, "no value box moved");
    }

    #[test]
    fn attack_corpus_is_order_independent_per_document() {
        // Per-document seeds depend on the document *index*, not on any
        // shared RNG stream, so attacking doc i alone with the derived
        // seed matches the corpus result exactly.
        let schema = fieldswap_docmodel::Schema::new(
            "t",
            vec![
                fieldswap_docmodel::FieldDef::new("a", fieldswap_docmodel::BaseType::Money),
                fieldswap_docmodel::FieldDef::new("b", fieldswap_docmodel::BaseType::Money),
            ],
        );
        let corpus = Corpus::new(schema, vec![paystub(), paystub(), paystub()]);
        let attacked = attack_corpus(&corpus, AttackKind::BoxJitter, 0.5, 77);
        for (i, d) in corpus.documents.iter().enumerate() {
            let doc_seed = mix(
                77,
                &[
                    STREAM_ATTACK,
                    AttackKind::BoxJitter.index(),
                    0.5f64.to_bits(),
                    i as u64,
                ],
            );
            let solo = attack_document(d, AttackKind::BoxJitter, 0.5, doc_seed);
            assert_eq!(attacked.documents[i], solo);
        }
    }

    #[test]
    fn strength_is_clamped() {
        let doc = paystub();
        let a = attack_document(&doc, AttackKind::TokenDrop, 7.5, 1);
        let b = attack_document(&doc, AttackKind::TokenDrop, 1.0, 1);
        assert_eq!(a, b);
        let c = attack_document(&doc, AttackKind::BoxJitter, f64::NAN, 1);
        assert_eq!(c.tokens, doc.tokens);
    }

    proptest! {
        /// Every attack kind, on arbitrary degenerate documents (zero-area
        /// boxes, NaN corners, empty texts, bogus annotations), must
        /// return a document that passes validate() — never panic.
        #[test]
        fn prop_attacks_never_panic_on_degenerate_documents(
            raw in proptest::collection::vec(
                (-500f32..500.0, -500f32..500.0, 0u8..5, 0u8..3), 0..12),
            ann in proptest::collection::vec((0u16..3, 0u32..16, 0u32..16), 0..4),
            kind_idx in 0usize..6,
            strength in -0.5f64..1.5,
            seed in 0u64..1000,
        ) {
            let tokens: Vec<Token> = raw
                .iter()
                .map(|&(x, y, special, tsel)| {
                    let (x1, y1) = match special {
                        0 => (x + 20.0, y + 12.0),
                        1 => (x, y),
                        2 => (f32::NAN, y + 12.0),
                        3 => (x - 50.0, y - 5.0),
                        _ => (f32::INFINITY, f32::NEG_INFINITY),
                    };
                    let text = match tsel {
                        0 => "word",
                        1 => "",
                        _ => "$1.00",
                    };
                    Token {
                        text: text.to_string(),
                        bbox: BBox { x0: x, y0: y, x1, y1 },
                    }
                })
                .collect();
            let annotations = ann
                .iter()
                .map(|&(f, s, e)| EntitySpan { field: f, start: s, end: e })
                .collect();
            let doc = Document {
                id: "degen".into(),
                tokens,
                lines: Vec::new(),
                annotations,
            };
            let out = attack_document(&doc, AttackKind::ALL[kind_idx], strength, seed);
            prop_assert!(out.validate().is_ok(), "{:?}", out.validate());
        }
    }
}
