//! Value swapping — the Section II-C extension the paper leaves to future
//! work: "When swapping the key phrases for a pair of fields, should we
//! also swap the values for these fields so that the model is not
//! confused by the augmented examples having values too different from
//! the original examples?"
//!
//! This module implements that extension: a [`ValueBank`] collects the
//! observed surface forms of each field's values across a corpus, and
//! [`apply_value_swap`] rewrites a synthetic document's relabeled
//! instances with values drawn from the *target* field's bank. Combined
//! with the phrase-swap engine this yields synthetics whose value
//! distributions match the target field (e.g. `tax_due` magnitudes
//! instead of `total_due` magnitudes).

use fieldswap_docmodel::{BBox, Corpus, Document, EntitySpan, FieldId, Token};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Observed value surface forms per field: each entry is the word
/// sequence of one labeled instance.
#[derive(Debug, Clone, Default)]
pub struct ValueBank {
    values: Vec<Vec<Vec<String>>>,
}

impl ValueBank {
    /// Collects every labeled value in `corpus`, grouped by field.
    pub fn collect(corpus: &Corpus) -> Self {
        let mut values: Vec<Vec<Vec<String>>> = vec![Vec::new(); corpus.schema.len()];
        for doc in &corpus.documents {
            for a in &doc.annotations {
                let words: Vec<String> = (a.start..a.end)
                    .map(|t| doc.tokens[t as usize].text.clone())
                    .collect();
                values[a.field as usize].push(words);
            }
        }
        Self { values }
    }

    /// Number of collected values for `field`.
    pub fn count(&self, field: FieldId) -> usize {
        self.values[field as usize].len()
    }

    /// A deterministic sample from `field`'s bank, or `None` when empty.
    pub fn sample(&self, field: FieldId, rng: &mut StdRng) -> Option<&[String]> {
        let bank = &self.values[field as usize];
        if bank.is_empty() {
            None
        } else {
            Some(&bank[rng.gen_range(0..bank.len())])
        }
    }
}

/// Replaces the token range `[start, end)` of `doc` with `words`, laid
/// out from the old range's top-left corner, shifting annotations and
/// re-detecting lines. The replaced range may itself be annotated; its
/// annotation (if any) is resized to cover the new words.
pub fn replace_range(doc: &Document, start: u32, end: u32, words: &[String]) -> Document {
    assert!(start < end && end <= doc.tokens.len() as u32);
    assert!(!words.is_empty(), "cannot replace with nothing");
    let first = doc.tokens[start as usize].bbox;
    let old_chars: usize = (start..end)
        .map(|t| doc.tokens[t as usize].text.chars().count())
        .sum();
    let old_width = doc.tokens[end as usize - 1].bbox.x1 - first.x0;
    let char_w = if old_chars > 0 {
        (old_width / old_chars as f32).clamp(4.0, 12.0)
    } else {
        7.0
    };

    let mut tokens: Vec<Token> = Vec::with_capacity(doc.tokens.len());
    tokens.extend_from_slice(&doc.tokens[..start as usize]);
    let mut x = first.x0;
    for w in words {
        let width = w.chars().count() as f32 * char_w;
        tokens.push(Token::new(
            w.clone(),
            BBox::new(x, first.y0, x + width, first.y1),
        ));
        x += width + char_w * 0.7;
    }
    tokens.extend_from_slice(&doc.tokens[end as usize..]);

    let delta = words.len() as i64 - (end - start) as i64;
    let shift = |t: u32| -> u32 {
        if t <= start {
            t
        } else {
            (t as i64 + delta) as u32
        }
    };
    let mut annotations = Vec::with_capacity(doc.annotations.len());
    for a in &doc.annotations {
        if a.start == start && a.end == end {
            // The replaced value itself: resize to the new words.
            annotations.push(EntitySpan::new(a.field, start, start + words.len() as u32));
        } else {
            debug_assert!(a.end <= start || a.start >= end, "partial overlap");
            annotations.push(EntitySpan::new(a.field, shift(a.start), shift(a.end)));
        }
    }
    annotations.sort_by_key(|a| (a.start, a.end));

    let mut out = Document {
        id: doc.id.clone(),
        tokens,
        lines: Vec::new(),
        annotations,
    };
    fieldswap_ocr::detect_lines(&mut out);
    debug_assert!(out.validate().is_ok());
    out
}

/// Rewrites every instance of `field` in `doc` with a value sampled from
/// `bank`. Returns the original document unchanged when the bank has no
/// values for the field.
pub fn apply_value_swap(doc: &Document, field: FieldId, bank: &ValueBank, seed: u64) -> Document {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = doc.clone();
    loop {
        // Re-find one span of `field` each round: replacement shifts
        // indices, so spans are processed one at a time. Spans already
        // matching a bank entry verbatim still get rewritten (cheap, and
        // keeps the logic simple); termination is by index progression.
        let spans: Vec<EntitySpan> = current.spans_of(field).copied().collect();
        let mut changed = false;
        for s in spans {
            let Some(words) = bank.sample(field, &mut rng) else {
                return current;
            };
            let existing: Vec<String> = (s.start..s.end)
                .map(|t| current.tokens[t as usize].text.clone())
                .collect();
            if existing == words {
                continue;
            }
            current = replace_range(&current, s.start, s.end, words);
            changed = true;
            break; // spans moved; re-scan
        }
        if !changed {
            return current;
        }
    }
}

/// Rewrites every labeled instance in `doc` with a value sampled from its
/// own field's bank (fields with empty banks are left untouched). For
/// FieldSwap synthetics this gives the relabeled instances values typical
/// of their *new* field — the full Section II-C value-swap extension.
pub fn apply_value_swap_all(doc: &Document, bank: &ValueBank, seed: u64) -> Document {
    let mut fields: Vec<FieldId> = doc.annotations.iter().map(|a| a.field).collect();
    fields.sort_unstable();
    fields.dedup();
    let mut current = doc.clone();
    for (k, f) in fields.into_iter().enumerate() {
        current = apply_value_swap(&current, f, bank, seed.wrapping_add(k as u64));
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_docmodel::{DocumentBuilder, FieldDef, Schema};

    fn doc(rows: &[(&str, Option<u16>)]) -> Document {
        let mut b = DocumentBuilder::new("t");
        let mut i = 0u32;
        for (r, (text, field)) in rows.iter().enumerate() {
            let start = i;
            for w in text.split_whitespace() {
                let x = 10.0 + 60.0 * (i - start) as f32;
                let y = 30.0 * r as f32;
                b.push_token(Token::new(w, BBox::new(x, y, x + 50.0, y + 12.0)));
                i += 1;
            }
            if let Some(f) = field {
                b.push_annotation(EntitySpan::new(*f, start, i));
            }
        }
        let mut d = b.build();
        fieldswap_ocr::detect_lines(&mut d);
        d
    }

    fn words(ws: &[&str]) -> Vec<String> {
        ws.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn replace_range_same_length() {
        let d = doc(&[("Total $5.00", Some(0))]);
        // Annotation covers both tokens (0..2); replace token 1 is inside
        // the annotation -> use the full span.
        let out = replace_range(&d, 0, 2, &words(&["Total", "$9.99"]));
        assert_eq!(out.tokens[1].text, "$9.99");
        assert_eq!(out.annotations[0], EntitySpan::new(0, 0, 2));
        assert!(out.validate().is_ok());
    }

    #[test]
    fn replace_range_grows_and_shifts() {
        let d = doc(&[("Name Alice", Some(0)), ("Total $5.00", Some(1))]);
        // Replace the first row's value span (tokens 0..2 labeled 0).
        let out = replace_range(&d, 0, 2, &words(&["Very", "Long", "Name"]));
        assert_eq!(out.tokens.len(), 5);
        let a0 = out.annotations.iter().find(|a| a.field == 0).unwrap();
        assert_eq!((a0.start, a0.end), (0, 3));
        let a1 = out.annotations.iter().find(|a| a.field == 1).unwrap();
        assert_eq!((a1.start, a1.end), (3, 5));
        assert!(out.validate().is_ok());
    }

    #[test]
    fn bank_collects_per_field() {
        let schema = Schema::new(
            "t",
            vec![
                FieldDef::new("a", fieldswap_docmodel::BaseType::Money),
                FieldDef::new("b", fieldswap_docmodel::BaseType::Money),
            ],
        );
        let corpus = Corpus::new(
            schema,
            vec![
                doc(&[("$1.00", Some(0))]),
                doc(&[("$2.00", Some(0)), ("$3.00", Some(1))]),
            ],
        );
        let bank = ValueBank::collect(&corpus);
        assert_eq!(bank.count(0), 2);
        assert_eq!(bank.count(1), 1);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(bank.sample(0, &mut rng).is_some());
    }

    #[test]
    fn value_swap_rewrites_instances() {
        let schema = Schema::new(
            "t",
            vec![FieldDef::new("a", fieldswap_docmodel::BaseType::Money)],
        );
        let corpus = Corpus::new(schema, vec![doc(&[("$777.77", Some(0))])]);
        let bank = ValueBank::collect(&corpus);
        let target = doc(&[("label text", None), ("$1.23", Some(0))]);
        let out = apply_value_swap(&target, 0, &bank, 42);
        let a = out.annotations[0];
        assert_eq!(out.span_text(a.start, a.end), "$777.77");
        // Unlabeled text untouched.
        assert_eq!(out.tokens[0].text, "label");
    }

    #[test]
    fn empty_bank_is_identity() {
        let schema = Schema::new(
            "t",
            vec![FieldDef::new("a", fieldswap_docmodel::BaseType::Money)],
        );
        let corpus = Corpus::new(schema, vec![]);
        let bank = ValueBank::collect(&corpus);
        let target = doc(&[("$1.23", Some(0))]);
        let out = apply_value_swap(&target, 0, &bank, 1);
        assert_eq!(out, target);
    }

    #[test]
    fn value_swap_is_deterministic() {
        let schema = Schema::new(
            "t",
            vec![FieldDef::new("a", fieldswap_docmodel::BaseType::Money)],
        );
        let corpus = Corpus::new(
            schema,
            vec![doc(&[("$1.00", Some(0))]), doc(&[("$2.00", Some(0))])],
        );
        let bank = ValueBank::collect(&corpus);
        let target = doc(&[("$9.99", Some(0))]);
        let a = apply_value_swap(&target, 0, &bank, 7);
        let b = apply_value_swap(&target, 0, &bank, 7);
        assert_eq!(a, b);
    }
}
