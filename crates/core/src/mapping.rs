//! Source→target field-pair mapping strategies (Section II-B).

use crate::config::FieldSwapConfig;
use fieldswap_docmodel::{FieldId, Schema};

/// How to build the list of source→target field pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairStrategy {
    /// Swap only within a field: `S == T`. Lowest risk of bad synthetics,
    /// but rare fields — the ones most worth augmenting — gain the least.
    FieldToField,
    /// Swap between any two fields sharing a base type (a field is also
    /// mapped to itself, matching the paper's implementation note). More
    /// synthetics (3–10x in Table III), at the cost of occasional
    /// contradictory examples.
    TypeToType,
    /// Swap between any pair of fields. The paper found this "nearly
    /// always worse" than type-to-type; included for the ablation.
    AllToAll,
}

impl PairStrategy {
    /// Builds the pair list for `schema`, restricted to fields that have
    /// at least one key phrase in `config` (fields without phrases can be
    /// neither sources nor targets).
    pub fn build(&self, schema: &Schema, config: &FieldSwapConfig) -> Vec<(FieldId, FieldId)> {
        let eligible: Vec<FieldId> = schema
            .iter()
            .map(|(id, _)| id)
            .filter(|&id| config.has_phrases(id))
            .collect();
        let mut pairs = Vec::new();
        match self {
            PairStrategy::FieldToField => {
                for &f in &eligible {
                    pairs.push((f, f));
                }
            }
            PairStrategy::TypeToType => {
                for &s in &eligible {
                    for &t in &eligible {
                        if schema.field(s).base_type == schema.field(t).base_type {
                            pairs.push((s, t));
                        }
                    }
                }
            }
            PairStrategy::AllToAll => {
                for &s in &eligible {
                    for &t in &eligible {
                        pairs.push((s, t));
                    }
                }
            }
        }
        pairs
    }
}

/// Builds a human-expert pair list: type-to-type pairs with a caller-
/// supplied pruning predicate removing pairs "most likely to appear in
/// different tables or sections of the document" (Section III). `keep`
/// receives `(source, target)` and returns whether to keep the pair.
pub fn expert_pairs<F>(
    schema: &Schema,
    config: &FieldSwapConfig,
    mut keep: F,
) -> Vec<(FieldId, FieldId)>
where
    F: FnMut(FieldId, FieldId) -> bool,
{
    PairStrategy::TypeToType
        .build(schema, config)
        .into_iter()
        .filter(|&(s, t)| keep(s, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_docmodel::{BaseType, FieldDef};

    fn schema() -> Schema {
        Schema::new(
            "t",
            vec![
                FieldDef::new("m1", BaseType::Money),
                FieldDef::new("m2", BaseType::Money),
                FieldDef::new("d1", BaseType::Date),
                FieldDef::new("s1", BaseType::String),
            ],
        )
    }

    fn config_with_phrases(fields: &[FieldId]) -> FieldSwapConfig {
        let mut c = FieldSwapConfig::new(4);
        for &f in fields {
            c.add_phrase(f, "phrase");
        }
        c
    }

    #[test]
    fn field_to_field_is_self_pairs() {
        let c = config_with_phrases(&[0, 1, 2]);
        let pairs = PairStrategy::FieldToField.build(&schema(), &c);
        assert_eq!(pairs, vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn type_to_type_groups_by_base_type() {
        let c = config_with_phrases(&[0, 1, 2, 3]);
        let pairs = PairStrategy::TypeToType.build(&schema(), &c);
        // Money block: (0,0),(0,1),(1,0),(1,1); date self; string self.
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(1, 0)));
        assert!(pairs.contains(&(0, 0)));
        assert!(!pairs.contains(&(0, 2)), "money -> date is not allowed");
        assert_eq!(pairs.len(), 4 + 1 + 1);
    }

    #[test]
    fn all_to_all_crosses_types() {
        let c = config_with_phrases(&[0, 2]);
        let pairs = PairStrategy::AllToAll.build(&schema(), &c);
        assert_eq!(pairs.len(), 4);
        assert!(pairs.contains(&(0, 2)));
    }

    #[test]
    fn fields_without_phrases_excluded() {
        let c = config_with_phrases(&[0]);
        let pairs = PairStrategy::TypeToType.build(&schema(), &c);
        assert_eq!(pairs, vec![(0, 0)]);
    }

    #[test]
    fn expert_pairs_prunes() {
        let c = config_with_phrases(&[0, 1]);
        // Prune the cross pairs, keep self pairs.
        let pairs = expert_pairs(&schema(), &c, |s, t| s == t);
        assert_eq!(pairs, vec![(0, 0), (1, 1)]);
    }
}
