//! Cross-document-type swapping — the paper's future-work question:
//! "Under what circumstances does swapping across document types help?"
//! (Section VI).
//!
//! The mechanism generalizes FieldSwap: a labeled instance of a *source*
//! field in document type A becomes a synthetic example of a *target*
//! field in document type B by replacing the A-field's key phrase with a
//! B-field key phrase and relabeling into B's schema. All other
//! annotations are dropped (they do not exist in B's schema), so the
//! synthetic document contributes exactly one field's worth of training
//! signal to the target domain.
//!
//! Pairs are restricted to matching base types, the same heuristic that
//! makes in-domain type-to-type swaps safe.

use crate::config::FieldSwapConfig;
use crate::engine::{swap, AugmentStats, EngineOptions};
use crate::matcher::{DocMatcher, PhraseMatch};
use fieldswap_docmodel::{Corpus, Document, FieldId, Schema};

/// A cross-domain augmentation specification.
#[derive(Debug)]
pub struct CrossDomainSpec<'a> {
    /// Key phrases for the source domain's fields (source schema ids).
    pub source_config: &'a FieldSwapConfig,
    /// Key phrases for the target domain's fields (target schema ids).
    pub target_config: &'a FieldSwapConfig,
    /// `(source field, target field)` pairs; ids live in their respective
    /// schemas.
    pub pairs: Vec<(FieldId, FieldId)>,
}

/// Builds all `(source, target)` pairs whose base types match and whose
/// fields have key phrases in their respective configs.
pub fn cross_pairs_by_type(
    source_schema: &Schema,
    target_schema: &Schema,
    source_config: &FieldSwapConfig,
    target_config: &FieldSwapConfig,
) -> Vec<(FieldId, FieldId)> {
    let mut pairs = Vec::new();
    for (s, sdef) in source_schema.iter() {
        if !source_config.has_phrases(s) {
            continue;
        }
        for (t, tdef) in target_schema.iter() {
            if sdef.base_type == tdef.base_type && target_config.has_phrases(t) {
                pairs.push((s, t));
            }
        }
    }
    pairs
}

/// Generates target-domain synthetic documents from a source-domain
/// corpus. The returned documents carry annotations in the **target**
/// schema's field-id space.
pub fn augment_cross_domain(
    source: &Corpus,
    spec: &CrossDomainSpec<'_>,
) -> (Vec<Document>, AugmentStats) {
    let opts = EngineOptions::default();
    let mut out = Vec::new();
    let mut stats = AugmentStats::default();
    for doc in &source.documents {
        let matcher = DocMatcher::new(doc);
        for &(s, t) in &spec.pairs {
            if !doc.has_field(s) {
                continue;
            }
            let mut matches: Vec<PhraseMatch> = Vec::new();
            for phrase in spec.source_config.phrases(s) {
                stats.phrase_probes += 1;
                matches.extend(matcher.find(phrase));
            }
            stats.phrase_matches += matches.len();
            if matches.is_empty() {
                continue;
            }
            matches.sort_by_key(|m| m.start);
            matches.dedup();

            // Project the document into the target schema: keep only the
            // source field's instances (they become the target field) and
            // drop everything else.
            let mut projected = doc.clone();
            projected.annotations.retain(|a| a.field == s);
            projected.id = format!("{}+cross", doc.id);

            let old_texts = crate::engine::match_texts(doc, &matches);
            let mut produced = false;
            for (pi, target_phrase) in spec.target_config.phrases(t).iter().enumerate() {
                match swap(
                    &projected,
                    &matches,
                    &old_texts,
                    s,
                    t,
                    target_phrase,
                    pi,
                    &opts,
                ) {
                    Some(synth) => {
                        out.push(synth);
                        stats.generated += 1;
                        produced = true;
                    }
                    None => stats.discarded_unchanged += 1,
                }
            }
            if produced {
                stats.productive_pairs += 1;
            }
        }
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_docmodel::{BBox, BaseType, DocumentBuilder, EntitySpan, FieldDef, Token};

    fn invoice_doc() -> Document {
        let mut b = DocumentBuilder::new("inv-1");
        let put = |text: &str, x: f32, y: f32, b: &mut DocumentBuilder| {
            let w = 8.0 * text.len() as f32;
            b.push_token(Token::new(text, BBox::new(x, y, x + w, y + 12.0)));
        };
        put("Amount", 10.0, 10.0, &mut b); // 0
        put("Due", 70.0, 10.0, &mut b); // 1
        put("$512.00", 300.0, 10.0, &mut b); // 2
        put("Customer", 10.0, 40.0, &mut b); // 3
        put("Alice", 300.0, 40.0, &mut b); // 4
        b.push_annotation(EntitySpan::new(0, 2, 3)); // invoice: total_due
        b.push_annotation(EntitySpan::new(1, 4, 5)); // invoice: customer
        let mut d = b.build();
        fieldswap_ocr::detect_lines(&mut d);
        d
    }

    fn schemas() -> (Schema, Schema) {
        let source = Schema::new(
            "invoice",
            vec![
                FieldDef::new("total_due", BaseType::Money),
                FieldDef::new("customer", BaseType::String),
            ],
        );
        let target = Schema::new(
            "loan",
            vec![
                FieldDef::new("borrower", BaseType::String),
                FieldDef::new("payment_due", BaseType::Money),
            ],
        );
        (source, target)
    }

    fn configs() -> (FieldSwapConfig, FieldSwapConfig) {
        let mut src = FieldSwapConfig::new(2);
        src.set_phrases(0, vec!["Amount Due".into()]);
        src.set_phrases(1, vec!["Customer".into()]);
        let mut tgt = FieldSwapConfig::new(2);
        tgt.set_phrases(0, vec!["Borrower".into()]);
        tgt.set_phrases(1, vec!["Payment Due".into(), "Total Payment".into()]);
        (src, tgt)
    }

    #[test]
    fn pairs_respect_base_types() {
        let (ss, ts) = schemas();
        let (sc, tc) = configs();
        let pairs = cross_pairs_by_type(&ss, &ts, &sc, &tc);
        // money->money and string->string only.
        assert_eq!(pairs, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn cross_domain_synthetics_land_in_target_schema() {
        let (ss, ts) = schemas();
        let (sc, tc) = configs();
        let corpus = Corpus::new(ss.clone(), vec![invoice_doc()]);
        let spec = CrossDomainSpec {
            source_config: &sc,
            target_config: &tc,
            pairs: cross_pairs_by_type(&ss, &ts, &sc, &tc),
        };
        let (synths, stats) = augment_cross_domain(&corpus, &spec);
        // money pair yields 2 synthetics (two target phrases); string
        // pair yields 1.
        assert_eq!(stats.generated, 3);
        for s in &synths {
            assert!(s.validate().is_ok());
            // Exactly one annotation: the projected instance.
            assert_eq!(s.annotations.len(), 1);
            assert!((s.annotations[0].field as usize) < ts.len());
        }
        // The money synthetic reads "payment due $512.00".
        let money = synths.iter().find(|s| s.annotations[0].field == 1).unwrap();
        let text: Vec<&str> = money.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(text.contains(&"payment") || text.contains(&"total"));
        assert!(text.contains(&"$512.00"));
    }

    #[test]
    fn no_phrase_match_no_cross_synthetic() {
        let (ss, _ts) = schemas();
        let (mut sc, tc) = configs();
        sc.set_phrases(0, vec!["Nonexistent Phrase".into()]);
        let corpus = Corpus::new(ss.clone(), vec![invoice_doc()]);
        let spec = CrossDomainSpec {
            source_config: &sc,
            target_config: &tc,
            pairs: vec![(0, 1)],
        };
        let (synths, _) = augment_cross_domain(&corpus, &spec);
        assert!(synths.is_empty());
    }

    #[test]
    fn cross_domain_with_generated_corpora() {
        use fieldswap_datagen::{generate, Domain};
        // Invoices -> Earnings: money fields transfer.
        let invoices = generate(Domain::Invoices, 5, 10);
        let earnings_schema = Domain::Earnings.generator().schema();
        let mut sc = FieldSwapConfig::new(invoices.schema.len());
        for (name, phrases) in Domain::Invoices.generator().phrase_bank() {
            let id = invoices.schema.field_id(&name).unwrap();
            sc.set_phrases(id, phrases);
        }
        let mut tc = FieldSwapConfig::new(earnings_schema.len());
        for (name, phrases) in Domain::Earnings.generator().phrase_bank() {
            let id = earnings_schema.field_id(&name).unwrap();
            tc.set_phrases(id, phrases);
        }
        let pairs = cross_pairs_by_type(&invoices.schema, &earnings_schema, &sc, &tc);
        assert!(!pairs.is_empty());
        let spec = CrossDomainSpec {
            source_config: &sc,
            target_config: &tc,
            pairs,
        };
        let (synths, stats) = augment_cross_domain(&invoices, &spec);
        assert!(stats.generated > 0);
        for s in synths.iter().take(20) {
            assert!(s.validate().is_ok());
            assert_eq!(s.annotations.len(), 1);
        }
    }
}
