#![warn(missing_docs)]

//! # fieldswap-core
//!
//! The paper's primary contribution: **FieldSwap**, a data augmentation
//! technique for form-like document extraction (Section II).
//!
//! Given a labeled example of a *source* field `S`, FieldSwap creates a
//! synthetic example for a *target* field `T` by replacing the key phrase
//! indicative of `S` in the document with a key phrase associated with `T`
//! and relabeling the `S` instances as `T`. The augmentation is governed by
//! two inputs (Section II):
//!
//! 1. the set of valid key phrases for each field ([`FieldSwapConfig`]);
//! 2. a list of source→target field pairs ([`PairStrategy`]):
//!    field-to-field, type-to-type, all-to-all, or a human-expert curated
//!    list.
//!
//! The engine operates at **document level** (Section II-C), so it is
//! agnostic to the extraction-model architecture. Following the paper's
//! deliberately simple implementation: one pair is swapped per synthetic
//! document, values are left unchanged, *all* matching source phrases are
//! replaced, all `S` instances are relabeled to `T`, and synthetics whose
//! text is unchanged by the replacement are discarded (this suppresses the
//! contradictory-pair hazard when two fields share a key phrase).
//!
//! ## Example
//! ```
//! use fieldswap_core::{FieldSwapConfig, PairStrategy, augment_corpus};
//! use fieldswap_datagen::{generate, Domain};
//!
//! let corpus = generate(Domain::Earnings, 7, 10);
//! // A config with oracle phrases (a human expert would supply these).
//! let mut config = FieldSwapConfig::new(corpus.schema.len());
//! for (name, phrases) in Domain::Earnings.generator().phrase_bank() {
//!     let id = corpus.schema.field_id(&name).unwrap();
//!     config.set_phrases(id, phrases);
//! }
//! config.set_pairs(PairStrategy::TypeToType.build(&corpus.schema, &config));
//! let (synthetics, stats) = augment_corpus(&corpus, &config);
//! assert_eq!(synthetics.len(), stats.generated);
//! ```

pub mod attacks;
pub mod config;
pub mod crossdomain;
pub mod engine;
pub mod mapping;
pub mod matcher;
pub mod valueswap;

pub use attacks::{attack_corpus, attack_document, AttackKind, STREAM_ATTACK};
pub use config::FieldSwapConfig;
pub use crossdomain::{augment_cross_domain, cross_pairs_by_type, CrossDomainSpec};
pub use engine::{
    augment_corpus, augment_corpus_with, augment_document, augment_document_with, AugmentStats,
    EngineOptions,
};
pub use mapping::PairStrategy;
pub use matcher::{find_phrase_matches, PhraseMatch};
pub use valueswap::{apply_value_swap, apply_value_swap_all, replace_range, ValueBank};
