//! The document-level augmentation engine (Section II-C).
//!
//! For each document in the training data and each source→target pair
//! `(S, T)`: if the document contains a labeled instance of `S` *and* an
//! occurrence of one of `S`'s key phrases, then for every key phrase of `T`
//! we emit one synthetic document in which all matching `S` phrases are
//! replaced by that `T` phrase and all `S` instances are relabeled to `T`.
//! Synthetics whose token text is unchanged by the replacement are
//! discarded — the guard that suppresses contradictory same-phrase swaps.

use crate::config::FieldSwapConfig;
use crate::matcher::{DocMatcher, PhraseMatch};
use fieldswap_docmodel::{BBox, Corpus, Document, EntitySpan, FieldId, Token};

/// Engine behavior knobs. The defaults implement the paper exactly; the
/// alternatives exist for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Discard synthetics whose token text is unchanged by the swap
    /// (Section II-C — the guard against same-phrase contradictory
    /// swaps). Disabling this is the `discard_rule` ablation.
    pub discard_unchanged: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            discard_unchanged: true,
        }
    }
}

/// Counters describing one augmentation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AugmentStats {
    /// Synthetic documents produced.
    pub generated: usize,
    /// Candidates discarded because the replacement left the text
    /// unchanged (source phrase == target phrase).
    pub discarded_unchanged: usize,
    /// `(source, target)` pair applications that produced at least one
    /// synthetic.
    pub productive_pairs: usize,
    /// Matcher probes: individual `(pair, source phrase)` lookups.
    pub phrase_probes: usize,
    /// Matcher hits: phrase occurrences found across all probes
    /// (before overlap resolution).
    pub phrase_matches: usize,
    /// Pair applications skipped because the source or target field has no
    /// key phrases (e.g. inference produced none) — the graceful
    /// degradation path, never a panic.
    pub skipped_pairs_no_phrases: usize,
    /// Documents that failed [`Document::validate`] and were repaired by
    /// [`Document::sanitize`] before augmentation.
    pub sanitized_docs: usize,
}

impl AugmentStats {
    fn absorb(&mut self, other: &AugmentStats) {
        self.generated += other.generated;
        self.discarded_unchanged += other.discarded_unchanged;
        self.productive_pairs += other.productive_pairs;
        self.phrase_probes += other.phrase_probes;
        self.phrase_matches += other.phrase_matches;
        self.skipped_pairs_no_phrases += other.skipped_pairs_no_phrases;
        self.sanitized_docs += other.sanitized_docs;
    }

    /// Publishes this run's counters to the `fieldswap-obs` registry
    /// (no-op unless metrics are enabled).
    fn report(&self) {
        if !fieldswap_obs::metrics_enabled() {
            return;
        }
        let attempts = self.generated + self.discarded_unchanged;
        fieldswap_obs::counter_add("fieldswap_swap_attempts_total", attempts as u64);
        fieldswap_obs::counter_add("fieldswap_swap_synthetics_total", self.generated as u64);
        fieldswap_obs::counter_add(
            "fieldswap_swap_discarded_unchanged_total",
            self.discarded_unchanged as u64,
        );
        fieldswap_obs::counter_add(
            "fieldswap_swap_productive_pairs_total",
            self.productive_pairs as u64,
        );
        fieldswap_obs::counter_add("fieldswap_matcher_probes_total", self.phrase_probes as u64);
        fieldswap_obs::counter_add("fieldswap_matcher_hits_total", self.phrase_matches as u64);
        fieldswap_obs::counter_add(
            "fieldswap_swap_skipped_pairs_no_phrases_total",
            self.skipped_pairs_no_phrases as u64,
        );
        fieldswap_obs::counter_add("fieldswap_sanitized_docs_total", self.sanitized_docs as u64);
    }
}

/// Augments a whole corpus: applies [`augment_document`] to every document
/// and aggregates statistics. Synthetic documents do not include the
/// originals; train on the union (Fig. 3, step 3).
pub fn augment_corpus(corpus: &Corpus, config: &FieldSwapConfig) -> (Vec<Document>, AugmentStats) {
    augment_corpus_with(corpus, config, &EngineOptions::default())
}

/// [`augment_corpus`] with explicit engine options.
pub fn augment_corpus_with(
    corpus: &Corpus,
    config: &FieldSwapConfig,
    opts: &EngineOptions,
) -> (Vec<Document>, AugmentStats) {
    let _span = fieldswap_obs::span("augment_corpus");
    let mut synthetics = Vec::new();
    let mut stats = AugmentStats::default();
    for doc in &corpus.documents {
        let (mut docs, s) = augment_document_with(doc, config, opts);
        stats.absorb(&s);
        synthetics.append(&mut docs);
    }
    stats.report();
    (synthetics, stats)
}

/// Generates all synthetic variants of one document under `config`.
pub fn augment_document(doc: &Document, config: &FieldSwapConfig) -> (Vec<Document>, AugmentStats) {
    augment_document_with(doc, config, &EngineOptions::default())
}

/// [`augment_document`] with explicit engine options.
pub fn augment_document_with(
    doc: &Document,
    config: &FieldSwapConfig,
    opts: &EngineOptions,
) -> (Vec<Document>, AugmentStats) {
    let mut out = Vec::new();
    let mut stats = AugmentStats::default();
    // Degenerate inputs (deserialized or attacked documents that bypass
    // `DocumentBuilder`) are repaired on a copy rather than crashing the
    // engine; valid documents take the borrowed fast path untouched.
    let repaired;
    let doc = if doc.validate().is_err() {
        let mut copy = doc.clone();
        copy.sanitize();
        stats.sanitized_docs = 1;
        repaired = copy;
        &repaired
    } else {
        doc
    };
    // One matching context per document: token normalization and the
    // labeled set are shared by every (pair, phrase) probe below.
    let matcher = DocMatcher::new(doc);
    for &(source, target) in config.pairs() {
        if !config.has_phrases(source) || !config.has_phrases(target) {
            // Zero inferred phrases for a field: skip the pair (counted),
            // never panic. The swap itself would be a no-op anyway.
            stats.skipped_pairs_no_phrases += 1;
            continue;
        }
        if !doc.has_field(source) {
            continue;
        }
        // Find occurrences of any source key phrase. The paper replaces
        // "all matching source key phrases"; occurrences of different
        // source phrases are all rewritten in the same synthetic.
        let mut matches: Vec<PhraseMatch> = Vec::new();
        for phrase in config.phrases(source) {
            stats.phrase_probes += 1;
            matches.extend(matcher.find(phrase));
        }
        stats.phrase_matches += matches.len();
        if matches.is_empty() {
            continue;
        }
        matches.sort_by_key(|m| m.start);
        matches.dedup();
        // Drop overlapping matches (e.g. "base" inside "base salary"):
        // keep the earliest-starting, longest occurrence.
        let matches = drop_overlaps(matches);
        let old_texts = match_texts(doc, &matches);

        let mut produced = false;
        for (pi, target_phrase) in config.phrases(target).iter().enumerate() {
            match swap(
                doc,
                &matches,
                &old_texts,
                source,
                target,
                target_phrase,
                pi,
                opts,
            ) {
                Some(synth) => {
                    out.push(synth);
                    stats.generated += 1;
                    produced = true;
                }
                None => stats.discarded_unchanged += 1,
            }
        }
        if produced {
            stats.productive_pairs += 1;
        }
    }
    (out, stats)
}

fn drop_overlaps(matches: Vec<PhraseMatch>) -> Vec<PhraseMatch> {
    let mut out: Vec<PhraseMatch> = Vec::with_capacity(matches.len());
    for m in matches {
        match out.last_mut() {
            Some(last) if m.start < last.end => {
                // Overlap: prefer the longer occurrence.
                if m.end - m.start > last.end - last.start {
                    *last = m;
                }
            }
            _ => out.push(m),
        }
    }
    out
}

/// The normalized, space-joined text of each match — what the match
/// "already reads as" for the unchanged-swap guard in [`swap`].
pub(crate) fn match_texts(doc: &Document, matches: &[PhraseMatch]) -> Vec<String> {
    matches
        .iter()
        .map(|m| {
            let old: Vec<String> = (m.start..m.end)
                .map(|t| crate::config::normalize_phrase(&doc.tokens[t as usize].text))
                .collect();
            old.join(" ")
        })
        .collect()
}

/// Builds the synthetic document: replaces every match with
/// `target_phrase` tokens, relabels `source` annotations as `target`, and
/// re-runs line detection. Returns `None` when the text is unchanged.
/// Shared with the cross-domain extension (`crate::crossdomain`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn swap(
    doc: &Document,
    matches: &[PhraseMatch],
    old_texts: &[String],
    source: FieldId,
    target: FieldId,
    target_phrase: &str,
    phrase_index: usize,
    opts: &EngineOptions,
) -> Option<Document> {
    // A whitespace-only target phrase (possible via a hand-written JSON
    // config that bypasses `set_phrases` normalization) would emit a
    // synthetic containing an empty-word token; discard the swap instead.
    let new_words: Vec<&str> = target_phrase.split_whitespace().collect();
    if new_words.is_empty() {
        return None;
    }

    // Unchanged-text check: every match already reads as the target phrase.
    // `old_texts` is precomputed once per (document, pair) — see
    // [`match_texts`] — because it does not depend on the target phrase.
    let unchanged = old_texts.iter().all(|old| old == target_phrase);
    if unchanged && opts.discard_unchanged {
        return None;
    }

    // Rebuild the token list, tracking the old→new index mapping so that
    // annotations (which never overlap matches) can be shifted.
    let mut tokens: Vec<Token> = Vec::with_capacity(doc.tokens.len());
    let mut index_map: Vec<Option<u32>> = vec![None; doc.tokens.len()];
    let mut next_match = 0usize;
    let mut i = 0u32;
    let n = doc.tokens.len() as u32;
    while i < n {
        if next_match < matches.len() && matches[next_match].start == i {
            let m = matches[next_match];
            next_match += 1;
            // Lay the replacement phrase out from the old occurrence's
            // top-left corner, estimating character width from the old
            // tokens so the new phrase sits in the same visual slot.
            let first = &doc.tokens[m.start as usize].bbox;
            let old_chars: usize = (m.start..m.end)
                .map(|t| doc.tokens[t as usize].text.chars().count())
                .sum();
            let old_width: f32 = doc.tokens[m.end as usize - 1].bbox.x1 - first.x0;
            let char_w = if old_chars > 0 {
                (old_width / old_chars as f32).clamp(4.0, 12.0)
            } else {
                7.0
            };
            let mut x = first.x0;
            for w in &new_words {
                let width = w.chars().count() as f32 * char_w;
                tokens.push(Token::new(*w, BBox::new(x, first.y0, x + width, first.y1)));
                x += width + char_w * 0.7;
            }
            i = m.end;
            continue;
        }
        index_map[i as usize] = Some(tokens.len() as u32);
        tokens.push(doc.tokens[i as usize].clone());
        i += 1;
    }

    // Shift and relabel annotations. Annotations never overlap matches
    // (the matcher excludes labeled tokens), so the whole span maps.
    let mut annotations = Vec::with_capacity(doc.annotations.len());
    for a in &doc.annotations {
        let Some(new_start) = index_map[a.start as usize] else {
            debug_assert!(false, "annotation overlapped a phrase match");
            continue;
        };
        let new_end = new_start + (a.end - a.start);
        let field = if a.field == source { target } else { a.field };
        annotations.push(EntitySpan::new(field, new_start, new_end));
    }
    annotations.sort_by_key(|a| (a.start, a.end));

    let mut synth = Document {
        id: format!("{}+swap{}-{}p{}", doc.id, source, target, phrase_index),
        tokens,
        lines: Vec::new(),
        annotations,
    };
    fieldswap_ocr::detect_lines(&mut synth);
    debug_assert!(synth.validate().is_ok());
    Some(synth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_docmodel::{DocumentBuilder, Schema};

    /// A paystub-like snippet mirroring the paper's Fig. 1:
    /// "Base Salary  $3,308.62" with the amount labeled `current.salary`
    /// (field 0) and an "Overtime  $120.00" row labeled field 1.
    fn fig1_doc() -> Document {
        let mut b = DocumentBuilder::new("paystub");
        let push = |text: &str, x: f32, y: f32, b: &mut DocumentBuilder| {
            let w = 8.0 * text.len() as f32;
            b.push_token(Token::new(text, BBox::new(x, y, x + w, y + 12.0)));
        };
        push("Base", 10.0, 10.0, &mut b); // 0
        push("Salary", 60.0, 10.0, &mut b); // 1
        push("$3,308.62", 300.0, 10.0, &mut b); // 2
        push("Overtime", 10.0, 40.0, &mut b); // 3
        push("$120.00", 300.0, 40.0, &mut b); // 4
        b.push_annotation(EntitySpan::new(0, 2, 3)); // current.salary
        b.push_annotation(EntitySpan::new(1, 4, 5)); // current.overtime
        let mut d = b.build();
        fieldswap_ocr::detect_lines(&mut d);
        d
    }

    fn fig1_config() -> FieldSwapConfig {
        let mut c = FieldSwapConfig::new(2);
        c.set_phrases(0, vec!["Base Salary".into(), "Base".into()]);
        c.set_phrases(1, vec!["Overtime".into()]);
        c
    }

    #[test]
    fn field_to_field_swap_keeps_label() {
        // Fig. 1 bottom-left: replace "Base Salary" with "Base"; the
        // label on $3,308.62 stays current.salary.
        let doc = fig1_doc();
        let mut config = fig1_config();
        config.set_pairs(vec![(0, 0)]);
        let (synths, stats) = augment_document(&doc, &config);
        // Two target phrases: "base salary" (unchanged → discard) and
        // "base" (valid).
        assert_eq!(stats.generated, 1);
        assert_eq!(stats.discarded_unchanged, 1);
        let s = &synths[0];
        let text: Vec<&str> = s.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(text, vec!["base", "$3,308.62", "Overtime", "$120.00"]);
        let salary = s.annotations.iter().find(|a| a.field == 0).unwrap();
        assert_eq!(s.span_text(salary.start, salary.end), "$3,308.62");
    }

    #[test]
    fn cross_field_swap_relabels() {
        // Fig. 1 bottom-right: replace "Base Salary" with "Overtime" and
        // relabel $3,308.62 as current.overtime.
        let doc = fig1_doc();
        let mut config = fig1_config();
        config.set_pairs(vec![(0, 1)]);
        let (synths, stats) = augment_document(&doc, &config);
        assert_eq!(stats.generated, 1);
        let s = &synths[0];
        // Both money values are now labeled field 1.
        let fields: Vec<FieldId> = s.annotations.iter().map(|a| a.field).collect();
        assert_eq!(fields, vec![1, 1]);
        let texts: Vec<&str> = s.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["overtime", "$3,308.62", "Overtime", "$120.00"]);
    }

    #[test]
    fn no_source_instance_no_synthetic() {
        let mut doc = fig1_doc();
        doc.annotations.retain(|a| a.field != 0);
        let mut config = fig1_config();
        config.set_pairs(vec![(0, 1)]);
        let (synths, _) = augment_document(&doc, &config);
        assert!(synths.is_empty());
    }

    #[test]
    fn no_phrase_occurrence_no_synthetic() {
        // Source field labeled but its phrase absent from the page.
        let doc = fig1_doc();
        let mut config = FieldSwapConfig::new(2);
        config.set_phrases(0, vec!["Gross Pay".into()]);
        config.set_phrases(1, vec!["Overtime".into()]);
        config.set_pairs(vec![(0, 1)]);
        let (synths, _) = augment_document(&doc, &config);
        assert!(synths.is_empty());
    }

    #[test]
    fn same_phrase_swap_discarded() {
        // Contradictory-pair guard: if S and T share the phrase, the
        // synthetic text is unchanged and must be discarded.
        let doc = fig1_doc();
        let mut config = FieldSwapConfig::new(2);
        config.set_phrases(0, vec!["Overtime".into()]); // pretend
        config.set_phrases(1, vec!["Overtime".into()]);
        config.set_pairs(vec![(1, 0)]);
        let (synths, stats) = augment_document(&doc, &config);
        assert!(synths.is_empty());
        assert_eq!(stats.discarded_unchanged, 1);
    }

    #[test]
    fn replacement_preserves_geometry_slot() {
        let doc = fig1_doc();
        let mut config = fig1_config();
        config.set_pairs(vec![(0, 1)]);
        let (synths, _) = augment_document(&doc, &config);
        let s = &synths[0];
        // New phrase starts at the old phrase's top-left corner.
        assert_eq!(s.tokens[0].bbox.x0, doc.tokens[0].bbox.x0);
        assert_eq!(s.tokens[0].bbox.y0, doc.tokens[0].bbox.y0);
        // Value stays put.
        let v = s.annotations.iter().find(|a| a.start == 1).unwrap();
        assert_eq!(s.tokens[v.start as usize].bbox, doc.tokens[2].bbox);
    }

    #[test]
    fn longer_replacement_phrase_expands_tokens() {
        let doc = fig1_doc();
        let mut config = FieldSwapConfig::new(2);
        config.set_phrases(0, vec!["Base Salary".into()]);
        config.set_phrases(1, vec!["Paid Time Off".into()]);
        config.set_pairs(vec![(0, 1)]);
        let (synths, _) = augment_document(&doc, &config);
        let s = &synths[0];
        assert_eq!(s.tokens.len(), 6); // 3-word phrase replaces 2 words
        assert!(s.validate().is_ok());
        // Annotation indices shifted correctly.
        let salary = s
            .annotations
            .iter()
            .find(|a| a.field == 1 && a.start == 3)
            .unwrap();
        assert_eq!(s.span_text(salary.start, salary.end), "$3,308.62");
    }

    #[test]
    fn all_occurrences_replaced() {
        // Two "Base Salary" occurrences (e.g. a summary repeating a row).
        let mut b = DocumentBuilder::new("d");
        for (i, (t, x, y)) in [
            ("Base", 10.0, 10.0),
            ("Salary", 60.0, 10.0),
            ("$1.00", 300.0, 10.0),
            ("Base", 10.0, 40.0),
            ("Salary", 60.0, 40.0),
            ("$2.00", 300.0, 40.0),
        ]
        .iter()
        .enumerate()
        {
            let w = 8.0 * t.len() as f32;
            b.push_token(Token::new(*t, BBox::new(*x, *y, *x + w, *y + 12.0)));
            if i == 2 || i == 5 {
                b.push_annotation(EntitySpan::new(0, i as u32, i as u32 + 1));
            }
        }
        let mut doc = b.build();
        fieldswap_ocr::detect_lines(&mut doc);
        let mut config = FieldSwapConfig::new(2);
        config.set_phrases(0, vec!["Base Salary".into()]);
        config.set_phrases(1, vec!["Bonus".into()]);
        config.set_pairs(vec![(0, 1)]);
        let (synths, _) = augment_document(&doc, &config);
        let s = &synths[0];
        let bonus_count = s.tokens.iter().filter(|t| t.text == "bonus").count();
        assert_eq!(bonus_count, 2);
        assert!(s.annotations.iter().all(|a| a.field == 1));
    }

    #[test]
    fn one_synthetic_per_target_phrase() {
        let doc = fig1_doc();
        let mut config = FieldSwapConfig::new(2);
        config.set_phrases(0, vec!["Base Salary".into()]);
        config.set_phrases(
            1,
            vec!["Overtime".into(), "OT Pay".into(), "Extra Hours".into()],
        );
        config.set_pairs(vec![(0, 1)]);
        let (synths, stats) = augment_document(&doc, &config);
        assert_eq!(synths.len(), 3);
        assert_eq!(stats.generated, 3);
        // Distinct ids for downstream bookkeeping.
        let ids: std::collections::HashSet<_> = synths.iter().map(|s| s.id.clone()).collect();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn augment_corpus_aggregates() {
        let schema = Schema::new(
            "t",
            vec![
                fieldswap_docmodel::FieldDef::new("a", fieldswap_docmodel::BaseType::Money),
                fieldswap_docmodel::FieldDef::new("b", fieldswap_docmodel::BaseType::Money),
            ],
        );
        let corpus = Corpus::new(schema, vec![fig1_doc(), fig1_doc()]);
        let mut config = fig1_config();
        config.set_pairs(vec![(0, 1), (1, 0)]);
        let (synths, stats) = augment_corpus(&corpus, &config);
        assert_eq!(synths.len(), stats.generated);
        assert!(stats.generated >= 4, "got {stats:?}");
    }

    #[test]
    fn empty_replacement_phrase_is_discarded_not_asserted() {
        // `set_phrases` normalizes away whitespace-only phrases, but a
        // hand-written JSON config bypasses it; `from_json` must not let
        // such a phrase produce a synthetic with an empty-word token (or
        // trip a debug assertion).
        let doc = fig1_doc();
        let config = FieldSwapConfig::from_json(
            r#"{"phrases": [["base salary"], ["   "]], "pairs": [[0, 1]]}"#,
        )
        .unwrap();
        let (synths, stats) = augment_document(&doc, &config);
        assert!(synths.is_empty());
        assert_eq!(stats.generated, 0);
        assert_eq!(stats.discarded_unchanged, 1);
    }

    #[test]
    fn zero_phrase_pair_skipped_with_counter() {
        let doc = fig1_doc();
        let mut config = FieldSwapConfig::new(2);
        config.set_phrases(0, vec!["Base Salary".into()]);
        // Field 1 has no phrases (inference found none).
        config.set_pairs(vec![(0, 1), (1, 0)]);
        let (synths, stats) = augment_document(&doc, &config);
        assert!(synths.is_empty());
        assert_eq!(stats.skipped_pairs_no_phrases, 2);
        assert_eq!(stats.phrase_probes, 0);
    }

    #[test]
    fn degenerate_document_is_sanitized_not_a_panic() {
        let mut doc = fig1_doc();
        // Out-of-range annotation + empty token text: fails validate().
        doc.annotations.push(EntitySpan {
            field: 1,
            start: 3,
            end: 99,
        });
        doc.tokens[3].text.clear();
        let mut config = fig1_config();
        config.set_pairs(vec![(0, 1)]);
        let (synths, stats) = augment_document(&doc, &config);
        assert_eq!(stats.sanitized_docs, 1);
        for s in &synths {
            assert!(s.validate().is_ok());
        }
    }

    #[test]
    fn valid_documents_bypass_sanitize() {
        let doc = fig1_doc();
        let mut config = fig1_config();
        config.set_pairs(vec![(0, 1)]);
        let (_, stats) = augment_document(&doc, &config);
        assert_eq!(stats.sanitized_docs, 0);
    }

    #[test]
    fn overlap_resolution_prefers_longer_phrase() {
        // "Base" is a phrase of field 0 and also a prefix of "Base Salary".
        let doc = fig1_doc();
        let mut config = FieldSwapConfig::new(2);
        config.set_phrases(0, vec!["Base".into(), "Base Salary".into()]);
        config.set_phrases(1, vec!["Bonus".into()]);
        config.set_pairs(vec![(0, 1)]);
        let (synths, _) = augment_document(&doc, &config);
        let s = &synths[0];
        let texts: Vec<&str> = s.tokens.iter().map(|t| t.text.as_str()).collect();
        // The full "Base Salary" is replaced once, not "Base" alone
        // leaving a dangling "Salary".
        assert_eq!(texts, vec!["bonus", "$3,308.62", "Overtime", "$120.00"]);
    }
}
