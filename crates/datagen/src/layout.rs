//! The page builder: a small layout engine the corpus generators use to
//! render text into positioned tokens.
//!
//! Pages are nominally 1000 units wide. A [`PageBuilder`] keeps a vertical
//! cursor and offers primitives shared by all domain generators:
//!
//! * [`PageBuilder::text`] — place a run of words starting at an x offset;
//! * [`PageBuilder::kv_row`] — a label phrase with a value on the same row
//!   (value right-aligned at a column position);
//! * [`PageBuilder::kv_stacked`] — a label phrase with the value directly
//!   below it (vertical anchoring);
//! * [`PageBuilder::table`] — a header row of column phrases plus data rows
//!   whose first cell is a row-label phrase (the Earnings layout);
//! * [`PageBuilder::address_block`] — multi-line address values.
//!
//! Labels are attached by passing a [`FieldId`] with the value; the builder
//! records [`EntitySpan`]s over the produced tokens.

use fieldswap_docmodel::{BBox, DocumentBuilder, EntitySpan, FieldId, Token};
use rand::rngs::StdRng;
use rand::Rng;

/// Per-vendor typography and spacing parameters. Randomized once per vendor
/// so that documents from the same vendor share geometry.
#[derive(Debug, Clone, Copy)]
pub struct Style {
    /// Average character width in page units.
    pub char_w: f32,
    /// Token height in page units.
    pub line_h: f32,
    /// Vertical gap between rows.
    pub row_gap: f32,
    /// Gap between adjacent words.
    pub word_gap: f32,
}

impl Default for Style {
    fn default() -> Self {
        Self {
            char_w: 7.0,
            line_h: 12.0,
            row_gap: 6.0,
            word_gap: 5.0,
        }
    }
}

impl Style {
    /// Samples a vendor style with mild jitter around the defaults.
    pub fn sample(rng: &mut StdRng) -> Self {
        Self {
            char_w: rng.gen_range(6.0..8.5),
            line_h: rng.gen_range(10.0..14.0),
            row_gap: rng.gen_range(4.0..10.0),
            word_gap: rng.gen_range(4.0..7.0),
        }
    }
}

/// One table row passed to [`PageBuilder::table`]: the row-label phrase
/// plus `(x, value, field)` cells.
pub type TableRow = (String, Vec<(f32, String, Option<FieldId>)>);

/// Incrementally renders one page of positioned tokens.
pub struct PageBuilder {
    doc: DocumentBuilder,
    style: Style,
    /// Current vertical cursor (top of the next row).
    pub y: f32,
}

impl PageBuilder {
    /// Starts a page for document `id` with the given style.
    pub fn new(id: impl Into<String>, style: Style) -> Self {
        Self {
            doc: DocumentBuilder::new(id),
            style,
            y: 20.0,
        }
    }

    /// The style in use.
    pub fn style(&self) -> Style {
        self.style
    }

    /// Advances the vertical cursor by one row (token height + row gap).
    pub fn newline(&mut self) {
        self.y += self.style.line_h + self.style.row_gap;
    }

    /// Advances the cursor by `dy` page units (section breaks).
    pub fn vspace(&mut self, dy: f32) {
        self.y += dy;
    }

    /// Places the whitespace-separated words of `text` starting at `x` on
    /// the current row. Returns the `(start, end)` token-id range.
    /// Does NOT advance the cursor.
    pub fn text(&mut self, x: f32, text: &str) -> (u32, u32) {
        let start = self.doc.next_token_id();
        let mut cx = x;
        for word in text.split_whitespace() {
            let w = word.chars().count() as f32 * self.style.char_w;
            let bbox = BBox::new(cx, self.y, cx + w, self.y + self.style.line_h);
            self.doc.push_token(Token::new(word, bbox));
            cx += w + self.style.word_gap;
        }
        (start, self.doc.next_token_id())
    }

    /// Places `text` and labels the produced tokens with `field`.
    pub fn labeled_text(&mut self, x: f32, text: &str, field: FieldId) -> (u32, u32) {
        let (start, end) = self.text(x, text);
        if start < end {
            self.doc.push_annotation(EntitySpan::new(field, start, end));
        }
        (start, end)
    }

    /// A key-value row: label phrase at `label_x`, value at `value_x`, same
    /// row; the value is labeled with `field` when given. Advances the
    /// cursor.
    pub fn kv_row(
        &mut self,
        label_x: f32,
        phrase: &str,
        value_x: f32,
        value: &str,
        field: Option<FieldId>,
    ) {
        if !phrase.is_empty() {
            self.text(label_x, phrase);
        }
        match field {
            Some(f) => self.labeled_text(value_x, value, f),
            None => self.text(value_x, value),
        };
        self.newline();
    }

    /// A stacked key-value: label phrase on one row, value directly beneath
    /// it. Advances the cursor past both rows.
    pub fn kv_stacked(&mut self, x: f32, phrase: &str, value: &str, field: Option<FieldId>) {
        self.text(x, phrase);
        self.newline();
        match field {
            Some(f) => self.labeled_text(x, value, f),
            None => self.text(x, value),
        };
        self.newline();
    }

    /// A table: a header row of `(x, phrase)` column headers, then data
    /// rows. Each data row is a row-label phrase at `row_label_x` plus
    /// `(x, value, field)` cells. Advances the cursor past all rows.
    pub fn table(&mut self, row_label_x: f32, headers: &[(f32, &str)], rows: &[TableRow]) {
        for (x, h) in headers {
            self.text(*x, h);
        }
        self.newline();
        for (label, cells) in rows {
            self.text(row_label_x, label);
            for (x, value, field) in cells {
                match field {
                    Some(f) => self.labeled_text(*x, value, *f),
                    None => self.text(*x, value),
                };
            }
            self.newline();
        }
    }

    /// A multi-line address block at `x`: each line is placed on its own
    /// row and the whole block may be labeled as one field. If both
    /// `name_field` and a leading name line are given, the name line gets
    /// its own label.
    pub fn address_block(
        &mut self,
        x: f32,
        name: Option<(&str, Option<FieldId>)>,
        lines: &[&str],
        field: Option<FieldId>,
    ) {
        if let Some((name_text, name_field)) = name {
            match name_field {
                Some(f) => self.labeled_text(x, name_text, f),
                None => self.text(x, name_text),
            };
            self.newline();
        }
        // An address spans multiple OCR rows but is one logical value; the
        // token-range label must be contiguous, which it is because we emit
        // lines back-to-back.
        let mut start = None;
        let mut end = 0;
        for line in lines {
            let (s, e) = self.text(x, line);
            start.get_or_insert(s);
            end = e;
            self.newline();
        }
        if let (Some(f), Some(s)) = (field, start) {
            if s < end {
                self.doc.push_annotation(EntitySpan::new(f, s, end));
            }
        }
    }

    /// Finishes the page: builds the document and runs OCR line detection.
    pub fn finish(self) -> fieldswap_docmodel::Document {
        let mut doc = self.doc.build();
        fieldswap_ocr::detect_lines(&mut doc);
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn text_places_words_left_to_right() {
        let mut p = PageBuilder::new("t", Style::default());
        let (s, e) = p.text(10.0, "Amount Due");
        assert_eq!((s, e), (0, 2));
        let d = p.finish();
        assert_eq!(d.tokens[0].text, "Amount");
        assert_eq!(d.tokens[1].text, "Due");
        assert!(d.tokens[1].bbox.x0 > d.tokens[0].bbox.x1);
        assert_eq!(d.tokens[0].bbox.y0, d.tokens[1].bbox.y0);
    }

    #[test]
    fn kv_row_labels_value_only() {
        let mut p = PageBuilder::new("t", Style::default());
        p.kv_row(10.0, "Total Due", 300.0, "$1,250.00", Some(3));
        let d = p.finish();
        assert_eq!(d.annotations.len(), 1);
        let a = d.annotations[0];
        assert_eq!(a.field, 3);
        assert_eq!(d.span_text(a.start, a.end), "$1,250.00");
    }

    #[test]
    fn kv_stacked_value_below_label() {
        let mut p = PageBuilder::new("t", Style::default());
        p.kv_stacked(10.0, "Invoice Date", "01/31/2024", Some(1));
        let d = p.finish();
        let a = d.annotations[0];
        let label_y = d.tokens[0].bbox.y0;
        let value_y = d.tokens[a.start as usize].bbox.y0;
        assert!(value_y > label_y);
        // Vertically aligned at the same x.
        assert_eq!(d.tokens[0].bbox.x0, d.tokens[a.start as usize].bbox.x0);
    }

    #[test]
    fn table_layout_labels_cells() {
        let mut p = PageBuilder::new("t", Style::default());
        p.table(
            10.0,
            &[(300.0, "Current"), (500.0, "YTD")],
            &[
                (
                    "Base Salary".to_string(),
                    vec![
                        (300.0, "$3,308.62".to_string(), Some(0)),
                        (500.0, "$39,703.44".to_string(), Some(1)),
                    ],
                ),
                (
                    "Overtime".to_string(),
                    vec![
                        (300.0, "$120.00".to_string(), Some(2)),
                        (500.0, "$890.10".to_string(), Some(3)),
                    ],
                ),
            ],
        );
        let d = p.finish();
        assert_eq!(d.annotations.len(), 4);
        let fields: Vec<FieldId> = d.annotations.iter().map(|a| a.field).collect();
        assert_eq!(fields, vec![0, 1, 2, 3]);
        // Row labels are unlabeled tokens.
        assert_eq!(
            d.span_text(d.annotations[0].start, d.annotations[0].end),
            "$3,308.62"
        );
    }

    #[test]
    fn address_block_single_span() {
        let mut p = PageBuilder::new("t", Style::default());
        p.address_block(
            10.0,
            Some(("Acme Inc.", Some(0))),
            &["4821 Oak St", "Madison, WA 98101"],
            Some(1),
        );
        let d = p.finish();
        assert_eq!(d.annotations.len(), 2);
        let addr = d.annotations.iter().find(|a| a.field == 1).unwrap();
        assert_eq!(
            d.span_text(addr.start, addr.end),
            "4821 Oak St Madison, WA 98101"
        );
        // Address spans two OCR lines.
        assert!(d.line_of(addr.start).unwrap() != d.line_of(addr.end - 1).unwrap());
    }

    #[test]
    fn style_sampling_is_bounded() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let s = Style::sample(&mut rng);
            assert!(s.char_w >= 6.0 && s.char_w < 8.5);
            assert!(s.line_h >= 10.0 && s.line_h < 14.0);
        }
    }

    #[test]
    fn finish_runs_line_detection() {
        let mut p = PageBuilder::new("t", Style::default());
        p.kv_row(10.0, "A", 200.0, "B", None);
        p.kv_row(10.0, "C", 200.0, "D", None);
        let d = p.finish();
        assert!(!d.lines.is_empty());
    }
}
