#![warn(missing_docs)]

//! # fieldswap-datagen
//!
//! Synthetic corpus generators standing in for the paper's five evaluation
//! datasets (FARA, FCC Forms, Brokerage Statements, Earnings, Loan
//! Payments) plus the out-of-domain Invoices corpus used to pre-train the
//! key-phrase importance model.
//!
//! The real corpora are either proprietary or not redistributable, so each
//! generator is built to preserve the *properties that drive the paper's
//! results* rather than the surface appearance of any particular document:
//!
//! * **Schema fidelity** — field counts per base type match Table II
//!   exactly; pool/test sizes match Table I.
//! * **Vendor templates** — every document is rendered by one of a pool of
//!   "vendors", each fixing a layout style and one key-phrase synonym per
//!   field. Small training samples therefore see only a few synonyms and
//!   positions, which is the data-scarcity regime FieldSwap targets.
//! * **Key-phrase anchoring** — every extractable field (except
//!   deliberately phrase-less ones like `company_name`) is introduced by a
//!   key phrase drawn from a synonym bank.
//! * **Rare fields** — per-field presence probabilities reproduce the
//!   paper's rare-field regime (e.g. the Earnings `*.sales_pay` analogues
//!   at ~3–4% document frequency, Table IV).
//! * **Contradictory pairs** — the Earnings and Loan Payments tables render
//!   `current.X` and `year_to_date.X` values anchored by the *same* row
//!   phrase, reproducing the hazard discussed in Sections II-B and IV-C3.

pub mod brokerage;
pub mod domain;
pub mod earnings;
pub mod fara;
pub mod fcc;
pub mod invoices;
pub mod layout;
pub mod loan;
pub mod values;

pub use domain::{Domain, DomainGenerator, GenOptions};

use fieldswap_docmodel::Corpus;

/// Generates `n` documents for `domain` with default options. Seeds are
/// deterministic: the same `(domain, seed, n)` triple always yields the
/// same corpus.
pub fn generate(domain: Domain, seed: u64, n: usize) -> Corpus {
    domain.generator().generate(seed, n, &GenOptions::default())
}

/// Like [`generate`], but rendering documents on `jobs` worker threads
/// (0 = all cores, 1 = serial). The corpus is byte-identical for every
/// jobs setting; see [`domain::drive`].
pub fn generate_jobs(domain: Domain, seed: u64, n: usize, jobs: usize) -> Corpus {
    let opts = GenOptions {
        jobs,
        ..GenOptions::default()
    };
    domain.generator().generate(seed, n, &opts)
}

/// Generates the paper-sized train pool and test set for `domain`
/// (Table I). The two sets use disjoint seed streams.
pub fn generate_paper_splits(domain: Domain, seed: u64) -> (Corpus, Corpus) {
    generate_paper_splits_jobs(domain, seed, 1)
}

/// Like [`generate_paper_splits`], but rendering documents on `jobs`
/// worker threads. Output is byte-identical for every jobs setting.
pub fn generate_paper_splits_jobs(domain: Domain, seed: u64, jobs: usize) -> (Corpus, Corpus) {
    let (pool_n, test_n) = domain.paper_sizes();
    let opts = GenOptions {
        jobs,
        ..GenOptions::default()
    };
    let gen = domain.generator();
    let pool = gen.generate(seed, pool_n, &opts);
    let test = gen.generate(seed.wrapping_add(0x9E37_79B9_7F4A_7C15), test_n, &opts);
    (pool, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let a = generate(Domain::Fara, 7, 5);
        let b = generate(Domain::Fara, 7, 5);
        assert_eq!(a.documents, b.documents);
    }

    #[test]
    fn parallel_generation_is_byte_identical() {
        // The render fan-out must not change a single token, bbox, or
        // noise artifact relative to the serial path.
        for domain in [Domain::Fara, Domain::Earnings] {
            let serial = generate_jobs(domain, 11, 24, 1);
            for jobs in [2, 4, 8] {
                let par = generate_jobs(domain, 11, 24, jobs);
                assert_eq!(
                    serial.documents, par.documents,
                    "{domain:?} corpus diverged at jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(Domain::Earnings, 1, 3);
        let b = generate(Domain::Earnings, 2, 3);
        assert_ne!(a.documents, b.documents);
    }

    #[test]
    fn paper_splits_sizes_match_table1() {
        for (domain, pool, test) in [
            (Domain::Fara, 200, 300),
            (Domain::FccForms, 200, 300),
            (Domain::Brokerage, 294, 186),
        ] {
            assert_eq!(domain.paper_sizes(), (pool, test));
        }
        assert_eq!(Domain::Earnings.paper_sizes(), (2000, 1847));
        assert_eq!(Domain::LoanPayments.paper_sizes(), (2000, 815));
    }

    #[test]
    fn all_domains_produce_valid_documents() {
        for domain in Domain::ALL {
            let c = generate(domain, 11, 8);
            assert_eq!(c.len(), 8, "{domain:?}");
            for d in &c.documents {
                assert!(d.validate().is_ok(), "{domain:?}: {:?}", d.validate());
                assert!(!d.tokens.is_empty(), "{domain:?} produced empty doc");
                assert!(!d.lines.is_empty(), "{domain:?} missing OCR lines");
            }
        }
    }

    #[test]
    fn field_type_histograms_match_table2() {
        // [address, date, money, number, string]
        let expect = [
            (Domain::Fara, [0, 1, 0, 1, 4]),
            (Domain::FccForms, [1, 4, 2, 1, 5]),
            (Domain::Brokerage, [2, 4, 5, 0, 7]),
            (Domain::Earnings, [2, 3, 15, 0, 3]),
            (Domain::LoanPayments, [3, 5, 20, 0, 7]),
        ];
        for (domain, hist) in expect {
            let schema = domain.generator().schema();
            assert_eq!(schema.type_histogram(), hist, "{domain:?}");
        }
    }

    #[test]
    fn field_counts_match_table1() {
        let expect = [
            (Domain::Fara, 6),
            (Domain::FccForms, 13),
            (Domain::Brokerage, 18),
            (Domain::Earnings, 23),
            (Domain::LoanPayments, 35),
        ];
        for (domain, n) in expect {
            assert_eq!(domain.generator().schema().len(), n, "{domain:?}");
        }
    }
}
