//! Domain registry and the shared machinery all corpus generators use:
//! field specifications with phrase banks and presence probabilities, and
//! the vendor-template model.

use crate::layout::Style;
use fieldswap_docmodel::{BaseType, Corpus, FieldDef, Schema};
use fieldswap_ocr::{NoiseModel, NoiseParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The six document types this crate can generate. The first five mirror
/// the paper's evaluation datasets; `Invoices` is the out-of-domain corpus
/// used to pre-train the importance model (Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// FARA filing cover pages (public benchmark in the paper).
    Fara,
    /// FCC application cover sheets (public benchmark in the paper).
    FccForms,
    /// Brokerage account statements (proprietary in the paper).
    Brokerage,
    /// Earnings statements / paystubs (proprietary in the paper).
    Earnings,
    /// Mortgage / loan payment statements (proprietary in the paper).
    LoanPayments,
    /// Out-of-domain invoices, used only for pre-training.
    Invoices,
}

impl Domain {
    /// The five evaluation domains plus invoices.
    pub const ALL: [Domain; 6] = [
        Domain::Fara,
        Domain::FccForms,
        Domain::Brokerage,
        Domain::Earnings,
        Domain::LoanPayments,
        Domain::Invoices,
    ];

    /// The five domains evaluated in the paper (Table I order).
    pub const EVAL: [Domain; 5] = [
        Domain::Fara,
        Domain::FccForms,
        Domain::Brokerage,
        Domain::Earnings,
        Domain::LoanPayments,
    ];

    /// Human-readable name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Domain::Fara => "FARA",
            Domain::FccForms => "FCC Forms",
            Domain::Brokerage => "Brokerage Statements",
            Domain::Earnings => "Earnings",
            Domain::LoanPayments => "Loan Payments",
            Domain::Invoices => "Invoices",
        }
    }

    /// `(train pool size, test set size)` from Table I. Invoices uses the
    /// paper's "approximately 5000 training documents" for pre-training and
    /// a nominal test size.
    pub fn paper_sizes(&self) -> (usize, usize) {
        match self {
            Domain::Fara => (200, 300),
            Domain::FccForms => (200, 300),
            Domain::Brokerage => (294, 186),
            Domain::Earnings => (2000, 1847),
            Domain::LoanPayments => (2000, 815),
            Domain::Invoices => (5000, 500),
        }
    }

    /// The generator for this domain.
    pub fn generator(&self) -> Box<dyn DomainGenerator> {
        match self {
            Domain::Fara => Box::new(crate::fara::FaraGen),
            Domain::FccForms => Box::new(crate::fcc::FccGen),
            Domain::Brokerage => Box::new(crate::brokerage::BrokerageGen),
            Domain::Earnings => Box::new(crate::earnings::EarningsGen),
            Domain::LoanPayments => Box::new(crate::loan::LoanGen),
            Domain::Invoices => Box::new(crate::invoices::InvoicesGen),
        }
    }
}

/// Corpus-generation options.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Size of the vendor (template) pool documents are drawn from.
    pub n_vendors: usize,
    /// OCR noise applied after rendering.
    pub noise: NoiseParams,
    /// Worker threads for the per-document render phase (0 = all cores,
    /// 1 = serial). Every document derives its randomness from its own
    /// index and noise is applied in a serial in-order pass afterwards, so
    /// any value produces byte-identical corpora.
    pub jobs: usize,
}

impl Default for GenOptions {
    fn default() -> Self {
        Self {
            n_vendors: 192,
            noise: NoiseParams::default(),
            jobs: 1,
        }
    }
}

/// A corpus generator for one document type.
pub trait DomainGenerator {
    /// Which domain this generates.
    fn domain(&self) -> Domain;

    /// The domain's extraction schema.
    fn schema(&self) -> Schema;

    /// The static field specifications (name, type, phrase bank, presence).
    fn field_specs(&self) -> &'static [FieldSpec];

    /// Generates `n` labeled documents deterministically from `seed`.
    fn generate(&self, seed: u64, n: usize, opts: &GenOptions) -> Corpus;

    /// The ground-truth phrase bank: for each field, the synonyms the
    /// generator may use. This is what a *human expert* would write down
    /// after inspecting documents (Section III); it also serves as an
    /// oracle in tests.
    fn phrase_bank(&self) -> Vec<(String, Vec<String>)> {
        self.field_specs()
            .iter()
            .map(|f| {
                (
                    f.name.to_string(),
                    f.phrases.iter().map(|p| p.to_string()).collect(),
                )
            })
            .collect()
    }
}

/// Static description of one field: schema info plus generation knobs.
#[derive(Debug, Clone, Copy)]
pub struct FieldSpec {
    /// Dotted field name.
    pub name: &'static str,
    /// Base type (drives Table II and type-to-type mappings).
    pub base_type: BaseType,
    /// Key-phrase synonym bank. Empty for deliberately phrase-less fields
    /// (e.g. `company_name` in a page corner).
    pub phrases: &'static [&'static str],
    /// Probability that a document contains the field.
    pub presence: f64,
}

impl FieldSpec {
    /// Shorthand constructor used by the domain tables.
    pub const fn new(
        name: &'static str,
        base_type: BaseType,
        phrases: &'static [&'static str],
        presence: f64,
    ) -> Self {
        Self {
            name,
            base_type,
            phrases,
            presence,
        }
    }
}

/// Builds a [`Schema`] from field specs.
pub fn schema_from_specs(domain: &str, specs: &[FieldSpec]) -> Schema {
    Schema::new(
        domain,
        specs
            .iter()
            .map(|f| FieldDef::new(f.name, f.base_type))
            .collect(),
    )
}

/// SplitMix64: cheap, well-distributed seed mixing.
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines seed components into one stream seed.
pub fn seed_for(domain: Domain, corpus_seed: u64, stream: u64) -> u64 {
    mix(mix(corpus_seed ^ (domain as u64).wrapping_mul(0x100_0193)) ^ stream)
}

/// A vendor: one template in the pool. Fixes typography, a layout variant,
/// and one phrase synonym per field for all documents it "issues".
#[derive(Debug, Clone)]
pub struct Vendor {
    /// Vendor index within the pool.
    pub id: usize,
    /// Typography and spacing.
    pub style: Style,
    /// Layout variant selector (interpreted per domain).
    pub variant: usize,
    /// Chosen phrase index per field (into each field's bank); 0 for
    /// fields with empty banks.
    phrase_choice: Vec<usize>,
}

impl Vendor {
    /// Deterministically materializes vendor `id` of `domain`.
    pub fn sample(
        domain: Domain,
        corpus_seed: u64,
        id: usize,
        specs: &[FieldSpec],
        n_variants: usize,
    ) -> Self {
        // Vendors are tied to the domain only (not the corpus seed), so a
        // train pool and test set generated from different seeds share the
        // same vendor pool — exactly the "same document type, unseen
        // layouts" regime of the paper.
        let _ = corpus_seed;
        let mut rng = StdRng::seed_from_u64(seed_for(domain, 0xFEED, id as u64));
        let style = Style::sample(&mut rng);
        let variant = rng.gen_range(0..n_variants.max(1));
        let phrase_choice = specs
            .iter()
            .map(|f| {
                if f.phrases.is_empty() {
                    0
                } else {
                    rng.gen_range(0..f.phrases.len())
                }
            })
            .collect();
        Self {
            id,
            style,
            variant,
            phrase_choice,
        }
    }

    /// The phrase this vendor uses for field index `i`, or `""` when the
    /// field has no key phrase.
    pub fn phrase<'a>(&self, specs: &'a [FieldSpec], i: usize) -> &'a str {
        let bank = specs[i].phrases;
        if bank.is_empty() {
            ""
        } else {
            bank[self.phrase_choice[i]]
        }
    }
}

/// Shared driver: renders `n` documents by sampling a vendor and a
/// present-field mask per document, delegating page rendering to `render`,
/// and applying OCR noise.
///
/// Rendering fans out over `opts.jobs` workers — each document's
/// randomness comes from a per-index rng, so the render phase is
/// embarrassingly parallel. The OCR noise model carries sequential rng
/// state across documents, so it runs as a serial in-order pass; corpora
/// are byte-identical for every jobs setting.
pub fn drive<F>(
    domain: Domain,
    specs: &'static [FieldSpec],
    n_variants: usize,
    seed: u64,
    n: usize,
    opts: &GenOptions,
    render: F,
) -> Corpus
where
    F: Fn(&mut StdRng, &Vendor, &[bool], String) -> fieldswap_docmodel::Document + Sync,
{
    let schema = schema_from_specs(domain_key(domain), specs);
    let vendors: Vec<Vendor> = (0..opts.n_vendors)
        .map(|v| Vendor::sample(domain, seed, v, specs, n_variants))
        .collect();
    let pool = fieldswap_parallel::WorkerPool::new(opts.jobs);
    let slots: Vec<std::sync::Mutex<Option<fieldswap_docmodel::Document>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    pool.fill_slots(&slots, |_, i| {
        let mut rng = StdRng::seed_from_u64(seed_for(domain, seed, i as u64));
        let vendor = &vendors[rng.gen_range(0..vendors.len())];
        let present: Vec<bool> = specs.iter().map(|f| rng.gen_bool(f.presence)).collect();
        let id = format!("{}-{i:05}", domain_key(domain));
        render(&mut rng, vendor, &present, id)
    });
    let mut noise = NoiseModel::new(opts.noise, seed_for(domain, seed, 0xA0C));
    let mut documents = Vec::with_capacity(n);
    for slot in slots {
        let mut doc = slot
            .into_inner()
            .expect("render slot poisoned")
            .expect("every slot filled");
        noise.apply(&mut doc);
        documents.push(doc);
    }
    Corpus::new(schema, documents)
}

fn domain_key(domain: Domain) -> &'static str {
    match domain {
        Domain::Fara => "fara",
        Domain::FccForms => "fcc",
        Domain::Brokerage => "brokerage",
        Domain::Earnings => "earnings",
        Domain::LoanPayments => "loan",
        Domain::Invoices => "invoices",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_spreads_bits() {
        assert_ne!(mix(0), mix(1));
        assert_ne!(mix(1), mix(2));
        // SplitMix is a bijection; tiny sanity check for distinctness.
        let outs: std::collections::HashSet<u64> = (0..1000).map(mix).collect();
        assert_eq!(outs.len(), 1000);
    }

    #[test]
    fn vendor_is_deterministic_and_seed_independent() {
        let specs = crate::earnings::EarningsGen.field_specs();
        let a = Vendor::sample(Domain::Earnings, 1, 3, specs, 2);
        let b = Vendor::sample(Domain::Earnings, 999, 3, specs, 2);
        assert_eq!(a.phrase_choice, b.phrase_choice);
        assert_eq!(a.variant, b.variant);
    }

    #[test]
    fn vendors_differ_from_each_other() {
        let specs = crate::earnings::EarningsGen.field_specs();
        let choices: Vec<Vec<usize>> = (0..8)
            .map(|v| Vendor::sample(Domain::Earnings, 0, v, specs, 2).phrase_choice)
            .collect();
        let distinct: std::collections::HashSet<_> = choices.iter().collect();
        assert!(distinct.len() > 1, "vendor phrase choices should vary");
    }

    #[test]
    fn phrase_for_empty_bank_is_empty() {
        const SPECS: [FieldSpec; 1] = [FieldSpec::new("x", BaseType::String, &[], 1.0)];
        let v = Vendor::sample(Domain::Fara, 0, 0, &SPECS, 1);
        assert_eq!(v.phrase(&SPECS, 0), "");
    }

    #[test]
    fn domain_names_match_paper() {
        assert_eq!(Domain::Brokerage.name(), "Brokerage Statements");
        assert_eq!(Domain::Earnings.name(), "Earnings");
    }
}
