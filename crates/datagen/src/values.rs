//! Value fakers: deterministic random generators for the surface forms of
//! the five base types (money amounts, dates, numbers, addresses, names).

use rand::Rng;

/// Formats `cents` as a US money string, e.g. `"$3,308.62"`.
pub fn format_money(cents: i64, with_symbol: bool) -> String {
    let negative = cents < 0;
    let cents = cents.unsigned_abs();
    let dollars = cents / 100;
    let rem = cents % 100;
    let mut int = String::new();
    let s = dollars.to_string();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            int.push(',');
        }
        int.push(c);
    }
    let sym = if with_symbol { "$" } else { "" };
    let sign = if negative { "-" } else { "" };
    format!("{sign}{sym}{int}.{rem:02}")
}

/// A random money value in `[lo_cents, hi_cents]`.
pub fn money<R: Rng>(rng: &mut R, lo_cents: i64, hi_cents: i64, with_symbol: bool) -> String {
    format_money(rng.gen_range(lo_cents..=hi_cents), with_symbol)
}

/// A random date. `style` 0 → `MM/DD/YYYY`, 1 → `YYYY-MM-DD`,
/// 2 → `Mon DD, YYYY` (multi-token; caller splits on spaces).
pub fn date<R: Rng>(rng: &mut R, style: u8) -> String {
    let year = rng.gen_range(2018..=2025);
    let month = rng.gen_range(1..=12u32);
    let day = rng.gen_range(1..=28u32);
    match style {
        0 => format!("{month:02}/{day:02}/{year}"),
        1 => format!("{year}-{month:02}-{day:02}"),
        _ => {
            const MON: [&str; 12] = [
                "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
            ];
            format!("{} {day}, {year}", MON[(month - 1) as usize])
        }
    }
}

const FIRST_NAMES: [&str; 24] = [
    "Alice", "Bruno", "Carla", "Deshawn", "Elena", "Farid", "Grace", "Hiro", "Ines", "Jonas",
    "Kavya", "Liam", "Mona", "Noah", "Olga", "Pedro", "Quinn", "Rosa", "Sven", "Tara", "Umar",
    "Vera", "Wendy", "Xenia",
];

const LAST_NAMES: [&str; 24] = [
    "Abbott", "Berg", "Castillo", "Dimitrov", "Eng", "Fischer", "Garza", "Huang", "Ivanov",
    "Jensen", "Kim", "Lopez", "Meyer", "Novak", "Okafor", "Park", "Quist", "Rivera", "Sato",
    "Torres", "Ueda", "Vance", "Wang", "Yilmaz",
];

const COMPANY_STEMS: [&str; 16] = [
    "Acme",
    "Borealis",
    "Cobalt",
    "Dynamo",
    "Evergreen",
    "Fairview",
    "Granite",
    "Horizon",
    "Ironwood",
    "Juniper",
    "Keystone",
    "Lumen",
    "Meridian",
    "Northgate",
    "Orchard",
    "Pinnacle",
];

const COMPANY_SUFFIXES: [&str; 6] = ["Inc.", "LLC", "Corp.", "Group", "Holdings", "Partners"];

const STREET_NAMES: [&str; 12] = [
    "Oak", "Maple", "Cedar", "Elm", "Pine", "Birch", "Walnut", "Chestnut", "Spruce", "Willow",
    "Aspen", "Magnolia",
];

const STREET_KINDS: [&str; 5] = ["St", "Ave", "Blvd", "Rd", "Ln"];

const CITIES: [(&str, &str); 10] = [
    ("Springfield", "IL"),
    ("Riverton", "CA"),
    ("Lakewood", "OH"),
    ("Fairmont", "NY"),
    ("Georgetown", "TX"),
    ("Bristol", "PA"),
    ("Clayton", "NC"),
    ("Madison", "WA"),
    ("Franklin", "MA"),
    ("Auburn", "GA"),
];

/// A random person name, `"First Last"`.
pub fn person_name<R: Rng>(rng: &mut R) -> String {
    format!(
        "{} {}",
        FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
        LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
    )
}

/// A random company name, e.g. `"Keystone Holdings"`.
pub fn company_name<R: Rng>(rng: &mut R) -> String {
    format!(
        "{} {}",
        COMPANY_STEMS[rng.gen_range(0..COMPANY_STEMS.len())],
        COMPANY_SUFFIXES[rng.gen_range(0..COMPANY_SUFFIXES.len())]
    )
}

/// A random one-line street address, e.g. `"4821 Oak St"`.
pub fn street_line<R: Rng>(rng: &mut R) -> String {
    format!(
        "{} {} {}",
        rng.gen_range(100..9999),
        STREET_NAMES[rng.gen_range(0..STREET_NAMES.len())],
        STREET_KINDS[rng.gen_range(0..STREET_KINDS.len())]
    )
}

/// A random city line, e.g. `"Madison, WA 98101"`.
pub fn city_line<R: Rng>(rng: &mut R) -> String {
    let (city, state) = CITIES[rng.gen_range(0..CITIES.len())];
    format!("{city}, {state} {:05}", rng.gen_range(10000..99999))
}

/// A random identifier such as an account or case number, e.g. `"4471-0092"`.
pub fn id_number<R: Rng>(rng: &mut R) -> String {
    format!(
        "{:04}-{:04}",
        rng.gen_range(0..10000),
        rng.gen_range(0..10000)
    )
}

/// A random small integer rendered as text (counts, quantities).
pub fn small_number<R: Rng>(rng: &mut R) -> String {
    rng.gen_range(1..500).to_string()
}

/// A random short code of uppercase letters + digits, e.g. `"KX42"`.
pub fn short_code<R: Rng>(rng: &mut R) -> String {
    let letters = b"ABCDEFGHJKLMNPQRSTUVWXYZ";
    format!(
        "{}{}{}{}",
        letters[rng.gen_range(0..letters.len())] as char,
        letters[rng.gen_range(0..letters.len())] as char,
        rng.gen_range(0..10),
        rng.gen_range(0..10)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn format_money_groups_thousands() {
        assert_eq!(format_money(330_862, true), "$3,308.62");
        assert_eq!(format_money(5, true), "$0.05");
        assert_eq!(format_money(123_456_789, false), "1,234,567.89");
        assert_eq!(format_money(-9_900, true), "-$99.00");
        assert_eq!(format_money(10_000_000, true), "$100,000.00");
    }

    #[test]
    fn money_in_range() {
        let mut r = rng();
        for _ in 0..50 {
            let s = money(&mut r, 100, 200, true);
            assert!(s.starts_with("$1") || s == "$2.00", "{s}");
        }
    }

    #[test]
    fn date_styles_parse() {
        let mut r = rng();
        let d0 = date(&mut r, 0);
        assert_eq!(d0.split('/').count(), 3);
        let d1 = date(&mut r, 1);
        assert_eq!(d1.split('-').count(), 3);
        let d2 = date(&mut r, 2);
        assert_eq!(d2.split(' ').count(), 3);
    }

    #[test]
    fn names_non_empty_and_deterministic() {
        let mut a = rng();
        let mut b = rng();
        assert_eq!(person_name(&mut a), person_name(&mut b));
        assert!(company_name(&mut a).contains(' '));
        assert!(!street_line(&mut a).is_empty());
        assert!(city_line(&mut a).contains(','));
    }

    #[test]
    fn ids_and_codes_have_expected_shape() {
        let mut r = rng();
        let id = id_number(&mut r);
        assert_eq!(id.len(), 9);
        assert_eq!(&id[4..5], "-");
        let code = short_code(&mut r);
        assert_eq!(code.len(), 4);
        let n: u32 = small_number(&mut r).parse().unwrap();
        assert!((1..500).contains(&n));
    }
}
