//! The **FARA** corpus: 6 fields — 1 date, 1 number, 4 string (Table II).
//! Modeled on Foreign Agents Registration Act filing cover pages. The
//! paper notes this domain benefits least from FieldSwap: 4 of 6 fields are
//! strings (weakly suited to swapping) and the remaining two have distinct
//! base types, so they are never swappable with each other.

use crate::domain::{
    drive, schema_from_specs, Domain, DomainGenerator, FieldSpec, GenOptions, Vendor,
};
use crate::layout::PageBuilder;
use crate::values;
use fieldswap_docmodel::{BaseType, Corpus, Document, FieldId, Schema};
use rand::rngs::StdRng;
use rand::Rng;

const ID_REGISTRANT: usize = 0;
const ID_PRINCIPAL: usize = 1;
const ID_COUNTRY: usize = 2;
const ID_SIGNER: usize = 3;
const ID_REG_NUMBER: usize = 4;
const ID_STAMP_DATE: usize = 5;

const COUNTRIES: [&str; 10] = [
    "Norway", "Japan", "Brazil", "Kenya", "Portugal", "Chile", "Vietnam", "Morocco", "Iceland",
    "Jordan",
];

const SPECS: [FieldSpec; 6] = [
    FieldSpec::new(
        "registrant_name",
        BaseType::String,
        &["Name of Registrant", "Registrant"],
        0.97,
    ),
    FieldSpec::new(
        "foreign_principal_name",
        BaseType::String,
        &["Name of Foreign Principal", "Foreign Principal"],
        0.9,
    ),
    FieldSpec::new(
        "foreign_principal_country",
        BaseType::String,
        &["Country", "Country of Foreign Principal"],
        0.85,
    ),
    // Signatures often appear without a nearby label.
    FieldSpec::new("signer_name", BaseType::String, &[], 0.7),
    FieldSpec::new(
        "registration_number",
        BaseType::Number,
        &["Registration No", "Registration Number", "Reg No"],
        0.95,
    ),
    FieldSpec::new(
        "date_stamped",
        BaseType::Date,
        &["Date Stamped", "Received", "Date"],
        0.9,
    ),
];

/// Generator for the FARA domain.
pub struct FaraGen;

impl DomainGenerator for FaraGen {
    fn domain(&self) -> Domain {
        Domain::Fara
    }

    fn schema(&self) -> Schema {
        schema_from_specs("fara", &SPECS)
    }

    fn field_specs(&self) -> &'static [FieldSpec] {
        &SPECS
    }

    fn generate(&self, seed: u64, n: usize, opts: &GenOptions) -> Corpus {
        // FARA filings are scanned paper forms; unless the caller asks for
        // a specific noise profile, apply the mild scanner-noise default.
        // This is what keeps FieldSwap gains modest on this domain, as in
        // the paper: corrupted key phrases anchor (and swap) less cleanly.
        let mut opts = opts.clone();
        if opts.noise == fieldswap_ocr::NoiseParams::default() {
            opts.noise = fieldswap_ocr::NoiseParams {
                token_error_rate: 0.04,
                char_sub_rate: 0.4,
                char_del_rate: 0.1,
                ..fieldswap_ocr::NoiseParams::default()
            };
        }
        drive(Domain::Fara, &SPECS, 2, seed, n, &opts, render)
    }
}

fn render(rng: &mut StdRng, vendor: &Vendor, present: &[bool], id: String) -> Document {
    let sp = &SPECS;
    let mut p = PageBuilder::new(id, vendor.style);
    let f = |i: usize| i as FieldId;

    p.text(260.0, "U.S. Department of Justice");
    p.newline();
    p.text(220.0, "Exhibit to Registration Statement");
    p.newline();
    p.text(200.0, "Pursuant to the Foreign Agents Registration Act");
    p.vspace(18.0);

    let date_style = (vendor.id % 3) as u8;
    if present[ID_STAMP_DATE] {
        p.kv_row(
            640.0,
            vendor.phrase(sp, ID_STAMP_DATE),
            800.0,
            &values::date(rng, date_style),
            Some(f(ID_STAMP_DATE)),
        );
    }
    if present[ID_REG_NUMBER] {
        p.kv_row(
            640.0,
            vendor.phrase(sp, ID_REG_NUMBER),
            800.0,
            &rng.gen_range(1000..9999).to_string(),
            Some(f(ID_REG_NUMBER)),
        );
    }
    p.vspace(12.0);

    // Real FARA items bury the label inside a numbered legalese line,
    // which dilutes the anchor the way the paper describes for this
    // domain's string fields.
    let stacked = vendor.variant == 0;
    let mut item_no = 1usize;
    let mut kv = |p: &mut PageBuilder, fid: usize, value: String| {
        let label = format!(
            "{item_no}. {} as required under the Act",
            vendor.phrase(sp, fid)
        );
        item_no += 1;
        if stacked {
            p.kv_stacked(40.0, &label, &value, Some(f(fid)));
        } else {
            p.kv_row(40.0, &label, 560.0, &value, Some(f(fid)));
        }
    };
    if present[ID_REGISTRANT] {
        let v = values::company_name(rng);
        kv(&mut p, ID_REGISTRANT, v);
    }
    if present[ID_PRINCIPAL] {
        let v = format!(
            "Ministry of Trade of {}",
            COUNTRIES[rng.gen_range(0..COUNTRIES.len())]
        );
        kv(&mut p, ID_PRINCIPAL, v);
    }
    if present[ID_COUNTRY] {
        let v = COUNTRIES[rng.gen_range(0..COUNTRIES.len())].to_string();
        kv(&mut p, ID_COUNTRY, v);
    }
    p.vspace(20.0);
    p.text(
        40.0,
        "In accordance with the requirements of the Act the undersigned swears",
    );
    p.newline();
    p.text(
        40.0,
        "that the contents of this statement are true and correct",
    );
    p.vspace(16.0);
    if present[ID_SIGNER] {
        // Signature block: bare name above a "Signature" rule, no phrase
        // introducing the *name* itself.
        p.labeled_text(560.0, &values::person_name(rng), f(ID_SIGNER));
        p.newline();
        p.text(560.0, "Signature");
        p.newline();
    }
    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::GenOptions;

    #[test]
    fn schema_shape() {
        let s = FaraGen.schema();
        assert_eq!(s.len(), 6);
        assert_eq!(s.type_histogram(), [0, 1, 0, 1, 4]);
    }

    #[test]
    fn date_and_number_not_same_type() {
        // The paper: the two non-string fields belong to different base
        // types and are thus not swappable with each other.
        let s = FaraGen.schema();
        let d = s.field(s.field_id("date_stamped").unwrap()).base_type;
        let n = s
            .field(s.field_id("registration_number").unwrap())
            .base_type;
        assert_ne!(d, n);
    }

    #[test]
    fn generates_valid_docs() {
        let c = FaraGen.generate(3, 12, &GenOptions::default());
        for d in &c.documents {
            assert!(d.validate().is_ok());
        }
    }

    #[test]
    fn signer_is_phrase_less() {
        assert!(SPECS[ID_SIGNER].phrases.is_empty());
    }
}
