//! The **Brokerage Statements** corpus: 18 fields — 5 money, 4 date,
//! 2 address, 7 string (Table II). A summary-style statement with an
//! account-value section and identity blocks.

use crate::domain::{
    drive, schema_from_specs, Domain, DomainGenerator, FieldSpec, GenOptions, Vendor,
};
use crate::layout::PageBuilder;
use crate::values;
use fieldswap_docmodel::{BaseType, Corpus, Document, FieldId, Schema};
use rand::rngs::StdRng;
use rand::Rng;

const ID_BEGIN_VALUE: usize = 0;
const ID_END_VALUE: usize = 1;
const ID_DEPOSITS: usize = 2;
const ID_WITHDRAWALS: usize = 3;
const ID_CHANGE: usize = 4;
const ID_PERIOD_START: usize = 5;
const ID_PERIOD_END: usize = 6;
const ID_STMT_DATE: usize = 7;
const ID_OPENED_DATE: usize = 8;
const ID_HOLDER_NAME: usize = 9;
const ID_ACCOUNT_NUMBER: usize = 10;
const ID_FIRM_NAME: usize = 11;
const ID_ADVISOR_NAME: usize = 12;
const ID_ACCOUNT_TYPE: usize = 13;
const ID_PORTFOLIO_ID: usize = 14;
const ID_TAX_ID: usize = 15;
const ID_HOLDER_ADDRESS: usize = 16;
const ID_FIRM_ADDRESS: usize = 17;

const SPECS: [FieldSpec; 18] = [
    FieldSpec::new(
        "beginning_value",
        BaseType::Money,
        &["Beginning Value", "Opening Balance", "Beginning Balance"],
        0.95,
    ),
    FieldSpec::new(
        "ending_value",
        BaseType::Money,
        &["Ending Value", "Closing Balance", "Ending Balance"],
        0.97,
    ),
    FieldSpec::new(
        "total_deposits",
        BaseType::Money,
        &["Deposits", "Total Deposits", "Contributions"],
        0.7,
    ),
    FieldSpec::new(
        "total_withdrawals",
        BaseType::Money,
        &["Withdrawals", "Total Withdrawals", "Distributions"],
        0.55,
    ),
    FieldSpec::new(
        "change_in_value",
        BaseType::Money,
        &["Change in Value", "Net Change", "Gain Loss"],
        0.75,
    ),
    FieldSpec::new(
        "period_start",
        BaseType::Date,
        &["Period Start", "Statement Period Begin", "From"],
        0.9,
    ),
    FieldSpec::new(
        "period_end",
        BaseType::Date,
        &["Period End", "Statement Period End", "Through"],
        0.9,
    ),
    FieldSpec::new(
        "statement_date",
        BaseType::Date,
        &["Statement Date", "As Of"],
        0.85,
    ),
    FieldSpec::new(
        "account_opened_date",
        BaseType::Date,
        &["Account Opened", "Open Date"],
        0.25,
    ),
    FieldSpec::new(
        "account_holder_name",
        BaseType::String,
        &["Account Holder", "Prepared For", "Account Owner"],
        0.97,
    ),
    FieldSpec::new(
        "account_number",
        BaseType::String,
        &["Account Number", "Account No", "Acct Number"],
        0.95,
    ),
    // Firm name sits in the page masthead without a phrase.
    FieldSpec::new("firm_name", BaseType::String, &[], 0.95),
    FieldSpec::new(
        "advisor_name",
        BaseType::String,
        &["Financial Advisor", "Your Advisor", "Advisor"],
        0.6,
    ),
    FieldSpec::new("account_type", BaseType::String, &["Account Type"], 0.7),
    FieldSpec::new(
        "portfolio_id",
        BaseType::String,
        &["Portfolio ID", "Portfolio Number"],
        0.3,
    ),
    FieldSpec::new("tax_id", BaseType::String, &["Tax ID", "TIN"], 0.35),
    FieldSpec::new("account_holder_address", BaseType::Address, &[], 0.9),
    FieldSpec::new("firm_address", BaseType::Address, &[], 0.85),
];

/// Generator for the Brokerage Statements domain.
pub struct BrokerageGen;

impl DomainGenerator for BrokerageGen {
    fn domain(&self) -> Domain {
        Domain::Brokerage
    }

    fn schema(&self) -> Schema {
        schema_from_specs("brokerage", &SPECS)
    }

    fn field_specs(&self) -> &'static [FieldSpec] {
        &SPECS
    }

    fn generate(&self, seed: u64, n: usize, opts: &GenOptions) -> Corpus {
        drive(Domain::Brokerage, &SPECS, 2, seed, n, opts, render)
    }
}

fn render(rng: &mut StdRng, vendor: &Vendor, present: &[bool], id: String) -> Document {
    let sp = &SPECS;
    let mut p = PageBuilder::new(id, vendor.style);
    let f = |i: usize| i as FieldId;

    // --- Masthead: firm name + address (phrase-less).
    if present[ID_FIRM_NAME] {
        p.labeled_text(20.0, &values::company_name(rng), f(ID_FIRM_NAME));
        p.newline();
    }
    if present[ID_FIRM_ADDRESS] {
        let street = values::street_line(rng);
        let city = values::city_line(rng);
        p.address_block(20.0, None, &[&street, &city], Some(f(ID_FIRM_ADDRESS)));
    }
    p.text(650.0, "Brokerage Account Statement");
    p.vspace(14.0);

    // --- Account identity block.
    if present[ID_HOLDER_NAME] {
        p.kv_row(
            40.0,
            vendor.phrase(sp, ID_HOLDER_NAME),
            360.0,
            &values::person_name(rng),
            Some(f(ID_HOLDER_NAME)),
        );
    }
    if present[ID_HOLDER_ADDRESS] {
        let street = values::street_line(rng);
        let city = values::city_line(rng);
        p.address_block(40.0, None, &[&street, &city], Some(f(ID_HOLDER_ADDRESS)));
    }
    for &(fid, gen_kind) in &[
        (ID_ACCOUNT_NUMBER, 0u8),
        (ID_ACCOUNT_TYPE, 1),
        (ID_ADVISOR_NAME, 2),
        (ID_PORTFOLIO_ID, 0),
        (ID_TAX_ID, 3),
    ] {
        if !present[fid] {
            continue;
        }
        let v = match gen_kind {
            0 => values::id_number(rng),
            1 => ["Individual", "Joint", "IRA", "Roth IRA"][rng.gen_range(0..4)].to_string(),
            2 => values::person_name(rng),
            _ => format!(
                "{:02}-{:07}",
                rng.gen_range(10..99),
                rng.gen_range(0..10_000_000)
            ),
        };
        if vendor.variant == 0 {
            p.kv_row(40.0, vendor.phrase(sp, fid), 360.0, &v, Some(f(fid)));
        } else {
            p.kv_stacked(40.0, vendor.phrase(sp, fid), &v, Some(f(fid)));
        }
    }
    p.vspace(12.0);

    // --- Statement period dates.
    let date_style = (vendor.id % 3) as u8;
    for &fid in &[ID_PERIOD_START, ID_PERIOD_END, ID_STMT_DATE, ID_OPENED_DATE] {
        if present[fid] {
            p.kv_row(
                40.0,
                vendor.phrase(sp, fid),
                360.0,
                &values::date(rng, date_style),
                Some(f(fid)),
            );
        }
    }
    p.vspace(14.0);

    // --- Account value summary.
    p.text(40.0, "Account Value Summary");
    p.newline();
    let begin = rng.gen_range(100_000..90_000_000i64);
    let deposits = rng.gen_range(0..2_000_000i64);
    let withdrawals = rng.gen_range(0..1_500_000i64);
    let change = rng.gen_range(-3_000_000..5_000_000i64);
    let end = begin + deposits - withdrawals + change;
    let rows: [(usize, i64); 5] = [
        (ID_BEGIN_VALUE, begin),
        (ID_DEPOSITS, deposits),
        (ID_WITHDRAWALS, withdrawals),
        (ID_CHANGE, change),
        (ID_END_VALUE, end),
    ];
    let vx = if vendor.variant == 0 { 420.0 } else { 500.0 };
    for (fid, cents) in rows {
        if present[fid] {
            p.kv_row(
                60.0,
                vendor.phrase(sp, fid),
                vx,
                &values::format_money(cents, true),
                Some(f(fid)),
            );
        }
    }

    // --- Holdings distractor table (unlabeled).
    p.vspace(14.0);
    p.text(40.0, "Top Holdings");
    p.newline();
    for _ in 0..rng.gen_range(2..5) {
        let sym = values::short_code(rng);
        let qty = values::small_number(rng);
        let val = values::money(rng, 10_000, 5_000_000, true);
        p.kv_row(60.0, &sym, 300.0, &qty, None);
        // Place the value on the previous row's right; simpler: own row.
        p.kv_row(60.0, "", vx, &val, None);
    }
    p.vspace(10.0);
    p.text(
        40.0,
        "Values are estimates and may not reflect final settlement",
    );
    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::GenOptions;

    #[test]
    fn schema_shape() {
        let s = BrokerageGen.schema();
        assert_eq!(s.len(), 18);
        assert_eq!(s.type_histogram(), [2, 4, 5, 0, 7]);
    }

    #[test]
    fn generates_valid_docs() {
        let c = BrokerageGen.generate(4, 15, &GenOptions::default());
        for d in &c.documents {
            assert!(d.validate().is_ok());
            assert!(!d.annotations.is_empty());
        }
    }

    #[test]
    fn money_fields_anchored_strings_mixed() {
        let anchored_money = SPECS
            .iter()
            .filter(|f| f.base_type == BaseType::Money)
            .all(|f| !f.phrases.is_empty());
        assert!(anchored_money);
        assert!(SPECS
            .iter()
            .any(|f| f.base_type == BaseType::String && f.phrases.is_empty()));
    }

    #[test]
    fn ending_value_usually_present() {
        let c = BrokerageGen.generate(8, 60, &GenOptions::default());
        let fid = c.schema.field_id("ending_value").unwrap();
        assert!(c.field_frequency(fid) > 0.85);
    }
}
