//! The **Invoices** corpus: the *out-of-domain* document type used to
//! pre-train the key-phrase importance model (Section IV-B: "trained on an
//! out-of-domain document type (invoices) with approximately 5000 training
//! documents"). It is never used for evaluation; it exists so that the
//! importance model learns domain-transferable relative-position cues.

use crate::domain::{
    drive, schema_from_specs, Domain, DomainGenerator, FieldSpec, GenOptions, Vendor,
};
use crate::layout::PageBuilder;
use crate::values;
use fieldswap_docmodel::{BaseType, Corpus, Document, FieldId, Schema};
use rand::rngs::StdRng;
use rand::Rng;

const ID_INVOICE_NUMBER: usize = 0;
const ID_PO_NUMBER: usize = 1;
const ID_INVOICE_DATE: usize = 2;
const ID_DUE_DATE: usize = 3;
const ID_SUBTOTAL: usize = 4;
const ID_TAX: usize = 5;
const ID_TOTAL_DUE: usize = 6;
const ID_SUPPLIER_NAME: usize = 7;
const ID_CUSTOMER_NAME: usize = 8;
const ID_CUSTOMER_ADDRESS: usize = 9;

const SPECS: [FieldSpec; 10] = [
    FieldSpec::new(
        "invoice_number",
        BaseType::String,
        &["Invoice Number", "Invoice No", "Invoice #"],
        0.95,
    ),
    FieldSpec::new(
        "po_number",
        BaseType::String,
        &["PO Number", "Purchase Order"],
        0.5,
    ),
    FieldSpec::new(
        "invoice_date",
        BaseType::Date,
        &["Invoice Date", "Date of Invoice", "Issued"],
        0.95,
    ),
    FieldSpec::new(
        "due_date",
        BaseType::Date,
        &["Due Date", "Payment Due", "Pay By"],
        0.85,
    ),
    FieldSpec::new("subtotal", BaseType::Money, &["Subtotal", "Sub Total"], 0.8),
    FieldSpec::new("tax", BaseType::Money, &["Tax", "Sales Tax", "VAT"], 0.75),
    FieldSpec::new(
        "total_due",
        BaseType::Money,
        &["Total", "Amount Due", "Total Due", "Balance Due"],
        0.97,
    ),
    FieldSpec::new("supplier_name", BaseType::String, &[], 0.95),
    FieldSpec::new(
        "customer_name",
        BaseType::String,
        &["Bill To", "Customer", "Sold To"],
        0.9,
    ),
    FieldSpec::new("customer_address", BaseType::Address, &[], 0.85),
];

/// Generator for the out-of-domain Invoices corpus.
pub struct InvoicesGen;

impl DomainGenerator for InvoicesGen {
    fn domain(&self) -> Domain {
        Domain::Invoices
    }

    fn schema(&self) -> Schema {
        schema_from_specs("invoices", &SPECS)
    }

    fn field_specs(&self) -> &'static [FieldSpec] {
        &SPECS
    }

    fn generate(&self, seed: u64, n: usize, opts: &GenOptions) -> Corpus {
        drive(Domain::Invoices, &SPECS, 2, seed, n, opts, render)
    }
}

fn render(rng: &mut StdRng, vendor: &Vendor, present: &[bool], id: String) -> Document {
    let sp = &SPECS;
    let mut p = PageBuilder::new(id, vendor.style);
    let f = |i: usize| i as FieldId;

    if present[ID_SUPPLIER_NAME] {
        p.labeled_text(20.0, &values::company_name(rng), f(ID_SUPPLIER_NAME));
        p.newline();
    }
    p.text(700.0, "INVOICE");
    p.vspace(14.0);

    let date_style = (vendor.id % 3) as u8;
    let stacked = vendor.variant == 0;
    let kv = |p: &mut PageBuilder, fid: usize, value: String, x: f32| {
        if stacked {
            p.kv_stacked(x, vendor.phrase(sp, fid), &value, Some(f(fid)));
        } else {
            p.kv_row(x, vendor.phrase(sp, fid), x + 260.0, &value, Some(f(fid)));
        }
    };
    if present[ID_INVOICE_NUMBER] {
        let v = values::id_number(rng);
        kv(&mut p, ID_INVOICE_NUMBER, v, 40.0);
    }
    if present[ID_PO_NUMBER] {
        let v = values::id_number(rng);
        kv(&mut p, ID_PO_NUMBER, v, 40.0);
    }
    if present[ID_INVOICE_DATE] {
        let v = values::date(rng, date_style);
        kv(&mut p, ID_INVOICE_DATE, v, 40.0);
    }
    if present[ID_DUE_DATE] {
        let v = values::date(rng, date_style);
        kv(&mut p, ID_DUE_DATE, v, 40.0);
    }
    p.vspace(8.0);

    if present[ID_CUSTOMER_NAME] {
        p.text(40.0, vendor.phrase(sp, ID_CUSTOMER_NAME));
        p.newline();
        p.labeled_text(60.0, &values::person_name(rng), f(ID_CUSTOMER_NAME));
        p.newline();
    }
    if present[ID_CUSTOMER_ADDRESS] {
        let street = values::street_line(rng);
        let city = values::city_line(rng);
        p.address_block(60.0, None, &[&street, &city], Some(f(ID_CUSTOMER_ADDRESS)));
    }
    p.vspace(12.0);

    // Line-item distractor table.
    p.table(
        40.0,
        &[(400.0, "Qty"), (520.0, "Unit Price"), (700.0, "Amount")],
        &(0..rng.gen_range(2..6))
            .map(|_| {
                (
                    format!(
                        "{} {}",
                        ["Consulting", "Hardware", "Support", "License", "Shipping"]
                            [rng.gen_range(0..5)],
                        values::short_code(rng)
                    ),
                    vec![
                        (400.0, values::small_number(rng), None),
                        (520.0, values::money(rng, 500, 90_000, true), None),
                        (700.0, values::money(rng, 500, 900_000, true), None),
                    ],
                )
            })
            .collect::<Vec<_>>(),
    );
    p.vspace(10.0);

    let sub = rng.gen_range(10_000..2_000_000i64);
    let tax = sub / rng.gen_range(8..20);
    let rows = [(ID_SUBTOTAL, sub), (ID_TAX, tax), (ID_TOTAL_DUE, sub + tax)];
    for (fid, cents) in rows {
        if present[fid] {
            p.kv_row(
                520.0,
                vendor.phrase(sp, fid),
                700.0,
                &values::format_money(cents, true),
                Some(f(fid)),
            );
        }
    }
    p.vspace(12.0);
    p.text(40.0, "Thank you for your business Payment terms net 30");
    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::GenOptions;

    #[test]
    fn schema_has_ten_fields() {
        assert_eq!(InvoicesGen.schema().len(), 10);
    }

    #[test]
    fn disjoint_from_eval_domains() {
        // Out-of-domain means a schema different from every eval domain.
        let inv = InvoicesGen.schema();
        for d in Domain::EVAL {
            assert_ne!(inv.domain, d.generator().schema().domain);
        }
    }

    #[test]
    fn generates_valid_docs() {
        let c = InvoicesGen.generate(12, 10, &GenOptions::default());
        for d in &c.documents {
            assert!(d.validate().is_ok());
            assert!(!d.annotations.is_empty());
        }
    }

    #[test]
    fn total_due_has_rich_synonym_bank() {
        let total = SPECS.iter().find(|f| f.name == "total_due").unwrap();
        assert!(total.phrases.len() >= 3);
    }
}
