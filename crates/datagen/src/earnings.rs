//! The **Earnings** (paystub) corpus: 23 fields — 15 money, 3 date, 2
//! address, 3 string (Table II) — dominated by a tabular earnings section
//! with *Current* and *Year-to-Date* columns whose rows share a single
//! key phrase. This is the domain where the paper observes the largest
//! FieldSwap gains (Fig. 4) and the contradictory-pair hazard
//! (`current.X` vs `year_to_date.X`, Section II-B).
//!
//! Rare fields reproduce Table IV: `current.sales_pay` (~2.9% of
//! documents), `year_to_date.sales_pay` (~3.9%), `current.pto_pay`
//! (~9.5%), `year_to_date.pto_pay` (~15.9%).

use crate::domain::{
    drive, schema_from_specs, Domain, DomainGenerator, FieldSpec, GenOptions, Vendor,
};
use crate::layout::PageBuilder;
use crate::values;
use fieldswap_docmodel::{BaseType, Corpus, Document, FieldId, Schema};
use rand::rngs::StdRng;
use rand::Rng;

/// The seven pay types rendered as table rows; each contributes a
/// `current.*` and a `year_to_date.*` money field. Field ids are laid out
/// as: pay pair `k` → current = `2k`, ytd = `2k + 1`.
const PAY_TYPES: [(&str, &[&str], f64, f64); 7] = [
    // (stem, phrase bank, current presence, ytd presence)
    (
        "base_salary",
        &[
            "Base Salary",
            "Regular Pay",
            "Base",
            "Salary",
            "Regular Earnings",
        ],
        0.97,
        0.97,
    ),
    (
        "overtime",
        &["Overtime", "OT Pay", "Overtime Pay", "OT Earnings"],
        0.55,
        0.62,
    ),
    (
        "bonus",
        &["Bonus", "Incentive Pay", "Bonus Pay", "Discretionary Bonus"],
        0.42,
        0.50,
    ),
    (
        "commission",
        &["Commission", "Comm Earnings", "Commission Pay"],
        0.30,
        0.34,
    ),
    (
        "vacation",
        &["Vacation", "Vacation Pay", "Vacation Earnings"],
        0.33,
        0.40,
    ),
    (
        "pto_pay",
        &["PTO", "PTO Pay", "Paid Time Off", "PTO Earnings"],
        0.095,
        0.159,
    ),
    (
        "sales_pay",
        &["Sales Pay", "Sales Incentive", "Sales Earnings"],
        0.0285,
        0.039,
    ),
];

/// Remaining fields, ids continuing after the pay pairs:
/// 14 net_pay, 15..=17 dates, 18 employee_name, 19 employee_id,
/// 20 employer_name, 21 employee_address, 22 employer_address.
const ID_NET_PAY: usize = 14;
const ID_PERIOD_START: usize = 15;
const ID_PERIOD_END: usize = 16;
const ID_PAY_DATE: usize = 17;
const ID_EMPLOYEE_NAME: usize = 18;
const ID_EMPLOYEE_ID: usize = 19;
const ID_EMPLOYER_NAME: usize = 20;
const ID_EMPLOYEE_ADDRESS: usize = 21;
const ID_EMPLOYER_ADDRESS: usize = 22;

fn build_specs() -> Vec<FieldSpec> {
    let mut specs = Vec::with_capacity(23);
    for (stem, bank, cur_p, ytd_p) in PAY_TYPES {
        // current.* and year_to_date.* share the same phrase bank: the
        // table row label. This is precisely the contradictory-pair setup.
        specs.push(FieldSpec {
            name: leak(format!("current.{stem}")),
            base_type: BaseType::Money,
            phrases: bank,
            presence: cur_p,
        });
        specs.push(FieldSpec {
            name: leak(format!("year_to_date.{stem}")),
            base_type: BaseType::Money,
            phrases: bank,
            presence: ytd_p,
        });
    }
    specs.push(FieldSpec::new(
        "net_pay",
        BaseType::Money,
        &["Net Pay", "Take Home Pay", "Net Amount"],
        0.98,
    ));
    specs.push(FieldSpec::new(
        "period_start",
        BaseType::Date,
        &["Period Start", "Pay Period Begin", "Period Beginning"],
        0.95,
    ));
    specs.push(FieldSpec::new(
        "period_end",
        BaseType::Date,
        &["Period End", "Pay Period End", "Period Ending"],
        0.95,
    ));
    specs.push(FieldSpec::new(
        "pay_date",
        BaseType::Date,
        &["Pay Date", "Check Date", "Payment Date"],
        0.92,
    ));
    specs.push(FieldSpec::new(
        "employee_name",
        BaseType::String,
        &["Employee", "Employee Name"],
        0.98,
    ));
    specs.push(FieldSpec::new(
        "employee_id",
        BaseType::String,
        &["Employee ID", "Emp ID", "Employee No"],
        0.8,
    ));
    // The employer name sits in the page header with no introducing phrase
    // (Section II-A5: fields like company name lack key phrases).
    specs.push(FieldSpec::new("employer_name", BaseType::String, &[], 0.95));
    specs.push(FieldSpec::new(
        "employee_address",
        BaseType::Address,
        &["Employee Address", "Mailing Address", "Home Address"],
        0.85,
    ));
    specs.push(FieldSpec::new(
        "employer_address",
        BaseType::Address,
        &[],
        0.9,
    ));
    specs
}

fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

fn specs() -> &'static [FieldSpec] {
    use std::sync::OnceLock;
    static SPECS: OnceLock<Vec<FieldSpec>> = OnceLock::new();
    SPECS.get_or_init(build_specs)
}

/// Generator for the Earnings domain.
pub struct EarningsGen;

impl DomainGenerator for EarningsGen {
    fn domain(&self) -> Domain {
        Domain::Earnings
    }

    fn schema(&self) -> Schema {
        schema_from_specs("earnings", specs())
    }

    fn field_specs(&self) -> &'static [FieldSpec] {
        specs()
    }

    fn generate(&self, seed: u64, n: usize, opts: &GenOptions) -> Corpus {
        drive(Domain::Earnings, specs(), 2, seed, n, opts, render)
    }
}

fn render(rng: &mut StdRng, vendor: &Vendor, present: &[bool], id: String) -> Document {
    let specs = specs();
    let mut p = PageBuilder::new(id, vendor.style);
    let f = |i: usize| i as FieldId;

    // --- Header: employer name + address, top-left corner, no phrases.
    if present[ID_EMPLOYER_NAME] {
        p.labeled_text(20.0, &values::company_name(rng), f(ID_EMPLOYER_NAME));
        p.newline();
    }
    if present[ID_EMPLOYER_ADDRESS] {
        let street = values::street_line(rng);
        let city = values::city_line(rng);
        p.address_block(20.0, None, &[&street, &city], Some(f(ID_EMPLOYER_ADDRESS)));
    }
    p.text(620.0, "Earnings Statement");
    p.vspace(14.0);

    // --- Pay period dates: kv rows or stacked depending on variant.
    let date_style = (vendor.id % 3) as u8;
    let date_fields = [ID_PERIOD_START, ID_PERIOD_END, ID_PAY_DATE];
    if vendor.variant == 0 {
        for (k, &fid) in date_fields.iter().enumerate() {
            if present[fid] {
                p.kv_row(
                    40.0 + 250.0 * k as f32,
                    vendor.phrase(specs, fid),
                    40.0 + 250.0 * k as f32 + 120.0,
                    &values::date(rng, date_style),
                    Some(f(fid)),
                );
            }
        }
    } else {
        for &fid in &date_fields {
            if present[fid] {
                p.kv_row(
                    40.0,
                    vendor.phrase(specs, fid),
                    320.0,
                    &values::date(rng, date_style),
                    Some(f(fid)),
                );
            }
        }
    }
    p.vspace(10.0);

    // --- Employee block.
    if present[ID_EMPLOYEE_NAME] {
        p.kv_row(
            40.0,
            vendor.phrase(specs, ID_EMPLOYEE_NAME),
            320.0,
            &values::person_name(rng),
            Some(f(ID_EMPLOYEE_NAME)),
        );
    }
    if present[ID_EMPLOYEE_ID] {
        p.kv_row(
            40.0,
            vendor.phrase(specs, ID_EMPLOYEE_ID),
            320.0,
            &values::id_number(rng),
            Some(f(ID_EMPLOYEE_ID)),
        );
    }
    if present[ID_EMPLOYEE_ADDRESS] {
        p.text(40.0, vendor.phrase(specs, ID_EMPLOYEE_ADDRESS));
        p.newline();
        let street = values::street_line(rng);
        let city = values::city_line(rng);
        p.address_block(40.0, None, &[&street, &city], Some(f(ID_EMPLOYEE_ADDRESS)));
    }
    p.vspace(16.0);

    // --- Earnings table: Current and YTD columns share one row phrase.
    // Column positions vary per vendor so absolute-position features
    // cannot be memorized from a handful of templates.
    let jit = (vendor.id % 11) as f32 * 9.0;
    let (cur_x, ytd_x) = if vendor.variant == 0 {
        (420.0 + jit, 640.0 + jit)
    } else {
        (480.0 + jit, 720.0 + jit)
    };
    let headers: Vec<(f32, &str)> = vec![
        (40.0, "Earnings"),
        (
            cur_x,
            if vendor.id.is_multiple_of(2) {
                "Current"
            } else {
                "This Period"
            },
        ),
        (
            ytd_x,
            if vendor.id.is_multiple_of(2) {
                "YTD"
            } else {
                "Year To Date"
            },
        ),
    ];
    let mut rows = Vec::new();
    let mut cur_total = 0i64;
    for (k, (_stem, _bank, _, _)) in PAY_TYPES.iter().enumerate() {
        let cur_id = 2 * k;
        let ytd_id = 2 * k + 1;
        if !present[cur_id] && !present[ytd_id] {
            continue;
        }
        let cur_cents = rng.gen_range(8_000..600_000i64);
        let ytd_cents = cur_cents * rng.gen_range(2..20);
        cur_total += if present[cur_id] { cur_cents } else { 0 };
        let mut cells = Vec::new();
        if present[cur_id] {
            cells.push((
                cur_x,
                values::format_money(cur_cents, true),
                Some(f(cur_id)),
            ));
        } else {
            cells.push((cur_x, "--".to_string(), None));
        }
        if present[ytd_id] {
            cells.push((
                ytd_x,
                values::format_money(ytd_cents, true),
                Some(f(ytd_id)),
            ));
        } else {
            cells.push((ytd_x, "--".to_string(), None));
        }
        rows.push((vendor.phrase(specs, cur_id).to_string(), cells));
    }
    p.table(40.0, &headers, &rows);
    p.vspace(10.0);

    // --- Deductions distractor rows: unlabeled money values that create
    // spurious-correlation hazards for position-reliant models.
    for phrase in ["Federal Tax", "State Tax", "Medicare"] {
        if rng.gen_bool(0.7) {
            p.kv_row(
                40.0,
                phrase,
                cur_x,
                &values::money(rng, 1_000, 90_000, true),
                None,
            );
        }
    }
    p.vspace(8.0);

    if present[ID_NET_PAY] {
        let net = (cur_total - rng.gen_range(1_000..50_000i64)).max(1_000);
        p.kv_row(
            40.0,
            vendor.phrase(specs, ID_NET_PAY),
            cur_x,
            &values::format_money(net, true),
            Some(f(ID_NET_PAY)),
        );
    }

    // --- Footer distractor.
    p.vspace(20.0);
    p.text(
        40.0,
        "This statement is provided for your records Keep it with your tax documents",
    );

    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::GenOptions;

    #[test]
    fn schema_shape() {
        let s = EarningsGen.schema();
        assert_eq!(s.len(), 23);
        assert_eq!(s.type_histogram(), [2, 3, 15, 0, 3]);
        assert_eq!(s.field_id("current.sales_pay"), Some(12));
        assert_eq!(s.field_id("year_to_date.sales_pay"), Some(13));
    }

    #[test]
    fn contradictory_pairs_share_phrase_bank() {
        let specs = EarningsGen.field_specs();
        let cur = specs.iter().find(|f| f.name == "current.overtime").unwrap();
        let ytd = specs
            .iter()
            .find(|f| f.name == "year_to_date.overtime")
            .unwrap();
        assert_eq!(cur.phrases, ytd.phrases);
    }

    #[test]
    fn rare_field_frequencies_track_table4() {
        let c = EarningsGen.generate(3, 1200, &GenOptions::default());
        let s = c.schema.clone();
        let freq = |name: &str| c.field_frequency(s.field_id(name).unwrap());
        let sales_ytd = freq("year_to_date.sales_pay");
        assert!(
            (0.01..0.09).contains(&sales_ytd),
            "ytd.sales_pay frequency {sales_ytd}"
        );
        let base = freq("current.base_salary");
        assert!(base > 0.9, "base salary frequency {base}");
    }

    #[test]
    fn current_and_ytd_values_on_same_row() {
        let c = EarningsGen.generate(5, 30, &GenOptions::default());
        let s = &c.schema;
        let cur = s.field_id("current.base_salary").unwrap();
        let ytd = s.field_id("year_to_date.base_salary").unwrap();
        let mut checked = false;
        for d in &c.documents {
            let (Some(a), Some(b)) = (d.spans_of(cur).next(), d.spans_of(ytd).next()) else {
                continue;
            };
            let ya = d.tokens[a.start as usize].bbox.center().y;
            let yb = d.tokens[b.start as usize].bbox.center().y;
            assert!((ya - yb).abs() < 2.0, "row misalignment {ya} vs {yb}");
            // current column left of ytd column
            assert!(d.tokens[a.start as usize].bbox.x0 < d.tokens[b.start as usize].bbox.x0);
            checked = true;
        }
        assert!(checked);
    }

    #[test]
    fn employer_name_has_no_phrase() {
        let specs = EarningsGen.field_specs();
        let emp = specs.iter().find(|f| f.name == "employer_name").unwrap();
        assert!(emp.phrases.is_empty());
    }

    #[test]
    fn key_phrases_appear_near_values() {
        // The vendor's chosen phrase must be present in the document text
        // whenever the field is.
        let c = EarningsGen.generate(9, 20, &GenOptions::default());
        let s = &c.schema;
        let net = s.field_id("net_pay").unwrap();
        for d in &c.documents {
            if d.has_field(net) {
                let text: Vec<String> = d.tokens.iter().map(|t| t.lower()).collect();
                let joined = text.join(" ");
                assert!(
                    joined.contains("net pay")
                        || joined.contains("take home pay")
                        || joined.contains("net amount"),
                    "no net-pay phrase in {}",
                    d.id
                );
            }
        }
    }
}
