//! The **Loan Payments** corpus: 35 fields — 20 money, 5 date, 3 address,
//! 7 string (Table II). The largest schema in the paper.
//!
//! Design notes tied to the paper's Fig. 6a: the *date* and *money* fields
//! carry clear key phrases (FieldSwap helps), while most *string* and
//! *address* fields are deliberately phrase-less or only weakly anchored —
//! the regime in which automatic FieldSwap infers spurious phrases and can
//! hurt, and which the human-expert configuration fixes by excluding those
//! fields.

use crate::domain::{
    drive, schema_from_specs, Domain, DomainGenerator, FieldSpec, GenOptions, Vendor,
};
use crate::layout::PageBuilder;
use crate::values;
use fieldswap_docmodel::{BaseType, Corpus, Document, FieldId, Schema};
use rand::rngs::StdRng;
use rand::Rng;

// Money pairs rendered in an activity table (current / year-to-date), ids
// 0..8: pair k → current = 2k, ytd = 2k + 1.
const PAY_PAIRS: [(&str, &[&str], f64, f64); 4] = [
    (
        "principal",
        &["Principal", "Principal Paid", "Principal Amount"],
        0.95,
        0.9,
    ),
    (
        "interest",
        &["Interest", "Interest Paid", "Interest Amount"],
        0.95,
        0.9,
    ),
    (
        "escrow",
        &["Escrow", "Escrow Payment", "Escrow Amount"],
        0.7,
        0.65,
    ),
    ("fees", &["Fees", "Fees Charged", "Other Fees"], 0.4, 0.45),
];

const N_PAIR: usize = PAY_PAIRS.len() * 2; // 8

// Singles: 12 more money fields (ids 8..20).
const MONEY_SINGLES: [(&str, &[&str], f64); 12] = [
    (
        "total_due",
        &["Total Due", "Amount Due", "Total Amount Due"],
        0.97,
    ),
    (
        "past_due",
        &["Past Due", "Past Due Amount", "Overdue Amount"],
        0.35,
    ),
    ("late_fee", &["Late Fee", "Late Charge"], 0.45),
    (
        "outstanding_principal",
        &[
            "Outstanding Principal",
            "Principal Balance",
            "Unpaid Principal",
        ],
        0.9,
    ),
    ("escrow_balance", &["Escrow Balance"], 0.6),
    (
        "suspense_balance",
        &["Suspense Balance", "Unapplied Balance"],
        0.2,
    ),
    ("unapplied_funds", &["Unapplied Funds"], 0.18),
    (
        "regular_payment",
        &[
            "Regular Payment",
            "Monthly Payment",
            "Regular Monthly Payment",
        ],
        0.9,
    ),
    (
        "optional_insurance",
        &["Optional Insurance", "Insurance Premium"],
        0.25,
    ),
    (
        "last_payment_amount",
        &["Last Payment", "Last Payment Amount", "Amount Received"],
        0.75,
    ),
    ("payoff_amount", &["Payoff Amount", "Payoff Quote"], 0.3),
    (
        "deferred_balance",
        &["Deferred Balance", "Deferred Amount"],
        0.15,
    ),
];

const ID_MONEY_SINGLE0: usize = N_PAIR; // 8
const ID_STMT_DATE: usize = 20;
const ID_DUE_DATE: usize = 21;
const ID_LAST_PAYMENT_DATE: usize = 22;
const ID_MATURITY_DATE: usize = 23;
const ID_NEXT_PAYMENT_DATE: usize = 24;
const ID_BORROWER_NAME: usize = 25;
const ID_CO_BORROWER: usize = 26;
const ID_LOAN_NUMBER: usize = 27;
const ID_SERVICER_NAME: usize = 28;
const ID_LOAN_TYPE: usize = 29;
const ID_ACCOUNT_STATUS: usize = 30;
const ID_PHONE: usize = 31;
const ID_BORROWER_ADDRESS: usize = 32;
const ID_PROPERTY_ADDRESS: usize = 33;
const ID_SERVICER_ADDRESS: usize = 34;

fn build_specs() -> Vec<FieldSpec> {
    let mut specs = Vec::with_capacity(35);
    for (stem, bank, cur_p, ytd_p) in PAY_PAIRS {
        specs.push(FieldSpec {
            name: leak(format!("current.{stem}")),
            base_type: BaseType::Money,
            phrases: bank,
            presence: cur_p,
        });
        specs.push(FieldSpec {
            name: leak(format!("year_to_date.{stem}")),
            base_type: BaseType::Money,
            phrases: bank,
            presence: ytd_p,
        });
    }
    for (name, bank, p) in MONEY_SINGLES {
        specs.push(FieldSpec::new(name, BaseType::Money, bank, p));
    }
    specs.push(FieldSpec::new(
        "statement_date",
        BaseType::Date,
        &["Statement Date", "Statement Issued"],
        0.95,
    ));
    specs.push(FieldSpec::new(
        "payment_due_date",
        BaseType::Date,
        &["Due Date", "Payment Due Date", "Payment Due"],
        0.95,
    ));
    specs.push(FieldSpec::new(
        "last_payment_date",
        BaseType::Date,
        &["Last Payment Date", "Date Received"],
        0.7,
    ));
    specs.push(FieldSpec::new(
        "maturity_date",
        BaseType::Date,
        &["Maturity Date", "Loan Maturity"],
        0.4,
    ));
    specs.push(FieldSpec::new(
        "next_payment_date",
        BaseType::Date,
        &["Next Payment Date", "Next Due Date"],
        0.5,
    ));
    // Strings: mostly phrase-less or weakly anchored (Fig. 6a regime).
    specs.push(FieldSpec::new("borrower_name", BaseType::String, &[], 0.97));
    specs.push(FieldSpec::new(
        "co_borrower_name",
        BaseType::String,
        &[],
        0.25,
    ));
    specs.push(FieldSpec::new(
        "loan_number",
        BaseType::String,
        &["Loan Number", "Loan No", "Account Number"],
        0.95,
    ));
    specs.push(FieldSpec::new("servicer_name", BaseType::String, &[], 0.9));
    specs.push(FieldSpec::new(
        "loan_type",
        BaseType::String,
        &["Loan Type"],
        0.5,
    ));
    specs.push(FieldSpec::new("account_status", BaseType::String, &[], 0.3));
    specs.push(FieldSpec::new(
        "customer_service_phone",
        BaseType::String,
        &[],
        0.6,
    ));
    specs.push(FieldSpec::new(
        "borrower_address",
        BaseType::Address,
        &[],
        0.95,
    ));
    specs.push(FieldSpec::new(
        "property_address",
        BaseType::Address,
        &["Property Address", "Property"],
        0.85,
    ));
    specs.push(FieldSpec::new(
        "servicer_address",
        BaseType::Address,
        &[],
        0.8,
    ));
    specs
}

fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

fn specs() -> &'static [FieldSpec] {
    use std::sync::OnceLock;
    static SPECS: OnceLock<Vec<FieldSpec>> = OnceLock::new();
    SPECS.get_or_init(build_specs)
}

/// Generator for the Loan Payments domain.
pub struct LoanGen;

impl DomainGenerator for LoanGen {
    fn domain(&self) -> Domain {
        Domain::LoanPayments
    }

    fn schema(&self) -> Schema {
        schema_from_specs("loan", specs())
    }

    fn field_specs(&self) -> &'static [FieldSpec] {
        specs()
    }

    fn generate(&self, seed: u64, n: usize, opts: &GenOptions) -> Corpus {
        drive(Domain::LoanPayments, specs(), 2, seed, n, opts, render)
    }
}

fn render(rng: &mut StdRng, vendor: &Vendor, present: &[bool], id: String) -> Document {
    let sp = specs();
    let mut p = PageBuilder::new(id, vendor.style);
    let f = |i: usize| i as FieldId;

    // --- Servicer header (phrase-less name + address, top-left).
    if present[ID_SERVICER_NAME] {
        p.labeled_text(20.0, &values::company_name(rng), f(ID_SERVICER_NAME));
        p.newline();
    }
    if present[ID_SERVICER_ADDRESS] {
        let street = values::street_line(rng);
        let city = values::city_line(rng);
        p.address_block(20.0, None, &[&street, &city], Some(f(ID_SERVICER_ADDRESS)));
    }
    p.text(640.0, "Mortgage Statement");
    if present[ID_PHONE] {
        let phone = format!(
            "1-800-{:03}-{:04}",
            rng.gen_range(200..999),
            rng.gen_range(0..10000)
        );
        let (s, e) = p.text(640.0 - 0.0, "Customer Service");
        let _ = (s, e);
        p.newline();
        p.labeled_text(640.0, &phone, f(ID_PHONE));
        p.newline();
    }
    p.vspace(10.0);

    // --- Borrower block (phrase-less name over address).
    if present[ID_BORROWER_NAME] {
        p.labeled_text(40.0, &values::person_name(rng), f(ID_BORROWER_NAME));
        p.newline();
        if present[ID_CO_BORROWER] {
            p.labeled_text(40.0, &values::person_name(rng), f(ID_CO_BORROWER));
            p.newline();
        }
    }
    if present[ID_BORROWER_ADDRESS] {
        let street = values::street_line(rng);
        let city = values::city_line(rng);
        p.address_block(40.0, None, &[&street, &city], Some(f(ID_BORROWER_ADDRESS)));
    }
    p.vspace(8.0);

    // --- Loan identity block (anchored).
    if present[ID_LOAN_NUMBER] {
        p.kv_row(
            40.0,
            vendor.phrase(sp, ID_LOAN_NUMBER),
            340.0,
            &values::id_number(rng),
            Some(f(ID_LOAN_NUMBER)),
        );
    }
    if present[ID_LOAN_TYPE] {
        let ty = ["Fixed 30yr", "Fixed 15yr", "ARM 5/1", "FHA"][rng.gen_range(0..4)];
        p.kv_row(
            40.0,
            vendor.phrase(sp, ID_LOAN_TYPE),
            340.0,
            ty,
            Some(f(ID_LOAN_TYPE)),
        );
    }
    if present[ID_ACCOUNT_STATUS] {
        let st = ["Current", "Delinquent", "In Grace Period"][rng.gen_range(0..3)];
        p.kv_row(40.0, "", 340.0, st, Some(f(ID_ACCOUNT_STATUS)));
    }
    if present[ID_PROPERTY_ADDRESS] {
        p.text(40.0, vendor.phrase(sp, ID_PROPERTY_ADDRESS));
        p.newline();
        let street = values::street_line(rng);
        let city = values::city_line(rng);
        p.address_block(40.0, None, &[&street, &city], Some(f(ID_PROPERTY_ADDRESS)));
    }
    p.vspace(12.0);

    // --- Date row(s).
    let date_style = (vendor.id % 3) as u8;
    for &fid in &[
        ID_STMT_DATE,
        ID_DUE_DATE,
        ID_LAST_PAYMENT_DATE,
        ID_MATURITY_DATE,
        ID_NEXT_PAYMENT_DATE,
    ] {
        if present[fid] {
            if vendor.variant == 0 {
                p.kv_row(
                    40.0,
                    vendor.phrase(sp, fid),
                    380.0,
                    &values::date(rng, date_style),
                    Some(f(fid)),
                );
            } else {
                p.kv_stacked(
                    40.0,
                    vendor.phrase(sp, fid),
                    &values::date(rng, date_style),
                    Some(f(fid)),
                );
            }
        }
    }
    p.vspace(12.0);

    // --- Payment activity table: Current / Year to Date columns.
    let jit = (vendor.id % 11) as f32 * 9.0;
    let (cur_x, ytd_x) = if vendor.variant == 0 {
        (460.0 + jit, 680.0 + jit)
    } else {
        (500.0 + jit, 740.0 + jit)
    };
    let headers: Vec<(f32, &str)> = vec![
        (40.0, "Activity"),
        (cur_x, "This Period"),
        (ytd_x, "Year to Date"),
    ];
    let mut rows = Vec::new();
    for (k, _) in PAY_PAIRS.iter().enumerate() {
        let cur_id = 2 * k;
        let ytd_id = 2 * k + 1;
        if !present[cur_id] && !present[ytd_id] {
            continue;
        }
        let cur = rng.gen_range(5_000..400_000i64);
        let ytd = cur * rng.gen_range(2..12);
        let mut cells = Vec::new();
        if present[cur_id] {
            cells.push((cur_x, values::format_money(cur, true), Some(f(cur_id))));
        } else {
            cells.push((cur_x, "--".to_string(), None));
        }
        if present[ytd_id] {
            cells.push((ytd_x, values::format_money(ytd, true), Some(f(ytd_id))));
        } else {
            cells.push((ytd_x, "--".to_string(), None));
        }
        rows.push((vendor.phrase(sp, cur_id).to_string(), cells));
    }
    p.table(40.0, &headers, &rows);
    p.vspace(12.0);

    // --- Money singles as kv rows, split across two columns to vary
    // positions between vendors.
    for (k, (_name, _bank, _p)) in MONEY_SINGLES.iter().enumerate() {
        let fid = ID_MONEY_SINGLE0 + k;
        if !present[fid] {
            continue;
        }
        let cents = rng.gen_range(1_000..3_000_000i64);
        let (lx, vx) = if vendor.variant == 0 || k % 2 == 0 {
            (40.0, 380.0)
        } else {
            (520.0, 860.0)
        };
        p.kv_row(
            lx,
            vendor.phrase(sp, fid),
            vx,
            &values::format_money(cents, true),
            Some(f(fid)),
        );
    }

    // --- Footer distractor.
    p.vspace(18.0);
    p.text(
        40.0,
        "Please detach and return the bottom portion with your payment",
    );
    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::GenOptions;

    #[test]
    fn schema_shape() {
        let s = LoanGen.schema();
        assert_eq!(s.len(), 35);
        assert_eq!(s.type_histogram(), [3, 5, 20, 0, 7]);
    }

    #[test]
    fn string_fields_mostly_phrase_less() {
        let sp = LoanGen.field_specs();
        let phrase_less: usize = sp
            .iter()
            .filter(|f| f.base_type == BaseType::String && f.phrases.is_empty())
            .count();
        assert!(phrase_less >= 4, "Fig 6a regime needs phrase-less strings");
    }

    #[test]
    fn money_fields_all_anchored() {
        let sp = LoanGen.field_specs();
        assert!(sp
            .iter()
            .filter(|f| f.base_type == BaseType::Money)
            .all(|f| !f.phrases.is_empty()));
    }

    #[test]
    fn generates_valid_docs_with_labels() {
        let c = LoanGen.generate(1, 20, &GenOptions::default());
        for d in &c.documents {
            assert!(d.validate().is_ok());
            assert!(!d.annotations.is_empty());
        }
    }

    #[test]
    fn total_due_phrase_present_when_field_is() {
        let c = LoanGen.generate(2, 25, &GenOptions::default());
        let fid = c.schema.field_id("total_due").unwrap();
        for d in &c.documents {
            if d.has_field(fid) {
                let joined = d
                    .tokens
                    .iter()
                    .map(|t| t.lower())
                    .collect::<Vec<_>>()
                    .join(" ");
                assert!(
                    joined.contains("total due")
                        || joined.contains("amount due")
                        || joined.contains("total amount due")
                );
            }
        }
    }
}
