//! The **FCC Forms** corpus: 13 fields — 2 money, 4 date, 1 address,
//! 1 number, 5 string (Table II). A government-form layout with numbered
//! items and stacked label/value pairs, modeled after public FCC filing
//! cover sheets.

use crate::domain::{
    drive, schema_from_specs, Domain, DomainGenerator, FieldSpec, GenOptions, Vendor,
};
use crate::layout::PageBuilder;
use crate::values;
use fieldswap_docmodel::{BaseType, Corpus, Document, FieldId, Schema};
use rand::rngs::StdRng;
use rand::Rng;

const ID_APPLICANT_NAME: usize = 0;
const ID_CALL_SIGN: usize = 1;
const ID_CONTACT_NAME: usize = 2;
const ID_SERVICE_TYPE: usize = 3;
const ID_FACILITY_ID: usize = 4;
const ID_FILE_NUMBER: usize = 5;
const ID_DATE_FILED: usize = 6;
const ID_PERIOD_START: usize = 7;
const ID_PERIOD_END: usize = 8;
const ID_CERT_DATE: usize = 9;
const ID_APPLICATION_FEE: usize = 10;
const ID_TOTAL_FEE: usize = 11;
const ID_CONTACT_ADDRESS: usize = 12;

const SPECS: [FieldSpec; 13] = [
    FieldSpec::new(
        "applicant_name",
        BaseType::String,
        &["Applicant Name", "Name of Applicant", "Licensee Name"],
        0.97,
    ),
    FieldSpec::new(
        "call_sign",
        BaseType::String,
        &["Call Sign", "Station Call Sign"],
        0.8,
    ),
    FieldSpec::new(
        "contact_name",
        BaseType::String,
        &["Contact Name", "Contact Representative", "Attention"],
        0.75,
    ),
    FieldSpec::new(
        "service_type",
        BaseType::String,
        &["Radio Service", "Service Type"],
        0.7,
    ),
    FieldSpec::new(
        "facility_id",
        BaseType::String,
        &["Facility ID", "Facility Identifier"],
        0.55,
    ),
    FieldSpec::new(
        "file_number",
        BaseType::Number,
        &["File Number", "File No", "Application File Number"],
        0.9,
    ),
    FieldSpec::new(
        "date_filed",
        BaseType::Date,
        &["Date Filed", "Filing Date", "Submitted On"],
        0.92,
    ),
    FieldSpec::new(
        "period_start",
        BaseType::Date,
        &["License Period From", "Term Begin", "Effective Date"],
        0.6,
    ),
    FieldSpec::new(
        "period_end",
        BaseType::Date,
        &["License Period To", "Term End", "Expiration Date"],
        0.65,
    ),
    FieldSpec::new(
        "certification_date",
        BaseType::Date,
        &["Certification Date", "Date Certified", "Signed On"],
        0.7,
    ),
    FieldSpec::new(
        "application_fee",
        BaseType::Money,
        &["Application Fee", "Filing Fee"],
        0.75,
    ),
    FieldSpec::new(
        "total_fee",
        BaseType::Money,
        &["Total Fee", "Total Amount Paid", "Fee Total"],
        0.8,
    ),
    FieldSpec::new(
        "contact_address",
        BaseType::Address,
        &["Contact Address", "Mailing Address"],
        0.85,
    ),
];

/// Generator for the FCC Forms domain.
pub struct FccGen;

impl DomainGenerator for FccGen {
    fn domain(&self) -> Domain {
        Domain::FccForms
    }

    fn schema(&self) -> Schema {
        schema_from_specs("fcc", &SPECS)
    }

    fn field_specs(&self) -> &'static [FieldSpec] {
        &SPECS
    }

    fn generate(&self, seed: u64, n: usize, opts: &GenOptions) -> Corpus {
        drive(Domain::FccForms, &SPECS, 2, seed, n, opts, render)
    }
}

fn render(rng: &mut StdRng, vendor: &Vendor, present: &[bool], id: String) -> Document {
    let sp = &SPECS;
    let mut p = PageBuilder::new(id, vendor.style);
    let f = |i: usize| i as FieldId;

    p.text(300.0, "Federal Communications Commission");
    p.newline();
    p.text(380.0, "Application Cover Sheet");
    p.vspace(16.0);

    // Government forms commonly stack the label above the value inside a
    // numbered box; variant 1 uses side-by-side rows instead.
    let stacked = vendor.variant == 0;
    let mut item = 1usize;
    let emit = |p: &mut PageBuilder, item: &mut usize, fid: usize, value: String| {
        let phrase = vendor.phrase(sp, fid);
        let label = format!("{item}. {phrase}");
        if stacked {
            p.kv_stacked(40.0, &label, &value, Some(f(fid)));
        } else {
            p.kv_row(40.0, &label, 420.0, &value, Some(f(fid)));
        }
        *item += 1;
    };

    if present[ID_APPLICANT_NAME] {
        let v = if rng.gen_bool(0.5) {
            values::company_name(rng)
        } else {
            values::person_name(rng)
        };
        emit(&mut p, &mut item, ID_APPLICANT_NAME, v);
    }
    if present[ID_FILE_NUMBER] {
        emit(
            &mut p,
            &mut item,
            ID_FILE_NUMBER,
            rng.gen_range(1_000_000..9_999_999).to_string(),
        );
    }
    if present[ID_CALL_SIGN] {
        let v = format!(
            "{}{}",
            ["K", "W"][rng.gen_range(0..2)],
            values::short_code(rng)
        );
        emit(&mut p, &mut item, ID_CALL_SIGN, v);
    }
    if present[ID_SERVICE_TYPE] {
        let v = ["FM Broadcast", "AM Broadcast", "Land Mobile", "Microwave"][rng.gen_range(0..4)]
            .to_string();
        emit(&mut p, &mut item, ID_SERVICE_TYPE, v);
    }
    if present[ID_FACILITY_ID] {
        emit(
            &mut p,
            &mut item,
            ID_FACILITY_ID,
            format!("F{}", rng.gen_range(10_000..99_999)),
        );
    }
    let date_style = (vendor.id % 3) as u8;
    for &fid in &[ID_DATE_FILED, ID_PERIOD_START, ID_PERIOD_END] {
        if present[fid] {
            let v = values::date(rng, date_style);
            emit(&mut p, &mut item, fid, v);
        }
    }
    if present[ID_CONTACT_NAME] {
        let v = values::person_name(rng);
        emit(&mut p, &mut item, ID_CONTACT_NAME, v);
    }
    if present[ID_CONTACT_ADDRESS] {
        // Address rendered as a block under its item label.
        let label = format!("{item}. {}", vendor.phrase(sp, ID_CONTACT_ADDRESS));
        p.text(40.0, &label);
        p.newline();
        let street = values::street_line(rng);
        let city = values::city_line(rng);
        p.address_block(60.0, None, &[&street, &city], Some(f(ID_CONTACT_ADDRESS)));
        item += 1;
    }
    p.vspace(10.0);

    // Fee section.
    for &fid in &[ID_APPLICATION_FEE, ID_TOTAL_FEE] {
        if present[fid] {
            let v = values::money(rng, 5_000, 500_000, true);
            emit(&mut p, &mut item, fid, v);
        }
    }
    if present[ID_CERT_DATE] {
        p.vspace(8.0);
        p.text(40.0, "I certify that the statements made herein are true");
        p.newline();
        let v = values::date(rng, date_style);
        emit(&mut p, &mut item, ID_CERT_DATE, v);
    }
    let _ = item;
    p.vspace(12.0);
    p.text(40.0, "FCC Form Approved OMB Control Number 3060");
    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::GenOptions;

    #[test]
    fn schema_shape() {
        let s = FccGen.schema();
        assert_eq!(s.len(), 13);
        assert_eq!(s.type_histogram(), [1, 4, 2, 1, 5]);
    }

    #[test]
    fn generates_valid_docs() {
        let c = FccGen.generate(2, 15, &GenOptions::default());
        for d in &c.documents {
            assert!(d.validate().is_ok());
        }
    }

    #[test]
    fn numbered_item_labels_present() {
        let c = FccGen.generate(6, 5, &GenOptions::default());
        let d = &c.documents[0];
        let has_numbered = d.tokens.iter().any(|t| {
            t.text.ends_with('.')
                && t.text.len() <= 3
                && t.text
                    .trim_end_matches('.')
                    .chars()
                    .all(|c| c.is_ascii_digit())
        });
        assert!(has_numbered, "expected numbered form items");
    }

    #[test]
    fn all_fields_have_phrases() {
        // FCC forms label everything; no phrase-less fields here.
        assert!(SPECS.iter().all(|f| !f.phrases.is_empty()));
    }
}
