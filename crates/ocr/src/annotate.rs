//! Base-type candidate annotators.
//!
//! The candidate-based importance model (paper Fig. 2) starts from *base
//! type candidates* extracted "using common off-the-shelf annotators like
//! date and number annotators". This module implements those annotators as
//! rule-based recognizers over token text: a candidate is a token span whose
//! surface form looks like a value of one of the five base types.

use fieldswap_docmodel::{BaseType, Document};

/// A base-type candidate: a token span that looks like a value of
/// `base_type`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// First token (inclusive).
    pub start: u32,
    /// One-past-last token (exclusive).
    pub end: u32,
    /// The base type the annotator matched.
    pub base_type: BaseType,
}

const MONTHS: [&str; 24] = [
    "jan",
    "feb",
    "mar",
    "apr",
    "may",
    "jun",
    "jul",
    "aug",
    "sep",
    "oct",
    "nov",
    "dec",
    "january",
    "february",
    "march",
    "april",
    "mayy",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

fn looks_like_money(text: &str) -> bool {
    let t = text.trim_start_matches('(').trim_end_matches(')');
    let t = t.strip_prefix('-').unwrap_or(t);
    let Some(rest) = t.strip_prefix('$') else {
        // Also accept "1,234.56" with exactly two decimals (common on
        // statements without currency symbols).
        return has_two_decimals(t);
    };
    !rest.is_empty()
        && rest
            .chars()
            .all(|c| c.is_ascii_digit() || c == ',' || c == '.')
}

fn has_two_decimals(t: &str) -> bool {
    let Some((int, frac)) = t.rsplit_once('.') else {
        return false;
    };
    frac.len() == 2
        && frac.chars().all(|c| c.is_ascii_digit())
        && !int.is_empty()
        && int.chars().all(|c| c.is_ascii_digit() || c == ',')
}

fn looks_like_date_token(text: &str) -> bool {
    let t = text.trim_end_matches(',');
    // 01/31/2024 or 2024-01-31
    for sep in ['/', '-'] {
        let parts: Vec<&str> = t.split(sep).collect();
        if parts.len() == 3
            && parts
                .iter()
                .all(|p| !p.is_empty() && p.len() <= 4 && p.chars().all(|c| c.is_ascii_digit()))
        {
            return true;
        }
    }
    false
}

fn is_month_word(text: &str) -> bool {
    MONTHS.contains(&text.trim_end_matches(',').to_lowercase().as_str())
}

fn looks_like_plain_number(text: &str) -> bool {
    let t = text.trim_end_matches('%');
    !t.is_empty()
        && t.chars()
            .all(|c| c.is_ascii_digit() || c == ',' || c == '.' || c == '#')
        && t.chars().any(|c| c.is_ascii_digit())
        && !looks_like_money(text)
        && !looks_like_date_token(text)
}

fn looks_like_zip(text: &str) -> bool {
    let t = text.trim();
    (t.len() == 5 && t.chars().all(|c| c.is_ascii_digit()))
        || (t.len() == 10
            && t[..5].chars().all(|c| c.is_ascii_digit())
            && &t[5..6] == "-"
            && t[6..].chars().all(|c| c.is_ascii_digit()))
}

const STATE_CODES: [&str; 12] = [
    "CA", "NY", "TX", "WA", "IL", "MA", "FL", "GA", "OH", "PA", "NC", "MI",
];

/// Whether the single token at `text` could be a value of `ty`. Multi-token
/// candidate grouping is handled by [`annotate_candidates`].
pub fn candidate_matches_type(text: &str, ty: BaseType) -> bool {
    match ty {
        BaseType::Money => looks_like_money(text),
        BaseType::Date => looks_like_date_token(text) || is_month_word(text),
        BaseType::Number => looks_like_plain_number(text),
        BaseType::Address => {
            looks_like_zip(text) || STATE_CODES.contains(&text.trim_end_matches(','))
        }
        // Any non-numeric word can start a string candidate.
        BaseType::String => {
            !text.is_empty() && !looks_like_money(text) && !looks_like_date_token(text)
        }
    }
}

/// Runs all annotators over the document and returns candidates, each a
/// token span with a base type.
///
/// Matching is intentionally *high-recall / modest-precision*, like real
/// off-the-shelf annotators: money and number candidates are single tokens;
/// date candidates absorb `Month DD, YYYY` triples; address candidates grow
/// from a state-code or ZIP anchor to cover the enclosing line tail. String
/// candidates are only produced from ground-truth spans (the importance
/// model only ever scores positive candidates for strings — every word
/// would otherwise be a candidate).
pub fn annotate_candidates(doc: &Document) -> Vec<Candidate> {
    let mut out = Vec::new();
    let n = doc.tokens.len() as u32;
    let mut i = 0u32;
    while i < n {
        let text = doc.tokens[i as usize].text.as_str();
        if looks_like_money(text) {
            out.push(Candidate {
                start: i,
                end: i + 1,
                base_type: BaseType::Money,
            });
            i += 1;
            continue;
        }
        if is_month_word(text) {
            // Month DD[,] YYYY
            let mut end = i + 1;
            if end < n
                && doc.tokens[end as usize]
                    .text
                    .trim_end_matches(',')
                    .chars()
                    .all(|c| c.is_ascii_digit())
            {
                end += 1;
                if end < n
                    && doc.tokens[end as usize].text.len() == 4
                    && doc.tokens[end as usize]
                        .text
                        .chars()
                        .all(|c| c.is_ascii_digit())
                {
                    end += 1;
                }
            }
            out.push(Candidate {
                start: i,
                end,
                base_type: BaseType::Date,
            });
            i = end;
            continue;
        }
        if looks_like_date_token(text) {
            out.push(Candidate {
                start: i,
                end: i + 1,
                base_type: BaseType::Date,
            });
            i += 1;
            continue;
        }
        if looks_like_zip(text) || STATE_CODES.contains(&text.trim_end_matches(',')) {
            out.push(Candidate {
                start: i,
                end: i + 1,
                base_type: BaseType::Address,
            });
            i += 1;
            continue;
        }
        if looks_like_plain_number(text) {
            out.push(Candidate {
                start: i,
                end: i + 1,
                base_type: BaseType::Number,
            });
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_docmodel::{BBox, DocumentBuilder, Token};

    fn doc(words: &[&str]) -> Document {
        let mut b = DocumentBuilder::new("t");
        for (i, w) in words.iter().enumerate() {
            b.push_token(Token::new(
                *w,
                BBox::new(30.0 * i as f32, 0.0, 30.0 * i as f32 + 25.0, 12.0),
            ));
        }
        b.build()
    }

    #[test]
    fn money_recognition() {
        assert!(looks_like_money("$3,308.62"));
        assert!(looks_like_money("$5"));
        assert!(looks_like_money("(1,200.00)"));
        assert!(looks_like_money("-$42.10"));
        assert!(looks_like_money("1,234.56"));
        assert!(!looks_like_money("1234")); // no decimals, no $
        assert!(!looks_like_money("Amount"));
        assert!(!looks_like_money("$"));
    }

    #[test]
    fn date_recognition() {
        assert!(looks_like_date_token("01/31/2024"));
        assert!(looks_like_date_token("2024-01-31"));
        assert!(looks_like_date_token("1/1/24"));
        assert!(!looks_like_date_token("31/2024"));
        assert!(!looks_like_date_token("a/b/c"));
        assert!(is_month_word("January"));
        assert!(is_month_word("mar"));
        assert!(!is_month_word("Juneau"));
    }

    #[test]
    fn number_and_zip() {
        assert!(looks_like_plain_number("42"));
        assert!(looks_like_plain_number("1,024"));
        assert!(looks_like_plain_number("99.5%"));
        assert!(!looks_like_plain_number("$5"));
        assert!(looks_like_zip("94043"));
        assert!(looks_like_zip("94043-1351"));
        assert!(!looks_like_zip("9404"));
        assert!(!looks_like_zip("94043-135"));
    }

    #[test]
    fn annotate_money_span() {
        let d = doc(&["Total", "Due", "$1,250.00"]);
        let c = annotate_candidates(&d);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].base_type, BaseType::Money);
        assert_eq!((c[0].start, c[0].end), (2, 3));
    }

    #[test]
    fn annotate_textual_date_absorbs_three_tokens() {
        let d = doc(&["Paid", "January", "31,", "2024", "thanks"]);
        let c = annotate_candidates(&d);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].base_type, BaseType::Date);
        assert_eq!((c[0].start, c[0].end), (1, 4));
    }

    #[test]
    fn annotate_slash_date_single_token() {
        let d = doc(&["Due", "02/28/2024"]);
        let c = annotate_candidates(&d);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].base_type, BaseType::Date);
    }

    #[test]
    fn annotate_address_anchor() {
        let d = doc(&["Mountain", "View,", "CA", "94043"]);
        let c = annotate_candidates(&d);
        let types: Vec<BaseType> = c.iter().map(|c| c.base_type).collect();
        assert!(types.contains(&BaseType::Address));
        assert_eq!(
            c.iter()
                .filter(|c| c.base_type == BaseType::Address)
                .count(),
            2
        );
    }

    #[test]
    fn annotate_empty_doc() {
        let d = doc(&[]);
        assert!(annotate_candidates(&d).is_empty());
    }

    #[test]
    fn candidate_matches_type_dispatch() {
        assert!(candidate_matches_type("$9.99", BaseType::Money));
        assert!(candidate_matches_type("03/04/2025", BaseType::Date));
        assert!(candidate_matches_type("12345", BaseType::Address)); // zip
        assert!(candidate_matches_type("777", BaseType::Number));
        assert!(candidate_matches_type("Acme", BaseType::String));
        assert!(!candidate_matches_type("$9.99", BaseType::String));
    }

    #[test]
    fn plain_words_produce_no_candidates() {
        let d = doc(&["Employee", "Name", "Pay", "Period"]);
        assert!(annotate_candidates(&d).is_empty());
    }
}
