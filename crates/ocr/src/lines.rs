//! Line detection: grouping tokens that share a y-axis and splitting groups
//! across long horizontal whitespace stretches.
//!
//! The paper (Section II-A1) describes lines as "groups of tokens on the
//! same y-axis that are typically separate from other lines by way of visual
//! features ... or long horizontal stretches of whitespace". We reproduce
//! this with a two-stage geometric clustering:
//!
//! 1. **Row grouping** — tokens are sorted by y-center; a token joins the
//!    current row while its vertical IoU with the row's *seed token* (the
//!    token that opened the row) exceeds `min_y_iou`. Comparing against a
//!    fixed band rather than the row's ever-growing union box keeps a
//!    staircase of slightly-jittered tokens from chaining visually
//!    distinct rows into one line.
//! 2. **Gap splitting** — each row is sorted by x and split wherever the
//!    horizontal gap between consecutive tokens exceeds
//!    `max_gap_ratio * median_token_height` (whitespace wide relative to the
//!    text size signals a column boundary).

use fieldswap_docmodel::{BBox, Document, Line};

/// Configurable geometric line detector.
#[derive(Debug, Clone, Copy)]
pub struct LineDetector {
    /// Minimum vertical IoU for a token to join the current row.
    pub min_y_iou: f32,
    /// A horizontal gap wider than this multiple of the median token height
    /// splits the row into separate lines.
    pub max_gap_ratio: f32,
}

impl Default for LineDetector {
    fn default() -> Self {
        Self {
            min_y_iou: 0.4,
            max_gap_ratio: 3.0,
        }
    }
}

impl LineDetector {
    /// Detects lines over the document's tokens. Every token is assigned to
    /// exactly one line; lines are ordered top-to-bottom, then left-to-right.
    pub fn detect(&self, doc: &Document) -> Vec<Line> {
        if doc.tokens.is_empty() {
            return Vec::new();
        }
        let median_h = median_height(doc);
        // Sort token ids by y-center, then x.
        let mut ids: Vec<u32> = (0..doc.tokens.len() as u32).collect();
        ids.sort_by(|&a, &b| {
            let ta = &doc.tokens[a as usize].bbox;
            let tb = &doc.tokens[b as usize].bbox;
            ta.center()
                .y
                .total_cmp(&tb.center().y)
                .then(ta.x0.total_cmp(&tb.x0))
        });

        // Stage 1: rows by vertical IoU with the row's seed-token band.
        // The seed band is fixed when the row opens; testing against it
        // (instead of the running union box) means every member of a row
        // overlaps the same reference band, so jittered tokens can't
        // drift the row boundary downward one step at a time.
        let mut rows: Vec<(Vec<u32>, BBox)> = Vec::new();
        for id in ids {
            let tb = doc.tokens[id as usize].bbox;
            match rows.last_mut() {
                Some((row, seed_band)) if seed_band.y_iou(&tb) >= self.min_y_iou => {
                    row.push(id);
                }
                _ => rows.push((vec![id], tb)),
            }
        }

        // Stage 2: split each row on wide horizontal gaps.
        let gap_limit = self.max_gap_ratio * median_h;
        let mut lines = Vec::new();
        for (mut row, _) in rows {
            row.sort_by(|&a, &b| {
                doc.tokens[a as usize]
                    .bbox
                    .x0
                    .total_cmp(&doc.tokens[b as usize].bbox.x0)
            });
            let mut current: Vec<u32> = Vec::new();
            let mut current_box = BBox::default();
            for id in row {
                let tb = doc.tokens[id as usize].bbox;
                if current.is_empty() {
                    current.push(id);
                    current_box = tb;
                } else if current_box.x_gap(&tb) > gap_limit {
                    lines.push(Line::new(std::mem::take(&mut current), current_box));
                    current.push(id);
                    current_box = tb;
                } else {
                    current.push(id);
                    current_box = current_box.union(&tb);
                }
            }
            if !current.is_empty() {
                lines.push(Line::new(current, current_box));
            }
        }
        lines
    }
}

/// Detects lines with the default detector and stores them on the document.
pub fn detect_lines(doc: &mut Document) {
    doc.lines = LineDetector::default().detect(doc);
}

fn median_height(doc: &Document) -> f32 {
    let mut hs: Vec<f32> = doc.tokens.iter().map(|t| t.bbox.height()).collect();
    hs.sort_by(f32::total_cmp);
    let h = hs[hs.len() / 2];
    if h <= 0.0 {
        1.0
    } else {
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_docmodel::{DocumentBuilder, Token};
    use proptest::prelude::*;

    fn tok(text: &str, x: f32, y: f32) -> Token {
        Token::new(text, BBox::new(x, y, x + 8.0 * text.len() as f32, y + 12.0))
    }

    fn doc(tokens: Vec<Token>) -> Document {
        let mut b = DocumentBuilder::new("t");
        for t in tokens {
            b.push_token(t);
        }
        b.build()
    }

    #[test]
    fn empty_document_no_lines() {
        let d = doc(vec![]);
        assert!(LineDetector::default().detect(&d).is_empty());
    }

    #[test]
    fn tokens_on_same_row_group() {
        let d = doc(vec![tok("Base", 10.0, 10.0), tok("Salary", 50.0, 10.0)]);
        let lines = LineDetector::default().detect(&d);
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].tokens, vec![0, 1]);
    }

    #[test]
    fn vertical_separation_splits_rows() {
        let d = doc(vec![tok("Top", 10.0, 10.0), tok("Bottom", 10.0, 60.0)]);
        let lines = LineDetector::default().detect(&d);
        assert_eq!(lines.len(), 2);
    }

    #[test]
    fn wide_gap_splits_line() {
        // 12-high tokens, gap_limit = 36. Gap here is ~400.
        let d = doc(vec![tok("Label", 10.0, 10.0), tok("Value", 500.0, 10.0)]);
        let lines = LineDetector::default().detect(&d);
        assert_eq!(lines.len(), 2, "column gap should split the row");
    }

    #[test]
    fn narrow_gap_keeps_line() {
        let d = doc(vec![tok("Amount", 10.0, 10.0), tok("Due", 70.0, 10.0)]);
        let lines = LineDetector::default().detect(&d);
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn slight_y_jitter_still_groups() {
        // 3 units of jitter on 12-high tokens: IoU = 9/15 = 0.6 >= 0.4.
        let d = doc(vec![tok("a", 10.0, 10.0), tok("b", 25.0, 13.0)]);
        let lines = LineDetector::default().detect(&d);
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn every_token_in_exactly_one_line() {
        let mut toks = Vec::new();
        for r in 0..5 {
            for c in 0..4 {
                toks.push(tok("w", 10.0 + 60.0 * c as f32, 10.0 + 30.0 * r as f32));
            }
        }
        let d = doc(toks);
        let lines = LineDetector::default().detect(&d);
        let mut seen = vec![0usize; d.len()];
        for l in &lines {
            for &t in &l.tokens {
                seen[t as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn lines_ordered_top_to_bottom() {
        let d = doc(vec![
            tok("row2", 10.0, 50.0),
            tok("row1", 10.0, 10.0),
            tok("row3", 10.0, 90.0),
        ]);
        let lines = LineDetector::default().detect(&d);
        let ys: Vec<f32> = lines.iter().map(|l| l.bbox.y0).collect();
        let mut sorted = ys.clone();
        sorted.sort_by(f32::total_cmp);
        assert_eq!(ys, sorted);
    }

    #[test]
    fn detect_lines_helper_populates_document() {
        let mut d = doc(vec![tok("a", 0.0, 0.0), tok("b", 20.0, 0.0)]);
        detect_lines(&mut d);
        assert_eq!(d.lines.len(), 1);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn tokens_within_line_sorted_by_x() {
        let d = doc(vec![tok("right", 60.0, 10.0), tok("left", 10.0, 10.0)]);
        let lines = LineDetector::default().detect(&d);
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].tokens, vec![1, 0]);
    }

    #[test]
    fn staircase_does_not_chain_distinct_rows() {
        // Five 12-high tokens stepping down 3px each. Adjacent pairs
        // overlap well (IoU 0.6), but token 4 (y 22..34) barely touches
        // token 0 (y 10..22) — these are visually distinct rows. Under
        // the old running-union test each step kept IoU >= 0.4 against
        // the grown box and the whole staircase fused into ONE line;
        // the seed-band test re-seeds a row as soon as the drift leaves
        // the opening token's band.
        let d = doc(vec![
            tok("s0", 10.0, 10.0),
            tok("s1", 40.0, 13.0),
            tok("s2", 70.0, 16.0),
            tok("s3", 100.0, 19.0),
            tok("s4", 130.0, 22.0),
        ]);
        let lines = LineDetector::default().detect(&d);
        assert!(
            lines.len() >= 2,
            "staircase chained into {} line(s)",
            lines.len()
        );
        // Members of one line all overlap that line's topmost token.
        for l in &lines {
            let seed = d.tokens[l.tokens[0] as usize].bbox;
            for &t in &l.tokens {
                assert!(
                    seed.y_iou(&d.tokens[t as usize].bbox) > 0.0,
                    "line member does not overlap its seed band"
                );
            }
        }
    }

    #[test]
    fn far_apart_rows_still_split_with_seed_band() {
        // Sanity: clearly separate rows remain separate and clearly
        // aligned rows remain whole after the seed-band change.
        let d = doc(vec![
            tok("a", 10.0, 10.0),
            tok("b", 40.0, 11.0),
            tok("c", 70.0, 9.5),
            tok("d", 10.0, 40.0),
            tok("e", 40.0, 40.5),
        ]);
        let lines = LineDetector::default().detect(&d);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].tokens.len(), 3);
        assert_eq!(lines[1].tokens.len(), 2);
    }

    /// Canonical shape of a detection result: each line as the sorted
    /// list of its tokens' (x0, y0) corners, lines sorted — comparable
    /// across documents whose tokens were inserted in different orders.
    fn shape(doc: &Document, lines: &[Line]) -> Vec<Vec<(i64, i64)>> {
        let mut out: Vec<Vec<(i64, i64)>> = lines
            .iter()
            .map(|l| {
                let mut pts: Vec<(i64, i64)> = l
                    .tokens
                    .iter()
                    .map(|&t| {
                        let b = doc.tokens[t as usize].bbox;
                        (b.x0 as i64, b.y0 as i64)
                    })
                    .collect();
                pts.sort_unstable();
                pts
            })
            .collect();
        out.sort_unstable();
        out
    }

    proptest! {
        /// Detection must not depend on token *input order*: the sort at
        /// the top of `detect` canonicalizes by geometry, so any
        /// permutation of the same boxes yields the same lines.
        #[test]
        fn prop_detection_invariant_to_token_order(
            cells in proptest::collection::vec((0u32..8, 0u32..6), 1..12),
            rot in 0usize..12,
        ) {
            // Distinct grid positions so no two tokens tie exactly.
            let mut cells = cells;
            cells.sort_unstable();
            cells.dedup();
            let toks: Vec<Token> = cells
                .iter()
                .map(|&(cx, cy)| tok("w", 10.0 + 70.0 * cx as f32, 10.0 + 17.0 * cy as f32))
                .collect();
            let mut rotated = toks.clone();
            rotated.rotate_left(rot % toks.len().max(1));
            rotated.reverse();

            let d1 = doc(toks);
            let d2 = doc(rotated);
            let det = LineDetector::default();
            let s1 = shape(&d1, &det.detect(&d1));
            let s2 = shape(&d2, &det.detect(&d2));
            prop_assert_eq!(s1, s2);
        }

        /// Detection must never panic, and must still assign every token to
        /// exactly one line, on arbitrarily degenerate geometry: zero-area
        /// boxes, inverted extents, NaN/infinite coordinates, duplicate
        /// tokens, empty texts. Such documents bypass `DocumentBuilder`
        /// (deserialization, attack transforms), so the detector cannot
        /// assume `validate()` holds.
        #[test]
        fn prop_detect_never_panics_on_degenerate_documents(
            raw in proptest::collection::vec(
                (-1e3f32..1e3, -1e3f32..1e3, 0u8..5, 0u8..3), 0..16),
        ) {
            let toks: Vec<Token> = raw
                .iter()
                .map(|&(x, y, special, tsel)| {
                    let (x1, y1) = match special {
                        0 => (x + 20.0, y + 12.0), // ordinary box
                        1 => (x, y),               // zero-area
                        2 => (f32::NAN, y + 12.0), // NaN corner
                        3 => (x - 50.0, y - 5.0),  // inverted extents
                        _ => (f32::INFINITY, f32::NEG_INFINITY),
                    };
                    let text = match tsel {
                        0 => "w",
                        1 => "",
                        _ => "dup",
                    };
                    Token {
                        text: text.to_string(),
                        bbox: BBox { x0: x, y0: y, x1, y1 },
                    }
                })
                .collect();
            let mut d = Document {
                id: "degen".into(),
                tokens: toks,
                lines: Vec::new(),
                annotations: Vec::new(),
            };
            detect_lines(&mut d);
            let mut seen = vec![0usize; d.tokens.len()];
            for l in &d.lines {
                for &t in &l.tokens {
                    seen[t as usize] += 1;
                }
            }
            prop_assert!(seen.iter().all(|&c| c == 1));
        }
    }
}
