//! OCR noise injection.
//!
//! The paper notes (Section II-A1) that OCR accuracy directly affects
//! inferred key-phrase quality but that modern engines are robust; the
//! aggregation step (Eq. 1) is designed to tolerate occasional errors. To
//! exercise that robustness path we provide a character-level noise model
//! that corrupts token text with configurable probabilities: character
//! substitution with visually confusable glyphs, deletion, and token-level
//! case flips.

use fieldswap_docmodel::Document;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-event probabilities for the noise model. All default to 0 (a perfect
/// OCR engine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseParams {
    /// Probability that a given token is corrupted at all.
    pub token_error_rate: f64,
    /// Within a corrupted token, per-character substitution probability.
    pub char_sub_rate: f64,
    /// Within a corrupted token, per-character deletion probability.
    pub char_del_rate: f64,
    /// Within a corrupted token, probability that the whole token's case
    /// is flipped (upper ↔ lower, per character). At the default of 0.0
    /// no RNG draw is spent on the decision, so noise streams produced by
    /// pre-existing profiles and seeds are byte-identical to before the
    /// field existed.
    pub case_flip_rate: f64,
}

impl Default for NoiseParams {
    fn default() -> Self {
        Self {
            token_error_rate: 0.0,
            char_sub_rate: 0.0,
            char_del_rate: 0.0,
            case_flip_rate: 0.0,
        }
    }
}

impl NoiseParams {
    /// A mild profile resembling a good production engine (~1% token error).
    pub fn mild() -> Self {
        Self {
            token_error_rate: 0.01,
            char_sub_rate: 0.3,
            char_del_rate: 0.05,
            case_flip_rate: 0.0,
        }
    }

    /// A harsh profile for robustness testing (~10% token error).
    pub fn harsh() -> Self {
        Self {
            token_error_rate: 0.10,
            char_sub_rate: 0.5,
            char_del_rate: 0.15,
            case_flip_rate: 0.0,
        }
    }

    /// All rates clamped into `[0, 1]`, with non-finite values treated as
    /// 0. Callers that *scale* a profile (the form-attack transforms
    /// multiply rates by an attack strength) use this to keep every rate a
    /// valid probability.
    pub fn clamped(self) -> Self {
        let c = |v: f64| {
            if v.is_finite() {
                v.clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        Self {
            token_error_rate: c(self.token_error_rate),
            char_sub_rate: c(self.char_sub_rate),
            char_del_rate: c(self.char_del_rate),
            case_flip_rate: c(self.case_flip_rate),
        }
    }
}

/// Deterministic, seedable OCR noise model.
#[derive(Debug)]
pub struct NoiseModel {
    params: NoiseParams,
    rng: StdRng,
}

/// Toggles the case of one character, the token-level OCR "case flip"
/// error mode (e.g. a lowercase scan read as small caps). ASCII-only:
/// keeps the character count stable, which is all the generated corpora
/// contain.
fn toggle_case(c: char) -> char {
    if c.is_ascii_lowercase() {
        c.to_ascii_uppercase()
    } else {
        c.to_ascii_lowercase()
    }
}

/// Visually confusable character pairs used for substitutions.
const CONFUSIONS: [(char, char); 10] = [
    ('0', 'O'),
    ('O', '0'),
    ('1', 'l'),
    ('l', '1'),
    ('5', 'S'),
    ('S', '5'),
    ('8', 'B'),
    ('B', '8'),
    ('m', 'n'),
    ('e', 'c'),
];

impl NoiseModel {
    /// Creates a model with the given parameters and seed.
    pub fn new(params: NoiseParams, seed: u64) -> Self {
        Self {
            params,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Corrupts a single token's text in place according to the parameters.
    /// Tokens are never emptied completely — OCR emits *something* for each
    /// detected element.
    pub fn corrupt_text(&mut self, text: &str) -> String {
        if text.is_empty() || !self.rng.gen_bool(self.params.token_error_rate) {
            return text.to_string();
        }
        // The `> 0.0` guard is load-bearing: `gen_bool` always consumes a
        // draw, so an unguarded call would shift every subsequent decision
        // and silently change all pre-existing seeded noise streams.
        let flip_case =
            self.params.case_flip_rate > 0.0 && self.rng.gen_bool(self.params.case_flip_rate);
        let mut out = String::with_capacity(text.len());
        for c in text.chars() {
            if self.rng.gen_bool(self.params.char_del_rate) {
                continue;
            }
            if self.rng.gen_bool(self.params.char_sub_rate) {
                if let Some(&(_, to)) = CONFUSIONS.iter().find(|(from, _)| *from == c) {
                    out.push(to);
                    continue;
                }
            }
            out.push(c);
        }
        if out.is_empty() {
            // Deletion wiped the token; keep the first character. (The
            // early return above guarantees `text` is non-empty, but fall
            // back to a placeholder rather than unwrap on that invariant.)
            out.push(text.chars().next().unwrap_or('?'));
        }
        if flip_case {
            out = out.chars().map(toggle_case).collect();
        }
        out
    }

    /// Applies noise to every token of the document, preserving geometry and
    /// annotations (OCR errors garble text, not layout).
    pub fn apply(&mut self, doc: &mut Document) {
        for t in &mut doc.tokens {
            t.text = self.corrupt_text(&t.text);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fieldswap_docmodel::{BBox, DocumentBuilder, Token};

    fn doc(words: &[&str]) -> Document {
        let mut b = DocumentBuilder::new("t");
        for (i, w) in words.iter().enumerate() {
            b.push_token(Token::new(*w, BBox::new(20.0 * i as f32, 0.0, 15.0, 10.0)));
        }
        b.build()
    }

    #[test]
    fn zero_noise_is_identity() {
        let mut m = NoiseModel::new(NoiseParams::default(), 7);
        let mut d = doc(&["Base", "Salary", "$3,308.62"]);
        let before = d.clone();
        m.apply(&mut d);
        assert_eq!(d, before);
    }

    #[test]
    fn full_noise_changes_some_tokens() {
        let params = NoiseParams {
            token_error_rate: 1.0,
            char_sub_rate: 1.0,
            char_del_rate: 0.0,
            ..NoiseParams::default()
        };
        let mut m = NoiseModel::new(params, 7);
        // Every confusable char must flip.
        assert_eq!(m.corrupt_text("0"), "O");
        assert_eq!(m.corrupt_text("15"), "lS");
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut m = NoiseModel::new(NoiseParams::harsh(), 42);
            let mut d = doc(&["Overtime", "Pay", "Rate", "Hours", "Earnings"]);
            m.apply(&mut d);
            d
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn tokens_never_emptied() {
        let params = NoiseParams {
            token_error_rate: 1.0,
            char_sub_rate: 0.0,
            char_del_rate: 1.0,
            ..NoiseParams::default()
        };
        let mut m = NoiseModel::new(params, 3);
        let out = m.corrupt_text("abc");
        assert!(!out.is_empty());
    }

    #[test]
    fn geometry_and_labels_untouched() {
        let mut m = NoiseModel::new(NoiseParams::harsh(), 9);
        let mut d = doc(&["Net", "Pay", "$512.00"]);
        d.annotations = vec![fieldswap_docmodel::EntitySpan::new(0, 2, 3)];
        let boxes: Vec<BBox> = d.tokens.iter().map(|t| t.bbox).collect();
        let anns = d.annotations.clone();
        m.apply(&mut d);
        assert_eq!(d.tokens.iter().map(|t| t.bbox).collect::<Vec<_>>(), boxes);
        assert_eq!(d.annotations, anns);
    }

    #[test]
    fn case_flip_flips_whole_token() {
        let params = NoiseParams {
            token_error_rate: 1.0,
            char_sub_rate: 0.0,
            char_del_rate: 0.0,
            case_flip_rate: 1.0,
        };
        let mut m = NoiseModel::new(params, 5);
        assert_eq!(m.corrupt_text("Base"), "bASE");
        assert_eq!(m.corrupt_text("salary"), "SALARY");
        assert_eq!(m.corrupt_text("$3.50"), "$3.50");
    }

    #[test]
    fn case_flip_composes_with_substitution() {
        // Substitution runs first (l -> 1 has no case), then the flip
        // applies to the substituted output.
        let params = NoiseParams {
            token_error_rate: 1.0,
            char_sub_rate: 1.0,
            char_del_rate: 0.0,
            case_flip_rate: 1.0,
        };
        let mut m = NoiseModel::new(params, 5);
        // '0' -> 'O' by confusion, then flipped to 'o'.
        assert_eq!(m.corrupt_text("0"), "o");
    }

    #[test]
    fn zero_case_flip_rate_preserves_pre_existing_streams() {
        // Golden outputs captured from the model *before* the
        // `case_flip_rate` field existed (same params, same seed, same
        // call sequence). A rate of 0.0 must not consume an RNG draw, or
        // every seeded corpus in the workspace silently changes.
        let mut m = NoiseModel::new(
            NoiseParams {
                token_error_rate: 1.0,
                char_sub_rate: 0.5,
                char_del_rate: 0.2,
                case_flip_rate: 0.0,
            },
            7,
        );
        assert_eq!(m.corrupt_text("Base"), "asc");
        assert_eq!(m.corrupt_text("Salary"), "ar");
        assert_eq!(m.corrupt_text("$3,308.62"), "3,362");
        assert_eq!(m.corrupt_text("O0l15S8B"), "0Ol1S5B");
    }

    #[test]
    fn harsh_profile_stream_unchanged_by_new_field() {
        // Same golden-pin idea for a stock profile: harsh()/seed 42's
        // first divergent corruptions, captured before the field existed.
        let mut m = NoiseModel::new(NoiseParams::harsh(), 42);
        let mut diverged = Vec::new();
        for w in ["Overtime", "Pay", "Rate", "Hours"] {
            for _ in 0..40 {
                let out = m.corrupt_text(w);
                if out != w {
                    diverged.push(out);
                }
            }
        }
        assert_eq!(
            &diverged[..4],
            &["Ovcrtime", "Overtine", "Overtm", "Ovcrtim"]
        );
    }

    #[test]
    fn clamped_bounds_rates() {
        let p = NoiseParams {
            token_error_rate: 2.5,
            char_sub_rate: -0.3,
            char_del_rate: f64::NAN,
            case_flip_rate: 0.4,
        }
        .clamped();
        assert_eq!(p.token_error_rate, 1.0);
        assert_eq!(p.char_sub_rate, 0.0);
        assert_eq!(p.char_del_rate, 0.0);
        assert_eq!(p.case_flip_rate, 0.4);
    }

    #[test]
    fn harsh_noise_corrupts_across_corpus() {
        let mut m = NoiseModel::new(NoiseParams::harsh(), 11);
        let words = ["Balance", "Overtime", "Salary", "Total", "100.00"];
        let mut changed = 0;
        for _ in 0..200 {
            for w in words {
                if m.corrupt_text(w) != w {
                    changed += 1;
                }
            }
        }
        assert!(
            changed > 20,
            "harsh profile should corrupt ~10% of tokens, got {changed}/1000"
        );
    }
}
