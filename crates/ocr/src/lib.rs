#![warn(missing_docs)]

//! # fieldswap-ocr
//!
//! A simulated OCR service, standing in for the production OCR engine
//! (Google Cloud Vision) the paper relies on (Section II-A1).
//!
//! The paper uses the OCR service for two things, both reproduced here:
//!
//! 1. **Token detection with bounding boxes** — in this reproduction the
//!    corpus generators *render* documents directly into positioned tokens,
//!    so detection is a given; what this crate adds is configurable
//!    character-level OCR **noise injection** ([`noise`]) so downstream code
//!    is exercised against recognition errors.
//! 2. **Line detection** — grouping tokens that sit on the same y-axis and
//!    splitting groups across long horizontal whitespace gaps ([`lines`]).
//!
//! The crate also hosts the **base-type candidate annotators** ([`annotate`])
//! — the "common off-the-shelf date and number annotators" that feed the
//! candidate-based importance model of Fig. 2.

pub mod annotate;
pub mod lines;
pub mod noise;

pub use annotate::{annotate_candidates, candidate_matches_type, Candidate};
pub use lines::{detect_lines, LineDetector};
pub use noise::{NoiseModel, NoiseParams};
