//! # fieldswap-integration
//!
//! This crate exists only to host the workspace-level integration tests
//! (`tests/` at the repository root) and the runnable examples
//! (`examples/` at the repository root). It re-exports nothing; each test
//! and example depends on the workspace crates directly.
