//! Concurrency contract between `fieldswap-parallel` and
//! `fieldswap-obs`: spans and counters emitted from worker threads must
//! interleave without loss or panic, with exact counter totals and
//! well-nested per-thread span trees.
//!
//! Uses the *global* collector (like the real bins do), so this lives
//! in its own integration-test binary where enabling it is harmless.

use fieldswap_obs::{Event, SpanRecord};
use fieldswap_parallel::{par_try_map_indexed, WorkerPool};
use std::collections::BTreeMap;

const JOBS: usize = 8;
const CELLS: usize = 200;
const POOL_BATCHES: usize = 50;
const POOL_ITEMS: usize = 16;

fn span_records(events: &[Event]) -> Vec<SpanRecord> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::Span(r) => Some(r.clone()),
            _ => None,
        })
        .collect()
}

/// For each thread, every span's interval must be either disjoint from
/// or fully nested inside every other span's interval on that thread —
/// the RAII guards guarantee it, and a violation means the thread-local
/// stacks got crossed.
fn assert_well_nested(records: &[SpanRecord]) {
    let mut by_thread: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for r in records {
        by_thread.entry(r.thread).or_default().push(r);
    }
    for (thread, spans) in by_thread {
        for a in &spans {
            for b in &spans {
                let (a0, a1) = (a.start_us, a.start_us + a.dur_us);
                let (b0, b1) = (b.start_us, b.start_us + b.dur_us);
                let disjoint = a1 <= b0 || b1 <= a0;
                let nested = (a0 <= b0 && b1 <= a1) || (b0 <= a0 && a1 <= b1);
                assert!(
                    disjoint || nested,
                    "thread {thread}: overlapping spans {a:?} vs {b:?}"
                );
            }
        }
    }
}

#[test]
fn worker_spans_and_counters_are_lossless_at_jobs_8() {
    fieldswap_obs::enable_tracing();
    fieldswap_obs::enable_metrics();
    let collector = fieldswap_obs::global();
    let before = collector.events_len();

    // Phase 1: hammer the scoped grid pool. Each cell opens a parent
    // span with a nested child, and bumps the shared counter.
    let results = par_try_map_indexed(CELLS, JOBS, |i| {
        let _cell = fieldswap_obs::span_tagged("conc_cell", || vec![("i", i.to_string())]);
        {
            let _inner = fieldswap_obs::span("conc_step");
            fieldswap_obs::counter_add("conc_cells_total", 1);
            fieldswap_obs::observe("conc_cell_units", (i % 10) as f64);
        }
        i * 3
    });
    assert_eq!(results.len(), CELLS);
    for (i, r) in results.into_iter().enumerate() {
        assert_eq!(r.expect("no slot panicked"), i * 3);
    }

    // Phase 2: hammer the persistent pool with many small broadcasts
    // (the training-loop shape). Worker 0 is the caller's thread.
    let pool = WorkerPool::new(JOBS);
    assert!(pool.jobs() > 1, "effective_jobs must honor an explicit 8");
    for batch in 0..POOL_BATCHES {
        let slots: Vec<std::sync::Mutex<Option<usize>>> = (0..POOL_ITEMS)
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        pool.fill_slots(&slots, |_worker, item| {
            let _span = fieldswap_obs::span("conc_pool_item");
            fieldswap_obs::counter_add("conc_pool_items_total", 1);
            batch + item
        });
        for (item, slot) in slots.into_iter().enumerate() {
            assert_eq!(slot.into_inner().unwrap(), Some(batch + item));
        }
    }
    drop(pool);

    // Exact counter totals: no increment lost to interleaving.
    let prom = collector.render_prometheus();
    assert!(
        prom.contains(&format!("conc_cells_total {CELLS}")),
        "{prom}"
    );
    assert!(
        prom.contains(&format!(
            "conc_pool_items_total {}",
            POOL_BATCHES * POOL_ITEMS
        )),
        "{prom}"
    );
    let hist = collector.registry().histogram("conc_cell_units");
    assert_eq!(hist.count(), CELLS as u64);

    // Exact span counts: one parent + one child per cell, one span per
    // pool item, none dropped.
    let records = span_records(&collector.events()[before..]);
    let count = |path: &str| records.iter().filter(|r| r.path == path).count();
    assert_eq!(count("conc_cell"), CELLS);
    assert_eq!(count("conc_cell/conc_step"), CELLS);
    assert_eq!(count("conc_pool_item"), POOL_BATCHES * POOL_ITEMS);

    // Every child closed on the same thread as some parent instance,
    // and paths never picked up a foreign prefix (the cross-thread
    // contamination failure mode).
    for r in &records {
        assert!(
            ["conc_cell", "conc_cell/conc_step", "conc_pool_item"].contains(&r.path.as_str()),
            "unexpected path {:?}",
            r.path
        );
    }
    assert_well_nested(&records);

    // The grid workers carry their pool names, so trace exports can
    // label per-worker tracks.
    let names = fieldswap_obs::span::thread_names();
    assert!(
        names.iter().any(|(_, n)| n.starts_with("fieldswap-grid-")),
        "{names:?}"
    );
    assert!(
        names.iter().any(|(_, n)| n.starts_with("fieldswap-pool-")),
        "{names:?}"
    );
}
