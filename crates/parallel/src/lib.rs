#![warn(missing_docs)]

//! # fieldswap-parallel
//!
//! Deterministic parallel execution primitives shared by the experiment
//! harness (grid fan-out) and the training hot loops (data-parallel
//! epochs). Everything here preserves one contract: **output is
//! bit-identical for every `jobs` setting**, because results land in
//! per-index slots and all order-sensitive reduction happens on the
//! caller's thread in index order.
//!
//! Three building blocks:
//!
//! * [`par_map_indexed`] / [`par_try_map_indexed`] — fan an index range
//!   out over a scoped worker set, collecting results *by index* so the
//!   output order (and hence every downstream aggregate) is independent
//!   of thread scheduling. The `try` variant isolates a panicking slot
//!   with `catch_unwind`, retries it once, and returns the captured
//!   panic payload instead of tearing the whole pool down — a multi-hour
//!   grid survives one poisoned cell;
//! * [`WorkerPool`] — a persistent pool for loops that dispatch many
//!   small batches (the per-epoch training loops): threads are spawned
//!   once per pool, then each [`WorkerPool::fill_slots`] broadcast costs
//!   two condvar round-trips instead of `jobs` thread spawns. With
//!   `jobs <= 1` every call degenerates to a plain serial loop on the
//!   caller's thread — no threads, no synchronization — so the serial
//!   path *is* the reference implementation the parallel path must match;
//! * [`OnceMap`] — a concurrent lazily-populated map whose values are
//!   initialized exactly once per key, with an initialization counter so
//!   tests can assert the exactly-once contract.
//!
//! `rayon` is not available in the offline build environment, so the
//! scoped pool is a small `std::thread::scope` worker set over an atomic
//! work index — a few dozen lines that cover everything the grid needs.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Resolves a `jobs` knob: `0` means "all available cores", anything
/// else is taken literally.
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// A slot whose computation panicked on both the first attempt and the
/// retry: the grid cell is lost, but the captured payload lets the
/// caller account for it instead of crashing the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotPanic {
    /// The index passed to the worker closure.
    pub index: usize,
    /// The panic payload rendered as text (`&str` / `String` payloads
    /// verbatim, anything else a placeholder).
    pub payload: String,
}

/// Renders a `catch_unwind` payload as text.
fn payload_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one slot under `catch_unwind` with a single retry.
///
/// The retry is cheap insurance against transient faults; a
/// deterministic panic simply fails twice and is reported. Counter
/// `fieldswap_grid_cells_retried` ticks on every first-attempt panic,
/// `fieldswap_grid_cells_failed` when the retry also dies.
fn run_slot<U, F>(f: &F, i: usize) -> Result<U, SlotPanic>
where
    F: Fn(usize) -> U + Sync,
{
    match catch_unwind(AssertUnwindSafe(|| f(i))) {
        Ok(v) => Ok(v),
        Err(first) => {
            fieldswap_obs::counter_add("fieldswap_grid_cells_retried", 1);
            fieldswap_obs::warn!(
                "worker slot {i} panicked ({}); retrying once",
                payload_text(first)
            );
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(v) => Ok(v),
                Err(second) => {
                    fieldswap_obs::counter_add("fieldswap_grid_cells_failed", 1);
                    Err(SlotPanic {
                        index: i,
                        payload: payload_text(second),
                    })
                }
            }
        }
    }
}

/// Maps `f` over `0..n` using up to `jobs` worker threads (resolved via
/// [`effective_jobs`]), returning per-index outcomes in index order.
///
/// Work is distributed dynamically (an atomic cursor), so long cells
/// don't stall a fixed stripe, but each result lands in its own slot —
/// the output is bit-identical to the serial `(0..n).map(f)` whenever
/// `f` itself depends only on the index.
///
/// Each slot runs under [`catch_unwind`]: a panic is retried once, and a
/// second panic yields `Err(SlotPanic)` for that index while every other
/// slot completes normally. The pool itself never unwinds.
pub fn par_try_map_indexed<U, F>(n: usize, jobs: usize, f: F) -> Vec<Result<U, SlotPanic>>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let jobs = effective_jobs(jobs).min(n.max(1));
    if fieldswap_obs::metrics_enabled() {
        fieldswap_obs::gauge_set("fieldswap_worker_threads", jobs as f64);
    }
    if jobs <= 1 {
        return (0..n).map(|i| run_slot(&f, i)).collect();
    }
    // `Mutex<Option<..>>` slots rather than `OnceLock`: the mutex is
    // uncontended (each index is claimed by exactly one worker via the
    // cursor) and only demands `U: Send`, not `U: Sync`.
    let slots: Vec<Mutex<Option<Result<U, SlotPanic>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..jobs {
            // Named threads so per-worker tracks in trace exports and
            // the `trace_report` utilization table are identifiable.
            std::thread::Builder::new()
                .name(format!("fieldswap-grid-{w}"))
                .spawn_scoped(scope, || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = run_slot(&f, i);
                    let prev = slots[i].lock().expect("slot poisoned").replace(value);
                    assert!(prev.is_none(), "slot {i} filled twice");
                })
                .expect("spawn grid worker");
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("all slots filled")
        })
        .collect()
}

/// Infallible wrapper over [`par_try_map_indexed`]: any slot that still
/// fails after its retry re-raises the captured panic on the caller's
/// thread. Callers that need per-cell degradation use the `try` variant.
pub fn par_map_indexed<U, F>(n: usize, jobs: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_try_map_indexed(n, jobs, f)
        .into_iter()
        .map(|r| {
            r.unwrap_or_else(|p| panic!("parallel slot {} panicked twice: {}", p.index, p.payload))
        })
        .collect()
}

/// The unit of work broadcast to pool workers: a borrowed closure that
/// the pool promises not to touch after the broadcast returns. Stored as
/// a raw wide pointer so the worker threads (which are `'static`) can
/// hold it; safety rests on [`WorkerPool::fill_slots`] blocking until
/// every worker has finished the generation.
#[derive(Clone, Copy)]
struct Task(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (the closure bound requires it) and the
// broadcast protocol guarantees the pointer is only dereferenced while
// the owning stack frame is alive.
unsafe impl Send for Task {}

struct PoolState {
    /// Monotonic broadcast counter; workers run one task per bump.
    generation: u64,
    /// The closure for the current generation, if one is in flight.
    task: Option<Task>,
    /// Workers still running the current generation.
    remaining: usize,
    /// Set once, on drop: workers exit their loop.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Wakes workers when a new generation (or shutdown) is posted.
    work_ready: Condvar,
    /// Wakes the broadcaster when the last worker finishes.
    work_done: Condvar,
}

/// A persistent worker pool for loops that dispatch many small parallel
/// batches — the per-epoch training loops, where spawning threads per
/// batch would cost more than the batch itself.
///
/// * `jobs <= 1`: no threads are spawned and every call runs the plain
///   serial loop on the caller's thread, so the serial path has zero
///   parallel machinery in it.
/// * `jobs > 1`: `jobs - 1` threads are spawned once; the caller's
///   thread participates as worker 0 in every broadcast. Work items are
///   claimed dynamically via an atomic cursor and results land in
///   per-item slots, so output is independent of scheduling.
///
/// Determinism contract: [`fill_slots`](Self::fill_slots) writes item
/// `i`'s result into slot `i` and nothing else; any order-sensitive
/// reduction over the slots is the caller's job and must be done in slot
/// order. Under that discipline the pool is invisible in the output.
pub struct WorkerPool {
    jobs: usize,
    shared: Option<Arc<PoolShared>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Creates a pool resolving `jobs` via [`effective_jobs`]. For a
    /// resolved value of 1 this is free: no threads, no allocation
    /// beyond the struct.
    pub fn new(jobs: usize) -> Self {
        let jobs = effective_jobs(jobs);
        if jobs <= 1 {
            return Self {
                jobs: 1,
                shared: None,
                handles: Vec::new(),
            };
        }
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                generation: 0,
                task: None,
                remaining: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let handles = (1..jobs)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fieldswap-pool-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            jobs,
            shared: Some(shared),
            handles,
        }
    }

    /// Resolved worker count (including the caller's thread).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `f(worker, item, &mut slot[item])` for every
    /// `item in 0..slots.len()`, mutating each slot in place, and blocks
    /// until all items are done. `worker` is in `0..jobs` and is stable
    /// for the duration of one item — use it to index per-worker scratch.
    ///
    /// Slots are claimed via an atomic cursor, so scheduling varies run
    /// to run, but item `i` only ever touches slot `i`. The caller owns
    /// the slot storage and can reuse it across calls (grow-only, no
    /// per-batch allocation): each slot can hold its own scratch buffers
    /// that warm up over the run.
    pub fn for_each_slot<S, F>(&self, slots: &[Mutex<S>], f: F)
    where
        S: Send,
        F: Fn(usize, usize, &mut S) + Sync,
    {
        let n = slots.len();
        let Some(shared) = &self.shared else {
            for (i, slot) in slots.iter().enumerate() {
                f(0, i, &mut slot.lock().expect("slot poisoned"));
            }
            return;
        };
        if n == 0 {
            return;
        }
        let cursor = AtomicUsize::new(0);
        let run = |worker: usize| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            f(worker, i, &mut slots[i].lock().expect("slot poisoned"));
        };
        self.broadcast(shared, &run);
    }

    /// Runs `f(worker, item)` for every `item in 0..slots.len()`,
    /// storing each result in its slot, and blocks until all items are
    /// done. A thin wrapper over [`for_each_slot`](Self::for_each_slot)
    /// for callers whose items produce owned values.
    pub fn fill_slots<T, F>(&self, slots: &[Mutex<Option<T>>], f: F)
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        self.for_each_slot(slots, |worker, item, slot| *slot = Some(f(worker, item)));
    }

    /// The broadcast protocol: publish one borrowed closure to the
    /// workers, participate as worker 0, and block until every worker
    /// has finished the generation.
    fn broadcast(&self, shared: &Arc<PoolShared>, run: &(dyn Fn(usize) + Sync)) {
        // Publish the task. The borrow's lifetime is erased so the
        // 'static workers can hold it; we block below until every worker
        // is done with this generation, which keeps `run` alive.
        let ptr: *const (dyn Fn(usize) + Sync) = run;
        // SAFETY: only changes the trait object's lifetime bound; the
        // pointer is not dereferenced after `broadcast` returns.
        let task = Task(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(ptr)
        });
        {
            let mut state = shared.state.lock().expect("pool poisoned");
            debug_assert!(state.task.is_none(), "overlapping broadcasts");
            state.task = Some(task);
            state.generation += 1;
            state.remaining = self.jobs - 1;
            shared.work_ready.notify_all();
        }
        // The caller's thread is worker 0.
        run(0);
        let mut state = shared.state.lock().expect("pool poisoned");
        while state.remaining > 0 {
            state = shared.work_done.wait(state).expect("pool poisoned");
        }
        state.task = None;
    }
}

fn worker_loop(shared: &PoolShared, worker: usize) {
    let mut seen_generation = 0u64;
    loop {
        let task = {
            let mut state = shared.state.lock().expect("pool poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if state.generation > seen_generation {
                    seen_generation = state.generation;
                    break state.task.expect("generation without task");
                }
                state = shared.work_ready.wait(state).expect("pool poisoned");
            }
        };
        // SAFETY: `fill_slots` does not return (and thus the closure's
        // stack frame stays alive) until `remaining` drops to zero,
        // which only happens after this call completes.
        unsafe { (*task.0)(worker) };
        let mut state = shared.state.lock().expect("pool poisoned");
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.work_done.notify_all();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            let mut state = shared.state.lock().expect("pool poisoned");
            state.shutdown = true;
            shared.work_ready.notify_all();
            drop(state);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A concurrent map whose entries are computed exactly once per key.
///
/// Readers that race on the same key block until the single in-flight
/// initialization finishes; readers on different keys initialize
/// concurrently. Values are handed out by clone — store an `Arc` for
/// anything heavy.
pub struct OnceMap<K, V> {
    cells: Mutex<HashMap<K, Arc<OnceLock<V>>>>,
    inits: AtomicUsize,
    /// When set, hits and misses are reported to the metrics registry as
    /// `fieldswap_cache_{hits,misses}_total{cache="<name>"}`.
    name: Option<&'static str>,
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> OnceMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        Self {
            cells: Mutex::new(HashMap::new()),
            inits: AtomicUsize::new(0),
            name: None,
        }
    }

    /// An empty map that reports cache hit/miss counters under `name`
    /// whenever metrics collection is enabled.
    pub fn named(name: &'static str) -> Self {
        Self {
            cells: Mutex::new(HashMap::new()),
            inits: AtomicUsize::new(0),
            name: Some(name),
        }
    }

    /// The value for `key`, computing it with `init` on first access.
    ///
    /// The map lock is held only to fetch the key's cell; `init` runs
    /// outside it, so distinct keys never serialize each other.
    pub fn get_or_init(&self, key: K, init: impl FnOnce() -> V) -> V {
        let cell = {
            let mut cells = self.cells.lock().expect("OnceMap poisoned");
            Arc::clone(
                cells
                    .entry(key)
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        let mut ran_init = false;
        let value = cell
            .get_or_init(|| {
                self.inits.fetch_add(1, Ordering::Relaxed);
                ran_init = true;
                init()
            })
            .clone();
        if let Some(name) = self.name {
            if fieldswap_obs::metrics_enabled() {
                let kind = if ran_init { "misses" } else { "hits" };
                fieldswap_obs::counter_add(
                    &format!("fieldswap_cache_{kind}_total{{cache=\"{name}\"}}"),
                    1,
                );
            }
        }
        value
    }

    /// Number of initialized entries.
    pub fn len(&self) -> usize {
        let cells = self.cells.lock().expect("OnceMap poisoned");
        cells.values().filter(|c| c.get().is_some()).count()
    }

    /// Whether no entry has been initialized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many times an initializer has run — equals [`len`](Self::len)
    /// exactly when every entry was computed once.
    pub fn init_count(&self) -> usize {
        self.inits.load(Ordering::Relaxed)
    }
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> Default for OnceMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_output() {
        let serial: Vec<u64> = (0..57).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for jobs in [0, 1, 2, 4, 16] {
            let par = par_map_indexed(57, jobs, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        assert!(par_map_indexed(0, 4, |i| i).is_empty());
        assert_eq!(par_map_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn effective_jobs_resolves_zero() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn try_map_isolates_persistent_panic() {
        for jobs in [1, 4] {
            let out = par_try_map_indexed(6, jobs, |i| {
                if i == 3 {
                    panic!("cell {i} is poisoned");
                }
                i * 2
            });
            assert_eq!(out.len(), 6, "jobs={jobs}");
            for (i, r) in out.iter().enumerate() {
                if i == 3 {
                    let p = r.as_ref().unwrap_err();
                    assert_eq!(p.index, 3);
                    assert_eq!(p.payload, "cell 3 is poisoned");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 2, "jobs={jobs}");
                }
            }
        }
    }

    #[test]
    fn try_map_retries_transient_panic_once() {
        // The slot panics only on its first attempt; the retry succeeds
        // and the caller sees a clean result.
        let attempts = AtomicUsize::new(0);
        let out = par_try_map_indexed(3, 1, |i| {
            if i == 1 && attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient");
            }
            i + 100
        });
        assert_eq!(
            out,
            vec![Ok(100), Ok(101), Ok(102)],
            "retry should recover the transient slot"
        );
        assert_eq!(attempts.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn try_map_reports_retry_and_failure_counters() {
        fieldswap_obs::enable_metrics();
        let reg = fieldswap_obs::global().registry();
        let retried0 = reg.counter_value("fieldswap_grid_cells_retried");
        let failed0 = reg.counter_value("fieldswap_grid_cells_failed");
        let out = par_try_map_indexed(2, 1, |i| {
            if i == 0 {
                panic!("always");
            }
            i
        });
        assert!(out[0].is_err());
        assert_eq!(out[1], Ok(1));
        let retried1 = reg.counter_value("fieldswap_grid_cells_retried");
        let failed1 = reg.counter_value("fieldswap_grid_cells_failed");
        assert_eq!(retried1, retried0 + 1, "one first-attempt panic");
        assert_eq!(failed1, failed0 + 1, "one double failure");
    }

    #[test]
    fn infallible_map_repanics_with_payload() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map_indexed(2, 1, |i| {
                if i == 1 {
                    panic!("boom");
                }
                i
            })
        }));
        let payload = payload_text(caught.unwrap_err());
        assert!(
            payload.contains("slot 1") && payload.contains("boom"),
            "payload: {payload}"
        );
    }

    #[test]
    fn named_once_map_reports_hit_miss_counters() {
        fieldswap_obs::enable_metrics();
        let reg = fieldswap_obs::global().registry();
        let hits0 = reg.counter_value("fieldswap_cache_hits_total{cache=\"test_cache\"}");
        let misses0 = reg.counter_value("fieldswap_cache_misses_total{cache=\"test_cache\"}");
        let map: OnceMap<u32, u32> = OnceMap::named("test_cache");
        assert_eq!(map.get_or_init(7, || 70), 70);
        assert_eq!(map.get_or_init(7, || unreachable!()), 70);
        let hits1 = reg.counter_value("fieldswap_cache_hits_total{cache=\"test_cache\"}");
        let misses1 = reg.counter_value("fieldswap_cache_misses_total{cache=\"test_cache\"}");
        assert_eq!(hits1, hits0 + 1);
        assert_eq!(misses1, misses0 + 1);
    }

    #[test]
    fn once_map_initializes_exactly_once_per_key() {
        let map: OnceMap<u32, u32> = OnceMap::new();
        let hits = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for key in 0..4 {
                        let v = map.get_or_init(key, || {
                            hits.fetch_add(1, Ordering::Relaxed);
                            key * 10
                        });
                        assert_eq!(v, key * 10);
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4, "one init per key");
        assert_eq!(map.init_count(), 4);
        assert_eq!(map.len(), 4);
    }

    #[test]
    fn worker_pool_serial_is_threadless() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.jobs(), 1);
        let slots: Vec<Mutex<Option<usize>>> = (0..5).map(|_| Mutex::new(None)).collect();
        pool.fill_slots(&slots, |worker, item| {
            assert_eq!(worker, 0);
            item * 3
        });
        let out: Vec<usize> = slots
            .iter()
            .map(|s| s.lock().unwrap().take().unwrap())
            .collect();
        assert_eq!(out, vec![0, 3, 6, 9, 12]);
    }

    #[test]
    fn worker_pool_fills_every_slot_once() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.jobs(), 4);
        let slots: Vec<Mutex<Option<(usize, usize)>>> = (0..33).map(|_| Mutex::new(None)).collect();
        // Many consecutive broadcasts through the same pool: results
        // must always land in the right slot with a valid worker index.
        for round in 0..10 {
            pool.fill_slots(&slots, |worker, item| {
                assert!(worker < 4);
                (item, item * 7 + round)
            });
            for (i, s) in slots.iter().enumerate() {
                let (item, v) = s.lock().unwrap().take().unwrap();
                assert_eq!(item, i);
                assert_eq!(v, i * 7 + round);
            }
        }
    }

    #[test]
    fn worker_pool_for_each_slot_mutates_in_place() {
        // Slots keep their identity across broadcasts: per-slot scratch
        // accumulates instead of being replaced.
        for jobs in [1, 4] {
            let pool = WorkerPool::new(jobs);
            let slots: Vec<Mutex<Vec<usize>>> = (0..9).map(|_| Mutex::new(Vec::new())).collect();
            for round in 0..3 {
                pool.for_each_slot(&slots, |_, item, scratch| scratch.push(item * 10 + round));
            }
            for (i, s) in slots.iter().enumerate() {
                assert_eq!(*s.lock().unwrap(), vec![i * 10, i * 10 + 1, i * 10 + 2]);
            }
        }
    }

    #[test]
    fn worker_pool_empty_batch_is_noop() {
        let pool = WorkerPool::new(3);
        let slots: Vec<Mutex<Option<u32>>> = Vec::new();
        pool.fill_slots(&slots, |_, _| unreachable!());
    }

    #[test]
    fn worker_pool_reduction_in_slot_order_is_jobs_invariant() {
        // The contract the training loops rely on: any fold over the
        // slots in index order gives the same result for every jobs
        // setting, including non-associative f32 accumulation.
        let items: Vec<f32> = (0..101).map(|i| (i as f32 * 0.37).sin() * 1e-3).collect();
        let fold = |jobs: usize| -> f32 {
            let pool = WorkerPool::new(jobs);
            let slots: Vec<Mutex<Option<f32>>> =
                (0..items.len()).map(|_| Mutex::new(None)).collect();
            pool.fill_slots(&slots, |_, i| items[i] * items[i] + 1e-7);
            let mut acc = 0.0f32;
            for s in &slots {
                acc += s.lock().unwrap().take().unwrap();
            }
            acc
        };
        let serial = fold(1);
        for jobs in [2, 3, 8] {
            assert_eq!(serial.to_bits(), fold(jobs).to_bits(), "jobs={jobs}");
        }
    }
}
