//! First-order optimizers over a [`ParamStore`].

use crate::tape::ParamStore;
use crate::tensor::Tensor;

/// A gradient-based parameter update rule.
pub trait Optimizer {
    /// Applies one update step using the gradients currently accumulated in
    /// `store`, then zeroes them.
    fn step(&mut self, store: &mut ParamStore);
}

/// Plain stochastic gradient descent with optional gradient clipping.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Per-tensor L2 clip threshold (`None` disables clipping).
    pub clip: Option<f32>,
}

impl Sgd {
    /// SGD with the given learning rate and no clipping.
    pub fn new(lr: f32) -> Self {
        Self { lr, clip: None }
    }

    /// SGD with per-tensor gradient-norm clipping.
    pub fn with_clip(lr: f32, clip: f32) -> Self {
        Self {
            lr,
            clip: Some(clip),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        for (value, grad) in store.pairs_mut() {
            let mut scale = self.lr;
            if let Some(c) = self.clip {
                let n = grad.norm();
                if n > c {
                    scale *= c / n;
                }
            }
            for (v, g) in value.data_mut().iter_mut().zip(grad.data()) {
                *v -= scale * g;
            }
            grad.zero();
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with standard hyperparameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for (i, (value, grad)) in store.pairs_mut().enumerate() {
            if self.m.len() <= i {
                self.m.push(Tensor::zeros(value.rows(), value.cols()));
                self.v.push(Tensor::zeros(value.rows(), value.cols()));
            }
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            for k in 0..value.len() {
                let g = grad.data()[k];
                let mk = self.beta1 * m.data()[k] + (1.0 - self.beta1) * g;
                let vk = self.beta2 * v.data()[k] + (1.0 - self.beta2) * g * g;
                m.data_mut()[k] = mk;
                v.data_mut()[k] = vk;
                let mhat = mk / bc1;
                let vhat = vk / bc2;
                value.data_mut()[k] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            grad.zero();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::{Init, Tape};
    use crate::tensor::Tensor;

    fn quadratic_loss(store: &mut ParamStore, p: crate::tape::ParamId) -> f32 {
        // loss = BCE(w·x, 1): minimized by pushing w·x up.
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_rows(vec![vec![1.0, -1.0]]));
        let w = tape.param(store, p);
        let z = tape.matmul(x, w);
        let loss = tape.bce_with_logits(z, &[1.0]);
        let out = tape.value(loss).data()[0];
        tape.backward(loss, store);
        out
    }

    #[test]
    fn sgd_descends() {
        let mut store = ParamStore::new(1);
        let p = store.tensor("w", 2, 1, Init::Xavier);
        let mut opt = Sgd::new(0.3);
        let first = quadratic_loss(&mut store, p);
        opt.step(&mut store);
        for _ in 0..50 {
            quadratic_loss(&mut store, p);
            opt.step(&mut store);
        }
        store.zero_grads();
        let last = quadratic_loss(&mut store, p);
        assert!(last < first);
    }

    #[test]
    fn adam_descends_faster_than_tiny_sgd() {
        let run = |mut opt: Box<dyn Optimizer>| {
            let mut store = ParamStore::new(2);
            let p = store.tensor("w", 2, 1, Init::Zeros);
            for _ in 0..30 {
                quadratic_loss(&mut store, p);
                opt.step(&mut store);
            }
            store.zero_grads();
            quadratic_loss(&mut store, p)
        };
        let adam = run(Box::new(Adam::new(0.05)));
        let sgd = run(Box::new(Sgd::new(0.001)));
        assert!(adam < sgd, "adam {adam} should beat lr=0.001 sgd {sgd}");
    }

    #[test]
    fn sgd_clipping_bounds_update() {
        let mut store = ParamStore::new(3);
        let p = store.tensor("w", 1, 1, Init::Zeros);
        // Manually set a huge gradient.
        store.zero_grads();
        {
            let mut tape = Tape::new();
            let x = tape.constant(Tensor::from_vec(1, 1, vec![1000.0]));
            let w = tape.param(&store, p);
            let z = tape.matmul(x, w);
            let loss = tape.bce_with_logits(z, &[1.0]);
            tape.backward(loss, &mut store);
        }
        let before = store.value(p).data()[0];
        let mut opt = Sgd::with_clip(1.0, 0.1);
        opt.step(&mut store);
        let delta = (store.value(p).data()[0] - before).abs();
        assert!(delta <= 0.1 + 1e-6, "clipped step was {delta}");
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut store = ParamStore::new(4);
        let p = store.tensor("w", 2, 1, Init::Xavier);
        quadratic_loss(&mut store, p);
        assert!(store.grad(p).norm() > 0.0);
        Sgd::new(0.1).step(&mut store);
        assert_eq!(store.grad(p).norm(), 0.0);
    }
}
