//! First-order optimizers over a [`ParamStore`].
//!
//! Both optimizers exploit the store's lazy gradients and active-row
//! tracking: a parameter whose gradient was never allocated is skipped
//! outright, and Adam updates only rows that have ever received gradient
//! mass. Skipped work is provably a bitwise no-op — an untouched row has
//! `g = m = v = 0`, so the dense update would compute
//! `x -= lr * (+0.0) / (sqrt(+0.0) + eps) = x - (+0.0)`, which leaves
//! every `f32` (including `-0.0`) unchanged, and would store `m` and `v`
//! back as `+0.0`, their existing value.

use crate::tape::ParamStore;
use crate::tensor::Tensor;

/// A gradient-based parameter update rule.
pub trait Optimizer {
    /// Applies one update step using the gradients currently accumulated in
    /// `store`, then zeroes them.
    fn step(&mut self, store: &mut ParamStore);
}

/// Plain stochastic gradient descent with optional gradient clipping.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Per-tensor L2 clip threshold (`None` disables clipping).
    pub clip: Option<f32>,
}

impl Sgd {
    /// SGD with the given learning rate and no clipping.
    pub fn new(lr: f32) -> Self {
        Self { lr, clip: None }
    }

    /// SGD with per-tensor gradient-norm clipping.
    pub fn with_clip(lr: f32, clip: f32) -> Self {
        Self {
            lr,
            clip: Some(clip),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        for (value, grad, _active) in store.updates_mut() {
            // A parameter backward never touched has identically-zero
            // gradient: the whole update is `x -= lr * 0`.
            let Some(grad) = grad else {
                continue;
            };
            let mut scale = self.lr;
            if let Some(c) = self.clip {
                let n = grad.norm();
                if n > c {
                    scale *= c / n;
                }
            }
            for (v, g) in value.data_mut().iter_mut().zip(grad.data()) {
                *v -= scale * g;
            }
            grad.zero();
        }
    }
}

/// Adam (Kingma & Ba) with bias correction and optional per-tensor L2
/// gradient clipping (mirroring [`Sgd::with_clip`]).
#[derive(Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    /// Per-tensor L2 clip threshold (`None` disables clipping). When set,
    /// the *gradient* is rescaled before it enters the moment estimates,
    /// so one divergent batch cannot poison `m`/`v` for later steps.
    pub clip: Option<f32>,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with standard hyperparameters (β₁=0.9, β₂=0.999, ε=1e-8) and
    /// no clipping.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: None,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adam with per-tensor gradient-norm clipping.
    pub fn with_clip(lr: f32, clip: f32) -> Self {
        Self {
            clip: Some(clip),
            ..Self::new(lr)
        }
    }

    /// The dense Adam update over `data[ks]`, reading gradients from
    /// `gdata` at the same indices, pre-scaled by `gscale` (1.0 when
    /// clipping is off or the norm is under the threshold — an exact
    /// bitwise no-op on the gradient).
    #[allow(clippy::too_many_arguments)]
    fn apply_range(
        &self,
        ks: std::ops::Range<usize>,
        gdata: &[f32],
        gscale: f32,
        m: &mut Tensor,
        v: &mut Tensor,
        value: &mut Tensor,
        bc1: f32,
        bc2: f32,
    ) {
        for k in ks {
            let g = gdata[k] * gscale;
            let mk = self.beta1 * m.data()[k] + (1.0 - self.beta1) * g;
            let vk = self.beta2 * v.data()[k] + (1.0 - self.beta2) * g * g;
            m.data_mut()[k] = mk;
            v.data_mut()[k] = vk;
            let mhat = mk / bc1;
            let vhat = vk / bc2;
            value.data_mut()[k] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (lr, beta1, beta2, eps, clip) = (self.lr, self.beta1, self.beta2, self.eps, self.clip);
        for (i, (value, grad, active)) in store.updates_mut().enumerate() {
            if self.m.len() <= i {
                self.m.push(Tensor::zeros(value.rows(), value.cols()));
                self.v.push(Tensor::zeros(value.rows(), value.cols()));
            }
            // Never-touched parameter: g = m = v = 0 everywhere, update is
            // a bitwise no-op (see module docs).
            let Some(grad) = grad else {
                continue;
            };
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            let cols = value.cols();
            // Per-tensor clip scale. Rows outside the ever-active set hold
            // zero gradient, so summing squares over active rows alone
            // yields the same norm as a dense scan — active-rows-aware
            // without a correctness gap.
            let gscale = match clip {
                Some(c) => {
                    let gd = grad.data();
                    let ss: f32 = if active.is_all() {
                        gd.iter().map(|g| g * g).sum()
                    } else {
                        active
                            .rows()
                            .iter()
                            .flat_map(|&r| &gd[r as usize * cols..(r as usize + 1) * cols])
                            .map(|g| g * g)
                            .sum()
                    };
                    let n = ss.sqrt();
                    if n > c {
                        c / n
                    } else {
                        1.0
                    }
                }
                None => 1.0,
            };
            let step = Adam {
                lr,
                beta1,
                beta2,
                eps,
                clip,
                t: 0,
                m: Vec::new(),
                v: Vec::new(),
            };
            if active.is_all() {
                step.apply_range(0..value.len(), grad.data(), gscale, m, v, value, bc1, bc2);
                grad.zero();
            } else {
                // Rows outside the ever-active set have g = m = v = 0 for
                // every step so far: skipping them is bitwise identical to
                // the dense scan. Rows *in* the set may have zero gradient
                // this step but nonzero moments — those must still decay.
                for &r in active.rows() {
                    let ks = r as usize * cols..(r as usize + 1) * cols;
                    step.apply_range(ks.clone(), grad.data(), gscale, m, v, value, bc1, bc2);
                    grad.data_mut()[ks].iter_mut().for_each(|g| *g = 0.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::{Init, Tape};
    use crate::tensor::Tensor;

    fn quadratic_loss(store: &mut ParamStore, p: crate::tape::ParamId) -> f32 {
        // loss = BCE(w·x, 1): minimized by pushing w·x up.
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_rows(vec![vec![1.0, -1.0]]));
        let w = tape.param(store, p);
        let z = tape.matmul(x, w);
        let loss = tape.bce_with_logits(z, &[1.0]);
        let out = tape.value(loss).data()[0];
        tape.backward(loss, store);
        out
    }

    #[test]
    fn sgd_descends() {
        let mut store = ParamStore::new(1);
        let p = store.tensor("w", 2, 1, Init::Xavier);
        let mut opt = Sgd::new(0.3);
        let first = quadratic_loss(&mut store, p);
        opt.step(&mut store);
        for _ in 0..50 {
            quadratic_loss(&mut store, p);
            opt.step(&mut store);
        }
        store.zero_grads();
        let last = quadratic_loss(&mut store, p);
        assert!(last < first);
    }

    #[test]
    fn adam_descends_faster_than_tiny_sgd() {
        let run = |mut opt: Box<dyn Optimizer>| {
            let mut store = ParamStore::new(2);
            let p = store.tensor("w", 2, 1, Init::Zeros);
            for _ in 0..30 {
                quadratic_loss(&mut store, p);
                opt.step(&mut store);
            }
            store.zero_grads();
            quadratic_loss(&mut store, p)
        };
        let adam = run(Box::new(Adam::new(0.05)));
        let sgd = run(Box::new(Sgd::new(0.001)));
        assert!(adam < sgd, "adam {adam} should beat lr=0.001 sgd {sgd}");
    }

    #[test]
    fn sgd_clipping_bounds_update() {
        let mut store = ParamStore::new(3);
        let p = store.tensor("w", 1, 1, Init::Zeros);
        // Manually set a huge gradient.
        store.zero_grads();
        {
            let mut tape = Tape::new();
            let x = tape.constant(Tensor::from_vec(1, 1, vec![1000.0]));
            let w = tape.param(&store, p);
            let z = tape.matmul(x, w);
            let loss = tape.bce_with_logits(z, &[1.0]);
            tape.backward(loss, &mut store);
        }
        let before = store.value(p).data()[0];
        let mut opt = Sgd::with_clip(1.0, 0.1);
        opt.step(&mut store);
        let delta = (store.value(p).data()[0] - before).abs();
        assert!(delta <= 0.1 + 1e-6, "clipped step was {delta}");
    }

    #[test]
    fn adam_clipping_bounds_update() {
        let mut store = ParamStore::new(6);
        let p = store.tensor("w", 1, 1, Init::Zeros);
        // Manually set a huge gradient.
        store.zero_grads();
        {
            let mut tape = Tape::new();
            let x = tape.constant(Tensor::from_vec(1, 1, vec![1000.0]));
            let w = tape.param(&store, p);
            let z = tape.matmul(x, w);
            let loss = tape.bce_with_logits(z, &[1.0]);
            tape.backward(loss, &mut store);
        }
        let before = store.value(p).data()[0];
        let mut opt = Adam::with_clip(0.05, 0.1);
        opt.step(&mut store);
        let delta = (store.value(p).data()[0] - before).abs();
        assert!(delta <= 0.05 + 1e-6, "clipped adam step was {delta}");
    }

    #[test]
    fn adam_clip_engages_only_above_threshold() {
        // Two steps with very different gradient magnitudes. A threshold
        // the norm never reaches must be a bitwise no-op versus no clip
        // (`g * 1.0` is exact); a small threshold caps the huge step's
        // contribution to the moments and diverges from the unclipped run.
        let run = |clip: Option<f32>| {
            let mut store = ParamStore::new(7);
            let p = store.tensor("w", 1, 1, Init::Zeros);
            let mut opt = match clip {
                Some(c) => Adam::with_clip(0.05, c),
                None => Adam::new(0.05),
            };
            for scale in [1000.0f32, 0.5] {
                let mut tape = Tape::new();
                let x = tape.constant(Tensor::from_vec(1, 1, vec![scale]));
                let w = tape.param(&store, p);
                let z = tape.matmul(x, w);
                let loss = tape.bce_with_logits(z, &[1.0]);
                tape.backward(loss, &mut store);
                opt.step(&mut store);
            }
            store.value(p).data()[0]
        };
        let unclipped = run(None);
        let inert = run(Some(f32::MAX));
        let clipped = run(Some(0.1));
        assert_eq!(
            unclipped.to_bits(),
            inert.to_bits(),
            "unengaged clip must stay bit-identical"
        );
        assert_ne!(
            unclipped.to_bits(),
            clipped.to_bits(),
            "engaged clip must change the trajectory"
        );
    }

    #[test]
    fn adam_clip_sparse_rows_match_dense_scan() {
        // Same sparse-vs-dense equivalence as
        // `adam_sparse_rows_match_dense_scan`, with clipping engaged: the
        // active-rows norm must equal the dense norm (inactive rows hold
        // zero gradient), so the clipped updates agree bitwise too.
        let gather_loss = |store: &mut ParamStore, p: crate::tape::ParamId| {
            let mut tape = Tape::new();
            let rows = tape.gather(store, p, &[1, 4, 1]);
            let pooled = tape.max_pool(rows);
            let loss = tape.bce_with_logits(pooled, &[1.0, 0.0, 1.0]);
            tape.backward(loss, store);
        };
        let mut store = ParamStore::new(8);
        let p = store.tensor("emb", 6, 3, Init::Uniform(0.5));
        let mut opt = Adam::with_clip(0.01, 0.05);
        for _ in 0..5 {
            gather_loss(&mut store, p);
            opt.step(&mut store);
        }
        let mut dense = ParamStore::new(8);
        let q = dense.tensor("emb", 6, 3, Init::Uniform(0.5));
        let mut dopt = Adam::with_clip(0.01, 0.05);
        for _ in 0..5 {
            gather_loss(&mut dense, q);
            let mut tape = Tape::new();
            let w = tape.param(&dense, q);
            let r0 = tape.select_row(w, 0);
            let s = tape.scale(r0, 0.0);
            let pooled = tape.max_pool(s);
            let extra = tape.bce_with_logits(pooled, &[0.5, 0.5, 0.5]);
            tape.backward(extra, &mut dense);
            dopt.step(&mut dense);
        }
        for (a, b) in store.value(p).data().iter().zip(dense.value(q).data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "clipped sparse vs dense drift");
        }
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut store = ParamStore::new(4);
        let p = store.tensor("w", 2, 1, Init::Xavier);
        quadratic_loss(&mut store, p);
        assert!(store.grad(p).norm() > 0.0);
        Sgd::new(0.1).step(&mut store);
        assert_eq!(store.grad(p).norm(), 0.0);
    }

    #[test]
    fn adam_sparse_rows_match_dense_scan() {
        // Gather-only access: the active-row Adam path must produce exactly
        // the same parameters as a reference dense scan over all rows.
        let gather_loss = |store: &mut ParamStore, p: crate::tape::ParamId| {
            let mut tape = Tape::new();
            let rows = tape.gather(store, p, &[1, 4, 1]);
            let pooled = tape.max_pool(rows);
            let loss = tape.bce_with_logits(pooled, &[1.0, 0.0, 1.0]);
            tape.backward(loss, store);
        };
        // Optimized run.
        let mut store = ParamStore::new(5);
        let p = store.tensor("emb", 6, 3, Init::Uniform(0.5));
        let mut opt = Adam::new(0.01);
        for _ in 0..5 {
            gather_loss(&mut store, p);
            opt.step(&mut store);
        }
        // Reference: same graph, but force a dense parameter read as well
        // so every row is active and the dense branch runs.
        let mut dense = ParamStore::new(5);
        let q = dense.tensor("emb", 6, 3, Init::Uniform(0.5));
        let mut dopt = Adam::new(0.01);
        for _ in 0..5 {
            gather_loss(&mut dense, q);
            // Densify the active set without adding gradient mass.
            let mut tape = Tape::new();
            let w = tape.param(&dense, q);
            let r0 = tape.select_row(w, 0);
            let s = tape.scale(r0, 0.0);
            let pooled = tape.max_pool(s);
            let extra = tape.bce_with_logits(pooled, &[0.5, 0.5, 0.5]);
            // d(loss)/dw through scale(0) is exactly 0 everywhere.
            tape.backward(extra, &mut dense);
            dopt.step(&mut dense);
        }
        // The scale-by-zero side graph adds zero gradient, so values from
        // the sparse and dense paths must agree bitwise.
        for (a, b) in store.value(p).data().iter().zip(dense.value(q).data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "sparse vs dense Adam drift");
        }
    }
}
