//! Sparsemax (Martins & Astudillo, ICML 2016): the Euclidean projection of a
//! score vector onto the probability simplex. Unlike softmax it produces
//! exact zeros, which is why the paper uses it to select the sparse set of
//! *important tokens* from neighbor importance scores (Section II-A2).

/// Computes sparsemax(z): the unique point `p` on the probability simplex
/// minimizing `||p - z||²`. Components whose score falls below the support
/// threshold τ become exactly zero.
///
/// Returns an empty vector for empty input.
pub fn sparsemax(z: &[f32]) -> Vec<f32> {
    if z.is_empty() {
        return Vec::new();
    }
    // Sort scores in decreasing order.
    let mut sorted: Vec<f32> = z.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));

    // Find the support size k(z): the largest k with
    // 1 + k * z_(k) > sum_{j<=k} z_(j).
    let mut cumsum = 0.0f32;
    let mut k = 0usize;
    let mut cumsum_k = 0.0f32;
    for (i, &zi) in sorted.iter().enumerate() {
        cumsum += zi;
        let kk = (i + 1) as f32;
        if 1.0 + kk * zi > cumsum {
            k = i + 1;
            cumsum_k = cumsum;
        }
    }
    // Threshold tau.
    let tau = (cumsum_k - 1.0) / k as f32;
    z.iter().map(|&zi| (zi - tau).max(0.0)).collect()
}

/// Indices with non-zero sparsemax mass, i.e. the selected support set.
pub fn sparsemax_support(z: &[f32]) -> Vec<usize> {
    sparsemax(z)
        .iter()
        .enumerate()
        .filter(|(_, &p)| p > 0.0)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_simplex(p: &[f32]) {
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn empty_input() {
        assert!(sparsemax(&[]).is_empty());
    }

    #[test]
    fn single_element_gets_all_mass() {
        assert_eq!(sparsemax(&[0.3]), vec![1.0]);
    }

    #[test]
    fn uniform_scores_uniform_output() {
        let p = sparsemax(&[2.0, 2.0, 2.0, 2.0]);
        assert_simplex(&p);
        for &x in &p {
            assert!((x - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn dominant_score_takes_everything() {
        // Gap larger than 1 puts all mass on the max.
        let p = sparsemax(&[10.0, 0.0, -3.0]);
        assert_eq!(p, vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn produces_exact_zeros_unlike_softmax() {
        let p = sparsemax(&[1.0, 0.9, -2.0, -5.0]);
        assert_simplex(&p);
        assert!(p[0] > 0.0 && p[1] > 0.0);
        assert_eq!(p[2], 0.0);
        assert_eq!(p[3], 0.0);
    }

    #[test]
    fn known_two_element_case() {
        // sparsemax([0.5, 0]) = [(0.5 - tau), (0 - tau)]+ with support 2:
        // tau = (0.5 - 1)/2 = -0.25 → [0.75, 0.25].
        let p = sparsemax(&[0.5, 0.0]);
        assert!((p[0] - 0.75).abs() < 1e-6);
        assert!((p[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn support_helper_filters_zeros() {
        let s = sparsemax_support(&[1.0, 0.9, -2.0]);
        assert_eq!(s, vec![0, 1]);
    }

    #[test]
    fn translation_invariance() {
        let a = sparsemax(&[0.1, 0.4, -0.3]);
        let b = sparsemax(&[10.1, 10.4, 9.7]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    proptest! {
        #[test]
        fn prop_output_on_simplex(z in proptest::collection::vec(-10f32..10.0, 1..50)) {
            let p = sparsemax(&z);
            assert_simplex(&p);
        }

        #[test]
        fn prop_order_preserved(z in proptest::collection::vec(-5f32..5.0, 2..20)) {
            let p = sparsemax(&z);
            for i in 0..z.len() {
                for j in 0..z.len() {
                    if z[i] > z[j] {
                        prop_assert!(p[i] >= p[j] - 1e-6);
                    }
                }
            }
        }

        #[test]
        fn prop_max_always_in_support(z in proptest::collection::vec(-5f32..5.0, 1..20)) {
            let p = sparsemax(&z);
            let (imax, _) = z.iter().enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1)).unwrap();
            prop_assert!(p[imax] > 0.0);
        }
    }
}
