#![warn(missing_docs)]

//! # fieldswap-nn
//!
//! A minimal, dependency-free neural-network stack: dense 2-D tensors, a
//! tape-based reverse-mode autograd, SGD/Adam optimizers, and the
//! *sparsemax* transformation (Martins & Astudillo, 2016) that the paper
//! applies to neighbor importance scores (Section II-A2).
//!
//! This crate is the substrate for the candidate-based importance model of
//! the paper's Fig. 2 (implemented in `fieldswap-keyphrase`): hashed text
//! embeddings and relative-position embeddings per neighbor, a
//! self-attention encoder, max-pooling into a *Neighborhood Encoding*, and a
//! binary field head. Everything here is deterministic given a seed.
//!
//! ## Example
//! ```
//! use fieldswap_nn::{ParamStore, Tape, Sgd, Optimizer, Init, Tensor};
//!
//! let mut params = ParamStore::new(42);
//! let w = params.tensor("w", 2, 1, Init::Xavier);
//! let mut opt = Sgd::new(0.5);
//! for _ in 0..200 {
//!     let mut tape = Tape::new();
//!     let x = tape.constant(Tensor::from_rows(vec![vec![1.0, 2.0]]));
//!     let wv = tape.param(&params, w);
//!     let y = tape.matmul(x, wv);
//!     let loss = tape.bce_with_logits(y, &[1.0]);
//!     tape.backward(loss, &mut params);
//!     opt.step(&mut params);
//! }
//! // After training, the logit should be strongly positive.
//! let mut tape = Tape::new();
//! let x = tape.constant(Tensor::from_rows(vec![vec![1.0, 2.0]]));
//! let wv = tape.param(&params, w);
//! let y = tape.matmul(x, wv);
//! assert!(tape.value(y).data()[0] > 1.0);
//! ```

pub mod optim;
pub mod sparsemax;
pub mod tape;
pub mod tensor;

pub use optim::{Adam, Optimizer, Sgd};
pub use sparsemax::sparsemax;
pub use tape::{GradBuffer, Init, NodeId, ParamId, ParamStore, Tape};
pub use tensor::Tensor;

/// Cosine similarity between two equal-length vectors. Returns 0 when
/// either vector is all-zero.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine of different lengths");
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_identical_is_one() {
        let v = [1.0, 2.0, -3.0];
        assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        assert_eq!(cosine_similarity(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn cosine_opposite_is_minus_one() {
        assert!((cosine_similarity(&[1.0, 1.0], &[-2.0, -2.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }
}
