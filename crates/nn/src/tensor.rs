//! Dense row-major 2-D `f32` tensors. Everything the importance model needs
//! fits in matrices, so there is deliberately no general N-D machinery.

/// A dense row-major matrix of `f32`. A vector is a `1 x n` tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A `rows x cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a tensor from raw row-major data.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Builds a tensor from a list of equal-length rows.
    ///
    /// # Panics
    /// Panics on ragged input or zero rows.
    pub fn from_rows(rows: Vec<Vec<f32>>) -> Self {
        assert!(!rows.is_empty(), "no rows");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        let r = rows.len();
        let data = rows.into_iter().flatten().collect();
        Self::from_vec(r, cols, data)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Consumes the tensor, returning its row-major data buffer (used by
    /// the tape's buffer pool to recycle allocations).
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Matrix product `self @ other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix product accumulated into `out`, which must be zeroed and of
    /// shape `self.rows x other.cols`. Identical accumulation order to
    /// [`Tensor::matmul`], so results are bit-for-bit the same.
    ///
    /// # Panics
    /// Panics on inner- or output-dimension mismatch.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.cols, other.rows, "matmul inner dim mismatch");
        assert_eq!((out.rows, out.cols), (self.rows, other.cols));
        // i-k-j loop order: the inner loop runs over contiguous memory of
        // both `other` and `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Transpose written into `out` (shape `cols x rows`), overwriting every
    /// element.
    ///
    /// # Panics
    /// Panics on output-shape mismatch.
    pub fn transpose_into(&self, out: &mut Tensor) {
        assert_eq!((out.rows, out.cols), (self.cols, self.rows));
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
    }

    /// Element-wise sum into `self`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!((t.rows(), t.cols()), (2, 2));
        assert_eq!(t.get(1, 0), 3.0);
        assert_eq!(t.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Tensor::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Tensor::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_rows(vec![vec![2.0, -1.0, 0.5]]);
        let i = Tensor::from_rows(vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    #[should_panic(expected = "inner dim")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!((t.rows(), t.cols()), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn proptest_transpose_involution_and_matmul_identity() {
        use proptest::prelude::*;
        use proptest::test_runner::{Config, TestRunner};
        let mut runner = TestRunner::new(Config::with_cases(32));
        runner
            .run(
                &(
                    1usize..6,
                    1usize..6,
                    proptest::collection::vec(-10f32..10.0, 36),
                ),
                |(r, c, data)| {
                    let t = Tensor::from_vec(r, c, data[..r * c].to_vec());
                    prop_assert_eq!(t.transpose().transpose(), t.clone());
                    // Right-identity.
                    let mut id = Tensor::zeros(c, c);
                    for i in 0..c {
                        id.set(i, i, 1.0);
                    }
                    let prod = t.matmul(&id);
                    for (a, b) in prod.data().iter().zip(t.data()) {
                        prop_assert!((a - b).abs() < 1e-5);
                    }
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    fn add_scale_zero_norm() {
        let mut a = Tensor::from_rows(vec![vec![3.0, 4.0]]);
        assert_eq!(a.norm(), 5.0);
        let b = Tensor::from_rows(vec![vec![1.0, 1.0]]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[4.0, 5.0]);
        a.scale_assign(2.0);
        assert_eq!(a.data(), &[8.0, 10.0]);
        a.zero();
        assert_eq!(a.data(), &[0.0, 0.0]);
    }
}
