//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records a computation as a flat list of nodes; calling
//! [`Tape::backward`] walks the list in reverse, propagating gradients and
//! accumulating parameter gradients into the shared [`ParamStore`].
//!
//! The op set is exactly what the Fig.-2 importance model needs:
//! constants, parameter reads, embedding gathers, matmul, transpose,
//! row-broadcast add, element-wise add/mul/ReLU/tanh, scalar scale, row
//! softmax, column-wise max-pool, row concatenation, row selection, and a
//! binary-cross-entropy-with-logits loss head.
//!
//! Allocation behavior: a tape owns a shape-keyed pool of tensor buffers.
//! [`Tape::reset`] recycles every node's value/gradient buffer into the
//! pool, so a tape reused across training steps reaches a steady state
//! with no per-step heap allocation. Gradient buffers are allocated
//! lazily — a node (or parameter row) that never receives gradient mass
//! never allocates one. All recycled buffers are fully (re)initialized
//! before use, so results are bit-identical to the allocate-per-step
//! implementation.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(usize);

/// Handle to a parameter tensor in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamId(usize);

/// Weight initialization schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (for biases).
    Zeros,
    /// Uniform Xavier/Glorot: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    Xavier,
    /// Uniform in `(-scale, scale)` (for embedding tables).
    Uniform(f32),
}

/// Which rows of a parameter have ever received gradient mass.
///
/// Rows outside the set have identically-zero gradient and (because
/// first/second moments only move when a gradient does) identically-zero
/// optimizer state, so an optimizer may skip them: the skipped update is
/// exactly `x -= 0.0`, a bitwise no-op. This is what lets Adam scale with
/// the *touched* rows of the embedding tables instead of the vocabulary.
#[derive(Debug)]
pub struct ActiveRows {
    all: bool,
    mask: Vec<bool>,
    rows: Vec<u32>,
}

impl ActiveRows {
    fn new(n_rows: usize) -> Self {
        Self {
            all: false,
            mask: vec![false; n_rows],
            rows: Vec::new(),
        }
    }

    fn mark_all(&mut self) {
        self.all = true;
    }

    /// Unmarks everything, keeping the mask allocation.
    fn reset(&mut self) {
        self.all = false;
        for &r in &self.rows {
            self.mask[r as usize] = false;
        }
        self.rows.clear();
    }

    fn mark(&mut self, r: usize) {
        if self.all || self.mask[r] {
            return;
        }
        self.mask[r] = true;
        self.rows.push(r as u32);
    }

    /// Whether every row is active (the parameter was read densely).
    pub fn is_all(&self) -> bool {
        self.all
    }

    /// The individually-marked rows, in first-touch order. Meaningful only
    /// when [`ActiveRows::is_all`] is false.
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }
}

/// Owns model parameters and their gradient accumulators.
#[derive(Debug)]
pub struct ParamStore {
    names: Vec<&'static str>,
    values: Vec<Tensor>,
    /// Lazily allocated: `None` means "identically zero, never touched".
    grads: Vec<Option<Tensor>>,
    active: Vec<ActiveRows>,
    rng: StdRng,
}

impl ParamStore {
    /// Creates an empty store whose initializers draw from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            names: Vec::new(),
            values: Vec::new(),
            grads: Vec::new(),
            active: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Allocates a `rows x cols` parameter initialized per `init`. The
    /// gradient accumulator is allocated lazily, on the first `backward`
    /// that touches the parameter.
    pub fn tensor(&mut self, name: &'static str, rows: usize, cols: usize, init: Init) -> ParamId {
        let mut t = Tensor::zeros(rows, cols);
        match init {
            Init::Zeros => {}
            Init::Xavier => {
                let a = (6.0 / (rows + cols) as f32).sqrt();
                for v in t.data_mut() {
                    *v = self.rng.gen_range(-a..a);
                }
            }
            Init::Uniform(s) => {
                for v in t.data_mut() {
                    *v = self.rng.gen_range(-s..s);
                }
            }
        }
        self.names.push(name);
        self.values.push(t);
        self.grads.push(None);
        self.active.push(ActiveRows::new(rows));
        ParamId(self.values.len() - 1)
    }

    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Read access to a parameter value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable access to a parameter value (used by optimizers and tests).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Read access to a parameter gradient accumulator.
    ///
    /// # Panics
    /// Panics when no `backward` pass has ever touched the parameter (the
    /// accumulator is allocated lazily).
    pub fn grad(&self, id: ParamId) -> &Tensor {
        self.grads[id.0]
            .as_ref()
            .expect("parameter gradient never touched; run backward first")
    }

    /// Zeroes every allocated gradient accumulator.
    pub fn zero_grads(&mut self) {
        for g in self.grads.iter_mut().flatten() {
            g.zero();
        }
    }

    /// Iterates `(value, grad, active-rows)` triples — the optimizer update
    /// loop. A `None` gradient is identically zero (never touched).
    pub fn updates_mut(
        &mut self,
    ) -> impl Iterator<Item = (&mut Tensor, Option<&mut Tensor>, &ActiveRows)> {
        self.values
            .iter_mut()
            .zip(self.grads.iter_mut())
            .zip(self.active.iter())
            .map(|((v, g), a)| (v, g.as_mut(), a))
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Iterates the parameter value tensors in id order (for snapshots,
    /// diagnostics, and bitwise-identity tests).
    pub fn values(&self) -> impl Iterator<Item = &Tensor> {
        self.values.iter()
    }

    /// The gradient accumulator of `id`, allocated (zeroed) on first use,
    /// with every row marked active (a dense parameter read).
    fn grad_accum_all(&mut self, id: ParamId) -> &mut Tensor {
        self.active[id.0].mark_all();
        let (r, c) = (self.values[id.0].rows(), self.values[id.0].cols());
        self.grads[id.0].get_or_insert_with(|| Tensor::zeros(r, c))
    }

    /// The gradient accumulator of `id`, allocated (zeroed) on first use,
    /// with only `rows` marked active (an embedding gather).
    fn grad_accum_rows(&mut self, id: ParamId, rows: &[usize]) -> &mut Tensor {
        let act = &mut self.active[id.0];
        for &r in rows {
            act.mark(r);
        }
        let (r, c) = (self.values[id.0].rows(), self.values[id.0].cols());
        self.grads[id.0].get_or_insert_with(|| Tensor::zeros(r, c))
    }
}

/// A detached parameter-gradient accumulator with the same lazy-allocation
/// and active-row semantics as [`ParamStore`], but owning no parameters.
///
/// This is the building block of deterministic data-parallel training:
/// each worker runs [`Tape::backward_into`] against its own buffer
/// (reading the shared store immutably), and the buffers are then folded
/// into the store **in a fixed order** via [`GradBuffer::merge_into`] —
/// so the f32 reduction tree, and therefore the trained model, never
/// depends on how many threads produced the gradients.
///
/// Buffers are grow-only: [`GradBuffer::clear`] zeroes in place, so a
/// buffer reused across steps reaches a steady state with no allocation.
#[derive(Debug, Default)]
pub struct GradBuffer {
    /// Lazily allocated per parameter: `None` means "identically zero".
    grads: Vec<Option<Tensor>>,
    active: Vec<ActiveRows>,
    shapes: Vec<(usize, usize)>,
}

impl GradBuffer {
    /// An empty buffer; it sizes itself to the store on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes the buffer to `store` (no-op when already sized).
    ///
    /// # Panics
    /// Panics when the buffer was previously sized to a *different* store
    /// layout — buffers are not transferable between models.
    pub fn ensure(&mut self, store: &ParamStore) {
        if self.shapes.is_empty() {
            for v in &store.values {
                self.grads.push(None);
                self.active.push(ActiveRows::new(v.rows()));
                self.shapes.push((v.rows(), v.cols()));
            }
            return;
        }
        assert_eq!(
            self.shapes.len(),
            store.values.len(),
            "GradBuffer sized for a different ParamStore"
        );
    }

    /// Zeroes every allocated accumulator and unmarks all active rows,
    /// keeping the allocations for reuse.
    pub fn clear(&mut self) {
        for g in self.grads.iter_mut().flatten() {
            g.zero();
        }
        for a in &mut self.active {
            a.reset();
        }
    }

    /// Folds this buffer's gradients into the store's accumulators —
    /// parameters in id order, gathered rows in this buffer's first-touch
    /// order — exactly as if the contributing backward passes had run
    /// against the store directly.
    pub fn merge_into(&self, store: &mut ParamStore) {
        for (idx, grad) in self.grads.iter().enumerate() {
            let Some(g) = grad else { continue };
            let act = &self.active[idx];
            if act.all {
                store.grad_accum_all(ParamId(idx)).add_assign(g);
            } else if !act.rows.is_empty() {
                let store_act = &mut store.active[idx];
                for &r in &act.rows {
                    store_act.mark(r as usize);
                }
                let (r, c) = self.shapes[idx];
                let t = store.grads[idx].get_or_insert_with(|| Tensor::zeros(r, c));
                for &r in &act.rows {
                    let r = r as usize;
                    for (o, &s) in t.row_mut(r).iter_mut().zip(g.row(r)) {
                        *o += s;
                    }
                }
            }
        }
    }
}

/// Where `backward` sends parameter gradients: the shared store, or a
/// detached per-worker buffer. Both sinks accumulate with the identical
/// zero-filled-then-add arithmetic, so routing through a buffer plus
/// [`GradBuffer::merge_into`] is bit-for-bit the same as accumulating
/// into the store directly.
trait ParamGradSink {
    fn accum_all(&mut self, p: ParamId, grad: &Tensor);
    fn accum_rows(&mut self, p: ParamId, indices: &[usize], grad: &Tensor);
}

impl ParamGradSink for ParamStore {
    fn accum_all(&mut self, p: ParamId, grad: &Tensor) {
        self.grad_accum_all(p).add_assign(grad);
    }

    fn accum_rows(&mut self, p: ParamId, indices: &[usize], grad: &Tensor) {
        let g = self.grad_accum_rows(p, indices);
        for (r, &idx) in indices.iter().enumerate() {
            for (gv, &d) in g.row_mut(idx).iter_mut().zip(grad.row(r)) {
                *gv += d;
            }
        }
    }
}

impl ParamGradSink for GradBuffer {
    fn accum_all(&mut self, p: ParamId, grad: &Tensor) {
        self.active[p.0].mark_all();
        let (r, c) = self.shapes[p.0];
        self.grads[p.0]
            .get_or_insert_with(|| Tensor::zeros(r, c))
            .add_assign(grad);
    }

    fn accum_rows(&mut self, p: ParamId, indices: &[usize], grad: &Tensor) {
        let act = &mut self.active[p.0];
        for &r in indices {
            act.mark(r);
        }
        let (r, c) = self.shapes[p.0];
        let g = self.grads[p.0].get_or_insert_with(|| Tensor::zeros(r, c));
        for (r, &idx) in indices.iter().enumerate() {
            for (gv, &d) in g.row_mut(idx).iter_mut().zip(grad.row(r)) {
                *gv += d;
            }
        }
    }
}

enum Op {
    /// Leaf holding a constant input.
    Constant,
    /// Leaf reading parameter `p` in full.
    Param(ParamId),
    /// Rows of parameter `p` gathered by `indices` (an embedding lookup).
    Gather(ParamId, Vec<usize>),
    MatMul(NodeId, NodeId),
    Transpose(NodeId),
    /// Element-wise sum of two same-shape nodes.
    Add(NodeId, NodeId),
    /// `a + broadcast_rows(b)` where `b` is `1 x cols`.
    AddRow(NodeId, NodeId),
    /// Element-wise (Hadamard) product.
    Mul(NodeId, NodeId),
    Relu(NodeId),
    Tanh(NodeId),
    Scale(NodeId, f32),
    /// Row-wise softmax.
    Softmax(NodeId),
    /// Column-wise max over rows → `1 x cols`; remembers arg-max rows.
    MaxPool(NodeId, Vec<usize>),
    /// Horizontal concatenation of `1 x a` and `1 x b` → `1 x (a+b)`.
    ConcatCols(NodeId, NodeId),
    /// Copy of row `r` of the input as a `1 x cols` tensor.
    SelectRow(NodeId, usize),
    /// Mean binary cross-entropy with logits against fixed targets;
    /// produces a `1 x 1` scalar.
    BceWithLogits(NodeId, Vec<f32>),
}

struct Node {
    op: Op,
    value: Tensor,
    /// Lazily allocated by `backward`; `None` until gradient mass arrives.
    grad: Option<Tensor>,
}

/// Recycles tensor data buffers keyed by shape, so a reused tape performs
/// no steady-state allocation.
#[derive(Default)]
struct TensorPool {
    free: HashMap<(usize, usize), Vec<Vec<f32>>>,
}

impl TensorPool {
    fn put(&mut self, t: Tensor) {
        if t.is_empty() {
            return;
        }
        self.free
            .entry((t.rows(), t.cols()))
            .or_default()
            .push(t.into_vec());
    }

    /// A tensor whose contents are unspecified — the caller must overwrite
    /// every element before the tensor is read.
    fn take_uninit(&mut self, rows: usize, cols: usize) -> Tensor {
        match self.free.get_mut(&(rows, cols)).and_then(Vec::pop) {
            Some(data) => Tensor::from_vec(rows, cols, data),
            None => Tensor::zeros(rows, cols),
        }
    }

    fn take_zeroed(&mut self, rows: usize, cols: usize) -> Tensor {
        match self.free.get_mut(&(rows, cols)).and_then(Vec::pop) {
            Some(mut data) => {
                data.iter_mut().for_each(|v| *v = 0.0);
                Tensor::from_vec(rows, cols, data)
            }
            None => Tensor::zeros(rows, cols),
        }
    }

    fn take_copy(&mut self, src: &Tensor) -> Tensor {
        let mut t = self.take_uninit(src.rows(), src.cols());
        t.data_mut().copy_from_slice(src.data());
        t
    }
}

/// A single recorded computation. Create one per model and call
/// [`Tape::reset`] between forward passes to reuse its buffers.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    pool: TensorPool,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the recorded computation, recycling every value/gradient
    /// buffer into the shape-keyed pool and retaining node capacity. After
    /// a few steps of a fixed-shape model the tape allocates nothing.
    pub fn reset(&mut self) {
        while let Some(node) = self.nodes.pop() {
            self.pool.put(node.value);
            if let Some(g) = node.grad {
                self.pool.put(g);
            }
        }
    }

    fn push(&mut self, op: Op, value: Tensor) -> NodeId {
        self.nodes.push(Node {
            op,
            value,
            grad: None,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// The forward value of `id`.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// The gradient of the loss w.r.t. node `id` (valid after `backward`).
    ///
    /// # Panics
    /// Panics when no gradient mass ever reached the node (gradient
    /// buffers are allocated lazily).
    pub fn grad(&self, id: NodeId) -> &Tensor {
        self.nodes[id.0]
            .grad
            .as_ref()
            .expect("node received no gradient; run backward first")
    }

    /// Records a constant leaf.
    pub fn constant(&mut self, t: Tensor) -> NodeId {
        self.push(Op::Constant, t)
    }

    /// Records a full parameter read.
    pub fn param(&mut self, store: &ParamStore, p: ParamId) -> NodeId {
        let v = self.pool.take_copy(store.value(p));
        self.push(Op::Param(p), v)
    }

    /// Records an embedding gather: rows `indices` of parameter `p`,
    /// stacked in order.
    pub fn gather(&mut self, store: &ParamStore, p: ParamId, indices: &[usize]) -> NodeId {
        let table = store.value(p);
        let mut out = self.pool.take_uninit(indices.len(), table.cols());
        for (r, &i) in indices.iter().enumerate() {
            out.row_mut(r).copy_from_slice(table.row(i));
        }
        self.push(Op::Gather(p, indices.to_vec()), out)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let out = {
            let av = &self.nodes[a.0].value;
            let bv = &self.nodes[b.0].value;
            let mut out = self.pool.take_zeroed(av.rows(), bv.cols());
            av.matmul_into(bv, &mut out);
            out
        };
        self.push(Op::MatMul(a, b), out)
    }

    /// Transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let out = {
            let av = &self.nodes[a.0].value;
            let mut out = self.pool.take_uninit(av.cols(), av.rows());
            av.transpose_into(&mut out);
            out
        };
        self.push(Op::Transpose(a), out)
    }

    /// Element-wise sum (same shapes).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut v = self.pool.take_copy(&self.nodes[a.0].value);
        v.add_assign(&self.nodes[b.0].value);
        self.push(Op::Add(a, b), v)
    }

    /// Adds row-vector `b` (`1 x cols`) to every row of `a`.
    pub fn add_row(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = {
            let bv = &self.nodes[b.0].value;
            assert_eq!(bv.rows(), 1, "add_row bias must be 1 x cols");
            assert_eq!(bv.cols(), self.nodes[a.0].value.cols());
            let mut v = self.pool.take_copy(&self.nodes[a.0].value);
            for r in 0..v.rows() {
                for (x, bb) in v.row_mut(r).iter_mut().zip(bv.row(0)) {
                    *x += bb;
                }
            }
            v
        };
        self.push(Op::AddRow(a, b), v)
    }

    /// Element-wise product (same shapes).
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = {
            let av = &self.nodes[a.0].value;
            let bv = &self.nodes[b.0].value;
            assert_eq!((av.rows(), av.cols()), (bv.rows(), bv.cols()));
            let mut v = self.pool.take_uninit(av.rows(), av.cols());
            for ((o, &x), &y) in v.data_mut().iter_mut().zip(av.data()).zip(bv.data()) {
                *o = x * y;
            }
            v
        };
        self.push(Op::Mul(a, b), v)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let mut v = self.pool.take_copy(&self.nodes[a.0].value);
        for x in v.data_mut() {
            *x = x.max(0.0);
        }
        self.push(Op::Relu(a), v)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let mut v = self.pool.take_copy(&self.nodes[a.0].value);
        for x in v.data_mut() {
            *x = x.tanh();
        }
        self.push(Op::Tanh(a), v)
    }

    /// Multiplies every element by constant `s`.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let mut v = self.pool.take_copy(&self.nodes[a.0].value);
        v.scale_assign(s);
        self.push(Op::Scale(a, s), v)
    }

    /// Row-wise softmax (numerically stabilized).
    pub fn softmax(&mut self, a: NodeId) -> NodeId {
        let mut v = self.pool.take_copy(&self.nodes[a.0].value);
        for r in 0..v.rows() {
            let row = v.row_mut(r);
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - m).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
        self.push(Op::Softmax(a), v)
    }

    /// Column-wise max over rows, producing a `1 x cols` row. This is the
    /// max-pooling step that forms the *Neighborhood Encoding* in Fig. 2.
    pub fn max_pool(&mut self, a: NodeId) -> NodeId {
        let (out, argmax) = {
            let av = &self.nodes[a.0].value;
            assert!(av.rows() > 0, "max_pool over empty tensor");
            let mut out = self.pool.take_uninit(1, av.cols());
            let mut argmax = vec![0usize; av.cols()];
            for (c, am) in argmax.iter_mut().enumerate() {
                let mut best = f32::NEG_INFINITY;
                for r in 0..av.rows() {
                    let x = av.get(r, c);
                    if x > best {
                        best = x;
                        *am = r;
                    }
                }
                out.set(0, c, best);
            }
            (out, argmax)
        };
        self.push(Op::MaxPool(a, argmax), out)
    }

    /// Horizontal concatenation of two single-row tensors.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = {
            let av = &self.nodes[a.0].value;
            let bv = &self.nodes[b.0].value;
            assert_eq!(av.rows(), 1, "concat_cols expects row vectors");
            assert_eq!(bv.rows(), 1, "concat_cols expects row vectors");
            let (ac, bc) = (av.cols(), bv.cols());
            let mut v = self.pool.take_uninit(1, ac + bc);
            v.data_mut()[..ac].copy_from_slice(av.row(0));
            v.data_mut()[ac..].copy_from_slice(bv.row(0));
            v
        };
        self.push(Op::ConcatCols(a, b), v)
    }

    /// Copies row `r` of `a` into a fresh `1 x cols` node.
    pub fn select_row(&mut self, a: NodeId, r: usize) -> NodeId {
        let v = {
            let av = &self.nodes[a.0].value;
            let mut v = self.pool.take_uninit(1, av.cols());
            v.data_mut().copy_from_slice(av.row(r));
            v
        };
        self.push(Op::SelectRow(a, r), v)
    }

    /// Mean binary cross-entropy with logits. `logits` must contain exactly
    /// `targets.len()` elements (any shape); targets are in `{0, 1}` (soft
    /// targets also work). Returns a scalar node.
    pub fn bce_with_logits(&mut self, logits: NodeId, targets: &[f32]) -> NodeId {
        let v = {
            let lv = &self.nodes[logits.0].value;
            assert_eq!(lv.len(), targets.len(), "logits/targets length mismatch");
            let mut loss = 0.0f64;
            for (&z, &y) in lv.data().iter().zip(targets) {
                // log(1 + exp(-|z|)) + max(z, 0) - z*y, the stable form.
                let z = z as f64;
                let y = y as f64;
                loss += z.max(0.0) - z * y + (-z.abs()).exp().ln_1p();
            }
            loss /= targets.len() as f64;
            let mut v = self.pool.take_uninit(1, 1);
            v.data_mut()[0] = loss as f32;
            v
        };
        self.push(Op::BceWithLogits(logits, targets.to_vec()), v)
    }

    /// Accumulates `delta` into a node's lazily-allocated gradient,
    /// recycling `delta` when the slot already exists. The first-touch
    /// path stores `0.0 + delta` to bitwise-match the historical
    /// "zero-filled then add" accumulation (it canonicalizes `-0.0`).
    fn accum_owned(slot: &mut Option<Tensor>, pool: &mut TensorPool, mut delta: Tensor) {
        match slot {
            Some(g) => {
                g.add_assign(&delta);
                pool.put(delta);
            }
            None => {
                for v in delta.data_mut() {
                    *v += 0.0;
                }
                *slot = Some(delta);
            }
        }
    }

    /// Like [`Tape::accum_owned`] for a borrowed delta.
    fn accum_ref(slot: &mut Option<Tensor>, pool: &mut TensorPool, src: &Tensor) {
        match slot {
            Some(g) => g.add_assign(src),
            None => {
                let mut g = pool.take_uninit(src.rows(), src.cols());
                for (o, &s) in g.data_mut().iter_mut().zip(src.data()) {
                    *o = s + 0.0;
                }
                *slot = Some(g);
            }
        }
    }

    /// Runs the backward pass from `loss` (seeding its gradient with 1) and
    /// accumulates parameter gradients into `store`. Nodes the loss does
    /// not depend on — e.g. constants in a forward-only subgraph — never
    /// allocate a gradient buffer.
    ///
    /// # Panics
    /// Panics when `loss` is not a `1 x 1` scalar node.
    pub fn backward(&mut self, loss: NodeId, store: &mut ParamStore) {
        self.backward_impl(loss, store);
    }

    /// Like [`Tape::backward`], but accumulates parameter gradients into a
    /// detached [`GradBuffer`] instead of the store, which is only read.
    /// This is the data-parallel entry point: many tapes can run
    /// `backward_into` concurrently against the same store, each into its
    /// own buffer, with the buffers merged serially afterwards.
    pub fn backward_into(&mut self, loss: NodeId, store: &ParamStore, buf: &mut GradBuffer) {
        buf.ensure(store);
        self.backward_impl(loss, buf);
    }

    fn backward_impl<S: ParamGradSink>(&mut self, loss: NodeId, sink: &mut S) {
        assert_eq!(self.nodes[loss.0].value.len(), 1, "loss must be scalar");
        if self.nodes[loss.0].grad.is_none() {
            let seed = self.pool.take_zeroed(1, 1);
            self.nodes[loss.0].grad = Some(seed);
        }
        self.nodes[loss.0].grad.as_mut().unwrap().data_mut()[0] = 1.0;
        for i in (0..self.nodes.len()).rev() {
            // A node with no gradient buffer received no gradient mass;
            // nothing flows upstream from it.
            let Some(grad) = self.nodes[i].grad.take() else {
                continue;
            };
            // Take the op out so the match holds no borrow of `self.nodes`
            // (ops carry index/target vectors the arms read directly).
            let op = std::mem::replace(&mut self.nodes[i].op, Op::Constant);
            match &op {
                Op::Constant => {}
                Op::Param(p) => sink.accum_all(*p, &grad),
                Op::Gather(p, indices) => sink.accum_rows(*p, indices, &grad),
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    // da = grad @ b^T
                    let bt = {
                        let bv = &self.nodes[b.0].value;
                        let mut bt = self.pool.take_uninit(bv.cols(), bv.rows());
                        bv.transpose_into(&mut bt);
                        bt
                    };
                    let mut da = self.pool.take_zeroed(grad.rows(), bt.cols());
                    grad.matmul_into(&bt, &mut da);
                    self.pool.put(bt);
                    Self::accum_owned(&mut self.nodes[a.0].grad, &mut self.pool, da);
                    // db = a^T @ grad
                    let at = {
                        let av = &self.nodes[a.0].value;
                        let mut at = self.pool.take_uninit(av.cols(), av.rows());
                        av.transpose_into(&mut at);
                        at
                    };
                    let mut db = self.pool.take_zeroed(at.rows(), grad.cols());
                    at.matmul_into(&grad, &mut db);
                    self.pool.put(at);
                    Self::accum_owned(&mut self.nodes[b.0].grad, &mut self.pool, db);
                }
                Op::Transpose(a) => {
                    let mut da = self.pool.take_uninit(grad.cols(), grad.rows());
                    grad.transpose_into(&mut da);
                    Self::accum_owned(&mut self.nodes[a.0].grad, &mut self.pool, da);
                }
                Op::Add(a, b) => {
                    Self::accum_ref(&mut self.nodes[a.0].grad, &mut self.pool, &grad);
                    Self::accum_ref(&mut self.nodes[b.0].grad, &mut self.pool, &grad);
                }
                Op::AddRow(a, b) => {
                    Self::accum_ref(&mut self.nodes[a.0].grad, &mut self.pool, &grad);
                    let mut db = self.pool.take_zeroed(1, grad.cols());
                    for r in 0..grad.rows() {
                        for (o, &g) in db.row_mut(0).iter_mut().zip(grad.row(r)) {
                            *o += g;
                        }
                    }
                    Self::accum_owned(&mut self.nodes[b.0].grad, &mut self.pool, db);
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    let da = {
                        let bv = &self.nodes[b.0].value;
                        let mut da = self.pool.take_uninit(grad.rows(), grad.cols());
                        for ((o, &g), &x) in
                            da.data_mut().iter_mut().zip(grad.data()).zip(bv.data())
                        {
                            *o = g * x;
                        }
                        da
                    };
                    Self::accum_owned(&mut self.nodes[a.0].grad, &mut self.pool, da);
                    let db = {
                        let av = &self.nodes[a.0].value;
                        let mut db = self.pool.take_uninit(grad.rows(), grad.cols());
                        for ((o, &g), &x) in
                            db.data_mut().iter_mut().zip(grad.data()).zip(av.data())
                        {
                            *o = g * x;
                        }
                        db
                    };
                    Self::accum_owned(&mut self.nodes[b.0].grad, &mut self.pool, db);
                }
                Op::Relu(a) => {
                    let a = *a;
                    let da = {
                        let av = &self.nodes[a.0].value;
                        let mut da = self.pool.take_uninit(grad.rows(), grad.cols());
                        for ((o, &g), &x) in
                            da.data_mut().iter_mut().zip(grad.data()).zip(av.data())
                        {
                            *o = if x > 0.0 { g } else { 0.0 };
                        }
                        da
                    };
                    Self::accum_owned(&mut self.nodes[a.0].grad, &mut self.pool, da);
                }
                Op::Tanh(a) => {
                    let a = *a;
                    let da = {
                        let yv = &self.nodes[i].value;
                        let mut da = self.pool.take_uninit(grad.rows(), grad.cols());
                        for ((o, &g), &y) in
                            da.data_mut().iter_mut().zip(grad.data()).zip(yv.data())
                        {
                            *o = g * (1.0 - y * y);
                        }
                        da
                    };
                    Self::accum_owned(&mut self.nodes[a.0].grad, &mut self.pool, da);
                }
                Op::Scale(a, s) => {
                    let (a, s) = (*a, *s);
                    let mut da = self.pool.take_copy(&grad);
                    da.scale_assign(s);
                    Self::accum_owned(&mut self.nodes[a.0].grad, &mut self.pool, da);
                }
                Op::Softmax(a) => {
                    let a = *a;
                    let da = {
                        let y = &self.nodes[i].value;
                        let mut da = self.pool.take_uninit(grad.rows(), grad.cols());
                        for r in 0..grad.rows() {
                            let yr = y.row(r);
                            let gr = grad.row(r);
                            let dot: f32 = yr.iter().zip(gr).map(|(y, g)| y * g).sum();
                            for c in 0..grad.cols() {
                                da.set(r, c, yr[c] * (gr[c] - dot));
                            }
                        }
                        da
                    };
                    Self::accum_owned(&mut self.nodes[a.0].grad, &mut self.pool, da);
                }
                Op::MaxPool(a, argmax) => {
                    let a = *a;
                    let rows = self.nodes[a.0].value.rows();
                    let mut da = self.pool.take_zeroed(rows, grad.cols());
                    for (c, &r) in argmax.iter().enumerate() {
                        da.set(r, c, grad.get(0, c));
                    }
                    Self::accum_owned(&mut self.nodes[a.0].grad, &mut self.pool, da);
                }
                Op::ConcatCols(a, b) => {
                    let (a, b) = (*a, *b);
                    let ac = self.nodes[a.0].value.cols();
                    let mut da = self.pool.take_uninit(1, ac);
                    da.data_mut().copy_from_slice(&grad.row(0)[..ac]);
                    Self::accum_owned(&mut self.nodes[a.0].grad, &mut self.pool, da);
                    let mut db = self.pool.take_uninit(1, grad.cols() - ac);
                    db.data_mut().copy_from_slice(&grad.row(0)[ac..]);
                    Self::accum_owned(&mut self.nodes[b.0].grad, &mut self.pool, db);
                }
                Op::SelectRow(a, r) => {
                    let (a, r) = (*a, *r);
                    if self.nodes[a.0].grad.is_none() {
                        let (vr, vc) = {
                            let v = &self.nodes[a.0].value;
                            (v.rows(), v.cols())
                        };
                        let z = self.pool.take_zeroed(vr, vc);
                        self.nodes[a.0].grad = Some(z);
                    }
                    let g = self.nodes[a.0].grad.as_mut().expect("just ensured");
                    for (gv, &d) in g.row_mut(r).iter_mut().zip(grad.row(0)) {
                        *gv += d;
                    }
                }
                Op::BceWithLogits(logits, targets) => {
                    let logits = *logits;
                    let upstream = grad.data()[0];
                    let n = targets.len() as f32;
                    let dl = {
                        let lv = &self.nodes[logits.0].value;
                        let mut dl = self.pool.take_uninit(lv.rows(), lv.cols());
                        for (k, (&z, &y)) in lv.data().iter().zip(targets).enumerate() {
                            let sig = 1.0 / (1.0 + (-z).exp());
                            dl.data_mut()[k] = upstream * (sig - y) / n;
                        }
                        dl
                    };
                    Self::accum_owned(&mut self.nodes[logits.0].grad, &mut self.pool, dl);
                }
            }
            self.nodes[i].op = op;
            // Restore the node's grad (for inspection via `grad()`).
            self.nodes[i].grad = Some(grad);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central-difference gradient check of the parameter gradient produced
    /// by `f`. `f` builds a scalar loss from the store on a fresh tape.
    fn grad_check<F>(store: &mut ParamStore, p: ParamId, f: F)
    where
        F: Fn(&mut Tape, &ParamStore) -> NodeId,
    {
        // Analytical gradients.
        store.zero_grads();
        let mut tape = Tape::new();
        let loss = f(&mut tape, store);
        tape.backward(loss, store);
        let analytic = store.grad(p).clone();

        // Numerical gradients.
        let eps = 1e-3f32;
        let len = store.value(p).len();
        for k in 0..len {
            let orig = store.value(p).data()[k];
            store.value_mut(p).data_mut()[k] = orig + eps;
            let mut t1 = Tape::new();
            let l1 = f(&mut t1, store);
            let lp = t1.value(l1).data()[0];
            store.value_mut(p).data_mut()[k] = orig - eps;
            let mut t2 = Tape::new();
            let l2 = f(&mut t2, store);
            let lm = t2.value(l2).data()[0];
            store.value_mut(p).data_mut()[k] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.data()[k];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + a.abs().max(numeric.abs())),
                "param grad mismatch at {k}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn grad_check_linear_bce() {
        let mut store = ParamStore::new(1);
        let w = store.tensor("w", 3, 2, Init::Xavier);
        let b = store.tensor("b", 1, 2, Init::Xavier);
        for p in [w, b] {
            grad_check(&mut store, p, |tape, store| {
                let x = tape.constant(Tensor::from_rows(vec![
                    vec![0.5, -1.0, 2.0],
                    vec![1.5, 0.3, -0.7],
                ]));
                let wv = tape.param(store, w);
                let bv = tape.param(store, b);
                let h = tape.matmul(x, wv);
                let h = tape.add_row(h, bv);
                tape.bce_with_logits(h, &[1.0, 0.0, 0.0, 1.0])
            });
        }
    }

    #[test]
    fn grad_check_relu_tanh_chain() {
        let mut store = ParamStore::new(2);
        let w = store.tensor("w", 2, 3, Init::Xavier);
        grad_check(&mut store, w, |tape, store| {
            let x = tape.constant(Tensor::from_rows(vec![vec![1.0, -2.0]]));
            let wv = tape.param(store, w);
            let h = tape.matmul(x, wv);
            let h = tape.relu(h);
            let h = tape.tanh(h);
            let h = tape.scale(h, 1.7);
            tape.bce_with_logits(h, &[1.0, 0.0, 1.0])
        });
    }

    #[test]
    fn grad_check_softmax_attention() {
        let mut store = ParamStore::new(3);
        let wq = store.tensor("wq", 4, 4, Init::Xavier);
        let wk = store.tensor("wk", 4, 4, Init::Xavier);
        let wv = store.tensor("wv", 4, 4, Init::Xavier);
        let head = store.tensor("head", 4, 1, Init::Xavier);
        for p in [wq, wk, wv, head] {
            grad_check(&mut store, p, |tape, store| {
                let h = tape.constant(Tensor::from_rows(vec![
                    vec![0.1, 0.2, -0.3, 0.4],
                    vec![-0.5, 0.1, 0.9, -0.2],
                    vec![0.3, -0.8, 0.2, 0.6],
                ]));
                let q = {
                    let w = tape.param(store, wq);
                    tape.matmul(h, w)
                };
                let k = {
                    let w = tape.param(store, wk);
                    tape.matmul(h, w)
                };
                let v = {
                    let w = tape.param(store, wv);
                    tape.matmul(h, w)
                };
                let kt = tape.transpose(k);
                let scores = tape.matmul(q, kt);
                let scores = tape.scale(scores, 0.5);
                let att = tape.softmax(scores);
                let ctx = tape.matmul(att, v);
                let pooled = tape.max_pool(ctx);
                let hw = tape.param(store, head);
                let logit = tape.matmul(pooled, hw);
                tape.bce_with_logits(logit, &[1.0])
            });
        }
    }

    #[test]
    fn grad_check_gather_concat_select() {
        let mut store = ParamStore::new(4);
        let emb = store.tensor("emb", 5, 3, Init::Uniform(0.5));
        let head = store.tensor("head", 6, 1, Init::Xavier);
        for p in [emb, head] {
            grad_check(&mut store, p, |tape, store| {
                let rows = tape.gather(store, emb, &[0, 3, 3, 1]);
                let pooled = tape.max_pool(rows);
                let first = tape.select_row(rows, 0);
                let cat = tape.concat_cols(pooled, first);
                let hw = tape.param(store, head);
                let logit = tape.matmul(cat, hw);
                tape.bce_with_logits(logit, &[0.0])
            });
        }
    }

    #[test]
    fn grad_check_mul() {
        let mut store = ParamStore::new(5);
        let a = store.tensor("a", 1, 4, Init::Xavier);
        let b = store.tensor("b", 1, 4, Init::Xavier);
        for p in [a, b] {
            grad_check(&mut store, p, |tape, store| {
                let av = tape.param(store, a);
                let bv = tape.param(store, b);
                let m = tape.mul(av, bv);
                tape.bce_with_logits(m, &[1.0, 0.0, 1.0, 0.0])
            });
        }
    }

    #[test]
    fn reset_reuses_buffers_and_preserves_results() {
        // The same computation on a fresh tape and on a reset (recycled)
        // tape must agree bit for bit.
        let mut store = ParamStore::new(6);
        let w = store.tensor("w", 3, 2, Init::Xavier);
        let run = |tape: &mut Tape, store: &mut ParamStore| {
            let x = tape.constant(Tensor::from_rows(vec![vec![0.4, -1.2, 0.8]]));
            let wv = tape.param(store, w);
            let h = tape.matmul(x, wv);
            let h = tape.tanh(h);
            let loss = tape.bce_with_logits(h, &[1.0, 0.0]);
            tape.backward(loss, store);
            (tape.value(loss).data()[0], store.grad(w).clone())
        };
        let mut fresh = Tape::new();
        let (l_fresh, g_fresh) = run(&mut fresh, &mut store);
        store.zero_grads();
        let mut reused = Tape::new();
        reused.reset(); // no-op on empty
        let (l1, _) = run(&mut reused, &mut store);
        store.zero_grads();
        reused.reset();
        let (l2, g2) = run(&mut reused, &mut store);
        assert_eq!(l_fresh.to_bits(), l1.to_bits());
        assert_eq!(l1.to_bits(), l2.to_bits());
        assert_eq!(g_fresh, g2);
    }

    #[test]
    fn lazy_grads_skip_forward_only_passes() {
        // A forward-only pass allocates no parameter gradients at all.
        let mut store = ParamStore::new(7);
        let w = store.tensor("w", 2, 2, Init::Xavier);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_rows(vec![vec![1.0, 2.0]]));
        let wv = tape.param(&store, w);
        let _h = tape.matmul(x, wv);
        // No backward: the gradient accumulator must not exist.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = store.grad(w);
        }));
        assert!(
            result.is_err(),
            "grad should be unallocated before backward"
        );
    }

    #[test]
    fn active_rows_track_gathered_rows_only() {
        let mut store = ParamStore::new(8);
        let emb = store.tensor("emb", 10, 2, Init::Uniform(0.5));
        let mut tape = Tape::new();
        let rows = tape.gather(&store, emb, &[2, 7, 2]);
        let pooled = tape.max_pool(rows);
        let loss = tape.bce_with_logits(pooled, &[1.0, 0.0]);
        tape.backward(loss, &mut store);
        let (_, _, active) = store.updates_mut().next().unwrap();
        assert!(!active.is_all());
        let mut touched: Vec<u32> = active.rows().to_vec();
        touched.sort_unstable();
        assert_eq!(touched, vec![2, 7]);
    }

    #[test]
    fn bce_known_value() {
        let mut tape = Tape::new();
        let z = tape.constant(Tensor::from_vec(1, 1, vec![0.0]));
        let loss = tape.bce_with_logits(z, &[1.0]);
        // -log(sigmoid(0)) = ln 2
        assert!((tape.value(loss).data()[0] - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_rows(vec![
            vec![100.0, 100.0, 100.0],
            vec![-50.0, 0.0, 50.0],
        ]));
        let s = tape.softmax(x);
        for r in 0..2 {
            let sum: f32 = tape.value(s).row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Uniform case.
        assert!((tape.value(s).get(0, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn max_pool_takes_column_maxima() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_rows(vec![
            vec![1.0, 9.0, 3.0],
            vec![7.0, 2.0, 5.0],
        ]));
        let p = tape.max_pool(x);
        assert_eq!(tape.value(p).data(), &[7.0, 9.0, 5.0]);
    }

    #[test]
    fn xavier_init_bounded_and_seeded() {
        let mut s1 = ParamStore::new(9);
        let mut s2 = ParamStore::new(9);
        let p1 = s1.tensor("w", 10, 10, Init::Xavier);
        let p2 = s2.tensor("w", 10, 10, Init::Xavier);
        assert_eq!(s1.value(p1), s2.value(p2));
        let a = (6.0f32 / 20.0).sqrt();
        assert!(s1.value(p1).data().iter().all(|v| v.abs() <= a));
        assert_eq!(s1.num_scalars(), 100);
    }

    #[test]
    fn backward_into_buffer_merge_matches_direct_backward() {
        // backward → store and backward_into → buffer → merge_into must
        // produce bitwise-identical accumulators and active-row sets, for
        // dense params and sparse gathers alike, including when several
        // buffers fold into one store.
        let build = || {
            let mut store = ParamStore::new(17);
            let emb = store.tensor("emb", 12, 3, Init::Uniform(0.4));
            let w = store.tensor("w", 6, 1, Init::Xavier);
            (store, emb, w)
        };
        let passes: [&[usize]; 3] = [&[1, 4, 4, 9], &[0, 9, 2], &[7, 1]];
        let run_pass =
            |tape: &mut Tape, store: &ParamStore, emb: ParamId, w: ParamId, idx: &[usize]| {
                tape.reset();
                let rows = tape.gather(store, emb, idx);
                let pooled = tape.max_pool(rows);
                let first = tape.select_row(rows, 0);
                let cat = tape.concat_cols(pooled, first);
                let wv = tape.param(store, w);
                let logit = tape.matmul(cat, wv);
                tape.bce_with_logits(logit, &[1.0])
            };

        // Reference: every pass accumulates straight into the store.
        let (mut s1, emb1, w1) = build();
        let mut tape = Tape::new();
        for idx in passes {
            let loss = run_pass(&mut tape, &s1, emb1, w1, idx);
            tape.backward(loss, &mut s1);
        }

        // Buffered: one buffer per pass, merged in pass order.
        let (mut s2, emb2, w2) = build();
        let mut bufs: Vec<GradBuffer> = (0..passes.len()).map(|_| GradBuffer::new()).collect();
        for (idx, buf) in passes.iter().zip(&mut bufs) {
            let loss = run_pass(&mut tape, &s2, emb2, w2, idx);
            tape.backward_into(loss, &s2, buf);
        }
        for buf in &bufs {
            buf.merge_into(&mut s2);
        }

        for p in [emb1, w1] {
            assert_eq!(s1.grad(p), s2.grad(p));
        }
        let rows1: Vec<Vec<u32>> = s1.active.iter().map(|a| a.rows.clone()).collect();
        let rows2: Vec<Vec<u32>> = s2.active.iter().map(|a| a.rows.clone()).collect();
        assert_eq!(rows1, rows2, "first-touch row order must be preserved");

        // A cleared, reused buffer behaves like a fresh one.
        let mut reused = GradBuffer::new();
        let (mut s3, emb3, w3) = build();
        for idx in passes {
            let loss = run_pass(&mut tape, &s3, emb3, w3, idx);
            reused.clear();
            tape.backward_into(loss, &s3, &mut reused);
            reused.merge_into(&mut s3);
        }
        for (p1, p3) in [(emb1, emb3), (w1, w3)] {
            assert_eq!(s1.grad(p1), s3.grad(p3));
        }
    }

    #[test]
    fn training_reduces_loss() {
        use crate::optim::{Optimizer, Sgd};
        let mut store = ParamStore::new(11);
        let w = store.tensor("w", 2, 1, Init::Xavier);
        let mut opt = Sgd::new(0.5);
        let run = |store: &mut ParamStore| {
            let mut tape = Tape::new();
            let x = tape.constant(Tensor::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]));
            let wv = tape.param(store, w);
            let z = tape.matmul(x, wv);
            let loss = tape.bce_with_logits(z, &[1.0, 0.0]);
            (tape, loss)
        };
        let (t0, l0) = run(&mut store);
        let initial = t0.value(l0).data()[0];
        for _ in 0..200 {
            store.zero_grads();
            let (mut tape, loss) = run(&mut store);
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        let (t1, l1) = run(&mut store);
        let final_loss = t1.value(l1).data()[0];
        assert!(final_loss < initial * 0.2, "{final_loss} !< {initial}");
    }
}
