//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records a computation as a flat list of nodes; calling
//! [`Tape::backward`] walks the list in reverse, propagating gradients and
//! accumulating parameter gradients into the shared [`ParamStore`].
//!
//! The op set is exactly what the Fig.-2 importance model needs:
//! constants, parameter reads, embedding gathers, matmul, transpose,
//! row-broadcast add, element-wise add/mul/ReLU/tanh, scalar scale, row
//! softmax, column-wise max-pool, row concatenation, row selection, and a
//! binary-cross-entropy-with-logits loss head.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(usize);

/// Handle to a parameter tensor in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamId(usize);

/// Weight initialization schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (for biases).
    Zeros,
    /// Uniform Xavier/Glorot: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    Xavier,
    /// Uniform in `(-scale, scale)` (for embedding tables).
    Uniform(f32),
}

/// Owns model parameters and their gradient accumulators.
#[derive(Debug)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
    rng: StdRng,
}

impl ParamStore {
    /// Creates an empty store whose initializers draw from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            names: Vec::new(),
            values: Vec::new(),
            grads: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Allocates a `rows x cols` parameter initialized per `init`.
    pub fn tensor(&mut self, name: &str, rows: usize, cols: usize, init: Init) -> ParamId {
        let mut t = Tensor::zeros(rows, cols);
        match init {
            Init::Zeros => {}
            Init::Xavier => {
                let a = (6.0 / (rows + cols) as f32).sqrt();
                for v in t.data_mut() {
                    *v = self.rng.gen_range(-a..a);
                }
            }
            Init::Uniform(s) => {
                for v in t.data_mut() {
                    *v = self.rng.gen_range(-s..s);
                }
            }
        }
        self.names.push(name.to_string());
        self.values.push(t);
        self.grads.push(Tensor::zeros(rows, cols));
        ParamId(self.values.len() - 1)
    }

    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Read access to a parameter value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable access to a parameter value (used by optimizers and tests).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Read access to a parameter gradient accumulator.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Zeroes every gradient accumulator.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.zero();
        }
    }

    /// Iterates `(value, grad)` pairs mutably — the optimizer update loop.
    pub fn pairs_mut(&mut self) -> impl Iterator<Item = (&mut Tensor, &mut Tensor)> {
        self.values.iter_mut().zip(self.grads.iter_mut())
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }
}

enum Op {
    /// Leaf holding a constant input.
    Constant,
    /// Leaf reading parameter `p` in full.
    Param(ParamId),
    /// Rows of parameter `p` gathered by `indices` (an embedding lookup).
    Gather(ParamId, Vec<usize>),
    MatMul(NodeId, NodeId),
    Transpose(NodeId),
    /// Element-wise sum of two same-shape nodes.
    Add(NodeId, NodeId),
    /// `a + broadcast_rows(b)` where `b` is `1 x cols`.
    AddRow(NodeId, NodeId),
    /// Element-wise (Hadamard) product.
    Mul(NodeId, NodeId),
    Relu(NodeId),
    Tanh(NodeId),
    Scale(NodeId, f32),
    /// Row-wise softmax.
    Softmax(NodeId),
    /// Column-wise max over rows → `1 x cols`; remembers arg-max rows.
    MaxPool(NodeId, Vec<usize>),
    /// Horizontal concatenation of `1 x a` and `1 x b` → `1 x (a+b)`.
    ConcatCols(NodeId, NodeId),
    /// Copy of row `r` of the input as a `1 x cols` tensor.
    SelectRow(NodeId, usize),
    /// Mean binary cross-entropy with logits against fixed targets;
    /// produces a `1 x 1` scalar.
    BceWithLogits(NodeId, Vec<f32>),
}

struct Node {
    op: Op,
    value: Tensor,
    grad: Tensor,
}

/// A single recorded computation. Create one per forward pass.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, op: Op, value: Tensor) -> NodeId {
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.nodes.push(Node { op, value, grad });
        NodeId(self.nodes.len() - 1)
    }

    /// The forward value of `id`.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// The gradient of the loss w.r.t. node `id` (valid after `backward`).
    pub fn grad(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].grad
    }

    /// Records a constant leaf.
    pub fn constant(&mut self, t: Tensor) -> NodeId {
        self.push(Op::Constant, t)
    }

    /// Records a full parameter read.
    pub fn param(&mut self, store: &ParamStore, p: ParamId) -> NodeId {
        let v = store.value(p).clone();
        self.push(Op::Param(p), v)
    }

    /// Records an embedding gather: rows `indices` of parameter `p`,
    /// stacked in order.
    pub fn gather(&mut self, store: &ParamStore, p: ParamId, indices: &[usize]) -> NodeId {
        let table = store.value(p);
        let mut out = Tensor::zeros(indices.len(), table.cols());
        for (r, &i) in indices.iter().enumerate() {
            out.row_mut(r).copy_from_slice(table.row(i));
        }
        self.push(Op::Gather(p, indices.to_vec()), out)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), v)
    }

    /// Transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).transpose();
        self.push(Op::Transpose(a), v)
    }

    /// Element-wise sum (same shapes).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut v = self.value(a).clone();
        v.add_assign(self.value(b));
        self.push(Op::Add(a, b), v)
    }

    /// Adds row-vector `b` (`1 x cols`) to every row of `a`.
    pub fn add_row(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let bv = self.value(b);
        assert_eq!(bv.rows(), 1, "add_row bias must be 1 x cols");
        assert_eq!(bv.cols(), self.value(a).cols());
        let mut v = self.value(a).clone();
        let brow: Vec<f32> = bv.row(0).to_vec();
        for r in 0..v.rows() {
            for (x, bb) in v.row_mut(r).iter_mut().zip(&brow) {
                *x += bb;
            }
        }
        self.push(Op::AddRow(a, b), v)
    }

    /// Element-wise product (same shapes).
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let av = self.value(a);
        let bv = self.value(b);
        assert_eq!((av.rows(), av.cols()), (bv.rows(), bv.cols()));
        let data = av
            .data()
            .iter()
            .zip(bv.data())
            .map(|(x, y)| x * y)
            .collect();
        let v = Tensor::from_vec(av.rows(), av.cols(), data);
        self.push(Op::Mul(a, b), v)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let mut v = self.value(a).clone();
        for x in v.data_mut() {
            *x = x.max(0.0);
        }
        self.push(Op::Relu(a), v)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let mut v = self.value(a).clone();
        for x in v.data_mut() {
            *x = x.tanh();
        }
        self.push(Op::Tanh(a), v)
    }

    /// Multiplies every element by constant `s`.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let mut v = self.value(a).clone();
        v.scale_assign(s);
        self.push(Op::Scale(a, s), v)
    }

    /// Row-wise softmax (numerically stabilized).
    pub fn softmax(&mut self, a: NodeId) -> NodeId {
        let mut v = self.value(a).clone();
        for r in 0..v.rows() {
            let row = v.row_mut(r);
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - m).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
        self.push(Op::Softmax(a), v)
    }

    /// Column-wise max over rows, producing a `1 x cols` row. This is the
    /// max-pooling step that forms the *Neighborhood Encoding* in Fig. 2.
    pub fn max_pool(&mut self, a: NodeId) -> NodeId {
        let av = self.value(a);
        assert!(av.rows() > 0, "max_pool over empty tensor");
        let mut out = Tensor::zeros(1, av.cols());
        let mut argmax = vec![0usize; av.cols()];
        for (c, am) in argmax.iter_mut().enumerate() {
            let mut best = f32::NEG_INFINITY;
            for r in 0..av.rows() {
                let x = av.get(r, c);
                if x > best {
                    best = x;
                    *am = r;
                }
            }
            out.set(0, c, best);
        }
        self.push(Op::MaxPool(a, argmax), out)
    }

    /// Horizontal concatenation of two single-row tensors.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let av = self.value(a);
        let bv = self.value(b);
        assert_eq!(av.rows(), 1, "concat_cols expects row vectors");
        assert_eq!(bv.rows(), 1, "concat_cols expects row vectors");
        let mut data = av.row(0).to_vec();
        data.extend_from_slice(bv.row(0));
        let cols = data.len();
        self.push(Op::ConcatCols(a, b), Tensor::from_vec(1, cols, data))
    }

    /// Copies row `r` of `a` into a fresh `1 x cols` node.
    pub fn select_row(&mut self, a: NodeId, r: usize) -> NodeId {
        let av = self.value(a);
        let v = Tensor::from_vec(1, av.cols(), av.row(r).to_vec());
        self.push(Op::SelectRow(a, r), v)
    }

    /// Mean binary cross-entropy with logits. `logits` must contain exactly
    /// `targets.len()` elements (any shape); targets are in `{0, 1}` (soft
    /// targets also work). Returns a scalar node.
    pub fn bce_with_logits(&mut self, logits: NodeId, targets: &[f32]) -> NodeId {
        let lv = self.value(logits);
        assert_eq!(lv.len(), targets.len(), "logits/targets length mismatch");
        let mut loss = 0.0f64;
        for (&z, &y) in lv.data().iter().zip(targets) {
            // log(1 + exp(-|z|)) + max(z, 0) - z*y, the stable form.
            let z = z as f64;
            let y = y as f64;
            loss += z.max(0.0) - z * y + (-z.abs()).exp().ln_1p();
        }
        loss /= targets.len() as f64;
        let v = Tensor::from_vec(1, 1, vec![loss as f32]);
        self.push(Op::BceWithLogits(logits, targets.to_vec()), v)
    }

    /// Runs the backward pass from `loss` (seeding its gradient with 1) and
    /// accumulates parameter gradients into `store`.
    ///
    /// # Panics
    /// Panics when `loss` is not a `1 x 1` scalar node.
    pub fn backward(&mut self, loss: NodeId, store: &mut ParamStore) {
        assert_eq!(self.nodes[loss.0].value.len(), 1, "loss must be scalar");
        self.nodes[loss.0].grad.data_mut()[0] = 1.0;
        for i in (0..self.nodes.len()).rev() {
            // Take the node's gradient out to satisfy the borrow checker;
            // the node's own grad is final once we reach it (reverse
            // topological order — node inputs always have smaller ids).
            let grad = std::mem::replace(&mut self.nodes[i].grad, Tensor::zeros(0, 0));
            match &self.nodes[i].op {
                Op::Constant => {}
                Op::Param(p) => store.grads[p.0].add_assign(&grad),
                Op::Gather(p, indices) => {
                    let g = &mut store.grads[p.0];
                    for (r, &idx) in indices.iter().enumerate() {
                        for (gv, &d) in g.row_mut(idx).iter_mut().zip(grad.row(r)) {
                            *gv += d;
                        }
                    }
                }
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    let da = grad.matmul(&self.nodes[b.0].value.transpose());
                    let db = self.nodes[a.0].value.transpose().matmul(&grad);
                    self.nodes[a.0].grad.add_assign(&da);
                    self.nodes[b.0].grad.add_assign(&db);
                }
                Op::Transpose(a) => {
                    let a = *a;
                    let da = grad.transpose();
                    self.nodes[a.0].grad.add_assign(&da);
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    self.nodes[a.0].grad.add_assign(&grad);
                    self.nodes[b.0].grad.add_assign(&grad);
                }
                Op::AddRow(a, b) => {
                    let (a, b) = (*a, *b);
                    self.nodes[a.0].grad.add_assign(&grad);
                    let cols = grad.cols();
                    let mut db = Tensor::zeros(1, cols);
                    for r in 0..grad.rows() {
                        for (o, &g) in db.row_mut(0).iter_mut().zip(grad.row(r)) {
                            *o += g;
                        }
                    }
                    self.nodes[b.0].grad.add_assign(&db);
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    let av = self.nodes[a.0].value.clone();
                    let bv = self.nodes[b.0].value.clone();
                    let da = Tensor::from_vec(
                        grad.rows(),
                        grad.cols(),
                        grad.data()
                            .iter()
                            .zip(bv.data())
                            .map(|(g, x)| g * x)
                            .collect(),
                    );
                    let db = Tensor::from_vec(
                        grad.rows(),
                        grad.cols(),
                        grad.data()
                            .iter()
                            .zip(av.data())
                            .map(|(g, x)| g * x)
                            .collect(),
                    );
                    self.nodes[a.0].grad.add_assign(&da);
                    self.nodes[b.0].grad.add_assign(&db);
                }
                Op::Relu(a) => {
                    let a = *a;
                    let av = &self.nodes[a.0].value;
                    let da = Tensor::from_vec(
                        grad.rows(),
                        grad.cols(),
                        grad.data()
                            .iter()
                            .zip(av.data())
                            .map(|(g, x)| if *x > 0.0 { *g } else { 0.0 })
                            .collect(),
                    );
                    self.nodes[a.0].grad.add_assign(&da);
                }
                Op::Tanh(a) => {
                    let a = *a;
                    let yv = &self.nodes[i].value;
                    let da = Tensor::from_vec(
                        grad.rows(),
                        grad.cols(),
                        grad.data()
                            .iter()
                            .zip(yv.data())
                            .map(|(g, y)| g * (1.0 - y * y))
                            .collect(),
                    );
                    self.nodes[a.0].grad.add_assign(&da);
                }
                Op::Scale(a, s) => {
                    let (a, s) = (*a, *s);
                    let mut da = grad.clone();
                    da.scale_assign(s);
                    self.nodes[a.0].grad.add_assign(&da);
                }
                Op::Softmax(a) => {
                    let a = *a;
                    let y = &self.nodes[i].value;
                    let mut da = Tensor::zeros(grad.rows(), grad.cols());
                    for r in 0..grad.rows() {
                        let yr = y.row(r);
                        let gr = grad.row(r);
                        let dot: f32 = yr.iter().zip(gr).map(|(y, g)| y * g).sum();
                        for c in 0..grad.cols() {
                            da.set(r, c, yr[c] * (gr[c] - dot));
                        }
                    }
                    self.nodes[a.0].grad.add_assign(&da);
                }
                Op::MaxPool(a, argmax) => {
                    let a = *a;
                    let argmax = argmax.clone();
                    let rows = self.nodes[a.0].value.rows();
                    let mut da = Tensor::zeros(rows, grad.cols());
                    for (c, &r) in argmax.iter().enumerate() {
                        da.set(r, c, grad.get(0, c));
                    }
                    self.nodes[a.0].grad.add_assign(&da);
                }
                Op::ConcatCols(a, b) => {
                    let (a, b) = (*a, *b);
                    let ac = self.nodes[a.0].value.cols();
                    let da = Tensor::from_vec(1, ac, grad.row(0)[..ac].to_vec());
                    let db = Tensor::from_vec(1, grad.cols() - ac, grad.row(0)[ac..].to_vec());
                    self.nodes[a.0].grad.add_assign(&da);
                    self.nodes[b.0].grad.add_assign(&db);
                }
                Op::SelectRow(a, r) => {
                    let (a, r) = (*a, *r);
                    for (gv, &g) in self.nodes[a.0].grad.row_mut(r).iter_mut().zip(grad.row(0)) {
                        *gv += g;
                    }
                }
                Op::BceWithLogits(logits, targets) => {
                    let logits = *logits;
                    let targets = targets.clone();
                    let upstream = grad.data()[0];
                    let n = targets.len() as f32;
                    let lv = self.nodes[logits.0].value.clone();
                    let mut dl = Tensor::zeros(lv.rows(), lv.cols());
                    for (k, (&z, &y)) in lv.data().iter().zip(&targets).enumerate() {
                        let sig = 1.0 / (1.0 + (-z).exp());
                        dl.data_mut()[k] = upstream * (sig - y) / n;
                    }
                    self.nodes[logits.0].grad.add_assign(&dl);
                }
            }
            // Restore the node's grad (for inspection via `grad()`).
            self.nodes[i].grad = grad;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central-difference gradient check of the parameter gradient produced
    /// by `f`. `f` builds a scalar loss from the store on a fresh tape.
    fn grad_check<F>(store: &mut ParamStore, p: ParamId, f: F)
    where
        F: Fn(&mut Tape, &ParamStore) -> NodeId,
    {
        // Analytical gradients.
        store.zero_grads();
        let mut tape = Tape::new();
        let loss = f(&mut tape, store);
        tape.backward(loss, store);
        let analytic = store.grad(p).clone();

        // Numerical gradients.
        let eps = 1e-3f32;
        let len = store.value(p).len();
        for k in 0..len {
            let orig = store.value(p).data()[k];
            store.value_mut(p).data_mut()[k] = orig + eps;
            let mut t1 = Tape::new();
            let l1 = f(&mut t1, store);
            let lp = t1.value(l1).data()[0];
            store.value_mut(p).data_mut()[k] = orig - eps;
            let mut t2 = Tape::new();
            let l2 = f(&mut t2, store);
            let lm = t2.value(l2).data()[0];
            store.value_mut(p).data_mut()[k] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.data()[k];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + a.abs().max(numeric.abs())),
                "param grad mismatch at {k}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn grad_check_linear_bce() {
        let mut store = ParamStore::new(1);
        let w = store.tensor("w", 3, 2, Init::Xavier);
        let b = store.tensor("b", 1, 2, Init::Xavier);
        for p in [w, b] {
            grad_check(&mut store, p, |tape, store| {
                let x = tape.constant(Tensor::from_rows(vec![
                    vec![0.5, -1.0, 2.0],
                    vec![1.5, 0.3, -0.7],
                ]));
                let wv = tape.param(store, w);
                let bv = tape.param(store, b);
                let h = tape.matmul(x, wv);
                let h = tape.add_row(h, bv);
                tape.bce_with_logits(h, &[1.0, 0.0, 0.0, 1.0])
            });
        }
    }

    #[test]
    fn grad_check_relu_tanh_chain() {
        let mut store = ParamStore::new(2);
        let w = store.tensor("w", 2, 3, Init::Xavier);
        grad_check(&mut store, w, |tape, store| {
            let x = tape.constant(Tensor::from_rows(vec![vec![1.0, -2.0]]));
            let wv = tape.param(store, w);
            let h = tape.matmul(x, wv);
            let h = tape.relu(h);
            let h = tape.tanh(h);
            let h = tape.scale(h, 1.7);
            tape.bce_with_logits(h, &[1.0, 0.0, 1.0])
        });
    }

    #[test]
    fn grad_check_softmax_attention() {
        let mut store = ParamStore::new(3);
        let wq = store.tensor("wq", 4, 4, Init::Xavier);
        let wk = store.tensor("wk", 4, 4, Init::Xavier);
        let wv = store.tensor("wv", 4, 4, Init::Xavier);
        let head = store.tensor("head", 4, 1, Init::Xavier);
        for p in [wq, wk, wv, head] {
            grad_check(&mut store, p, |tape, store| {
                let h = tape.constant(Tensor::from_rows(vec![
                    vec![0.1, 0.2, -0.3, 0.4],
                    vec![-0.5, 0.1, 0.9, -0.2],
                    vec![0.3, -0.8, 0.2, 0.6],
                ]));
                let q = {
                    let w = tape.param(store, wq);
                    tape.matmul(h, w)
                };
                let k = {
                    let w = tape.param(store, wk);
                    tape.matmul(h, w)
                };
                let v = {
                    let w = tape.param(store, wv);
                    tape.matmul(h, w)
                };
                let kt = tape.transpose(k);
                let scores = tape.matmul(q, kt);
                let scores = tape.scale(scores, 0.5);
                let att = tape.softmax(scores);
                let ctx = tape.matmul(att, v);
                let pooled = tape.max_pool(ctx);
                let hw = tape.param(store, head);
                let logit = tape.matmul(pooled, hw);
                tape.bce_with_logits(logit, &[1.0])
            });
        }
    }

    #[test]
    fn grad_check_gather_concat_select() {
        let mut store = ParamStore::new(4);
        let emb = store.tensor("emb", 5, 3, Init::Uniform(0.5));
        let head = store.tensor("head", 6, 1, Init::Xavier);
        for p in [emb, head] {
            grad_check(&mut store, p, |tape, store| {
                let rows = tape.gather(store, emb, &[0, 3, 3, 1]);
                let pooled = tape.max_pool(rows);
                let first = tape.select_row(rows, 0);
                let cat = tape.concat_cols(pooled, first);
                let hw = tape.param(store, head);
                let logit = tape.matmul(cat, hw);
                tape.bce_with_logits(logit, &[0.0])
            });
        }
    }

    #[test]
    fn grad_check_mul() {
        let mut store = ParamStore::new(5);
        let a = store.tensor("a", 1, 4, Init::Xavier);
        let b = store.tensor("b", 1, 4, Init::Xavier);
        for p in [a, b] {
            grad_check(&mut store, p, |tape, store| {
                let av = tape.param(store, a);
                let bv = tape.param(store, b);
                let m = tape.mul(av, bv);
                tape.bce_with_logits(m, &[1.0, 0.0, 1.0, 0.0])
            });
        }
    }

    #[test]
    fn bce_known_value() {
        let mut tape = Tape::new();
        let z = tape.constant(Tensor::from_vec(1, 1, vec![0.0]));
        let loss = tape.bce_with_logits(z, &[1.0]);
        // -log(sigmoid(0)) = ln 2
        assert!((tape.value(loss).data()[0] - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_rows(vec![
            vec![100.0, 100.0, 100.0],
            vec![-50.0, 0.0, 50.0],
        ]));
        let s = tape.softmax(x);
        for r in 0..2 {
            let sum: f32 = tape.value(s).row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Uniform case.
        assert!((tape.value(s).get(0, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn max_pool_takes_column_maxima() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_rows(vec![
            vec![1.0, 9.0, 3.0],
            vec![7.0, 2.0, 5.0],
        ]));
        let p = tape.max_pool(x);
        assert_eq!(tape.value(p).data(), &[7.0, 9.0, 5.0]);
    }

    #[test]
    fn xavier_init_bounded_and_seeded() {
        let mut s1 = ParamStore::new(9);
        let mut s2 = ParamStore::new(9);
        let p1 = s1.tensor("w", 10, 10, Init::Xavier);
        let p2 = s2.tensor("w", 10, 10, Init::Xavier);
        assert_eq!(s1.value(p1), s2.value(p2));
        let a = (6.0f32 / 20.0).sqrt();
        assert!(s1.value(p1).data().iter().all(|v| v.abs() <= a));
        assert_eq!(s1.num_scalars(), 100);
    }

    #[test]
    fn training_reduces_loss() {
        use crate::optim::{Optimizer, Sgd};
        let mut store = ParamStore::new(11);
        let w = store.tensor("w", 2, 1, Init::Xavier);
        let mut opt = Sgd::new(0.5);
        let run = |store: &mut ParamStore| {
            let mut tape = Tape::new();
            let x = tape.constant(Tensor::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]));
            let wv = tape.param(store, w);
            let z = tape.matmul(x, wv);
            let loss = tape.bce_with_logits(z, &[1.0, 0.0]);
            (tape, loss)
        };
        let (t0, l0) = run(&mut store);
        let initial = t0.value(l0).data()[0];
        for _ in 0..200 {
            store.zero_grads();
            let (mut tape, loss) = run(&mut store);
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        let (t1, l1) = run(&mut store);
        let final_loss = t1.value(l1).data()[0];
        assert!(final_loss < initial * 0.2, "{final_loss} !< {initial}");
    }
}
