//! Counters, gauges, and fixed-bucket histograms behind a name-keyed
//! registry, plus the Prometheus-style text exposition.
//!
//! Metric names may carry inline Prometheus labels —
//! `fieldswap_cache_hits_total{cache="phrases"}` — which the renderer
//! splits so `# TYPE` lines refer to the bare family name and extra
//! labels (histogram quantiles) merge into the existing label set.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A fixed-bucket histogram with lock-free observation.
///
/// Buckets are defined by ascending upper bounds plus one implicit
/// overflow bucket; observations update per-bucket atomic counters, a
/// running count/sum, and the observed min/max. Percentiles are
/// estimated by linear interpolation inside the bucket containing the
/// requested rank (the overflow bucket reports the observed maximum).
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// `f64` bits, updated via compare-exchange.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    /// A histogram over `bounds` (ascending upper bounds; an overflow
    /// bucket is added automatically).
    pub fn new(bounds: Vec<f64>) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds not ascending"
        );
        let n = bounds.len() + 1;
        Self {
            bounds,
            buckets: (0..n).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// The default bounds used by the registry: a 1-2-5 decade series
    /// from `0.001` to `5e6`, which covers sub-microsecond to ~90-minute
    /// millisecond timings and most count-like values.
    pub fn default_bounds() -> Vec<f64> {
        let mut out = Vec::with_capacity(30);
        for exp in -3i32..=6 {
            let base = 10f64.powi(exp);
            for m in [1.0, 2.0, 5.0] {
                out.push(base * m);
            }
        }
        out
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .partition_point(|&b| b < value)
            .min(self.buckets.len() - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        update_float(&self.sum_bits, |s| s + value);
        update_float(&self.min_bits, |m| m.min(value));
        update_float(&self.max_bits, |m| m.max(value));
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The ascending finite upper bounds this histogram was built with.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// A snapshot of the per-bucket counts. One entry per finite bound
    /// plus the trailing overflow (`+Inf`) bucket, so
    /// `bucket_counts().len() == bounds().len() + 1`.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Observations that exceeded the top finite bound — the `+Inf`
    /// bucket of the Prometheus exposition. Values landing here are never
    /// silently folded into the top finite bucket: percentile estimation
    /// reports the observed maximum for ranks that fall in this bucket,
    /// and the exposition surfaces the count explicitly.
    pub fn overflow_count(&self) -> u64 {
        self.buckets[self.bounds.len()].load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Smallest observed value (`0.0` when empty).
    pub fn min(&self) -> f64 {
        let v = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }

    /// Largest observed value (`0.0` when empty).
    pub fn max(&self) -> f64 {
        let v = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) estimated from the buckets:
    /// the rank's bucket is located via cumulative counts and the value
    /// interpolated linearly between the bucket's bounds, clamped to the
    /// observed min/max. Returns `0.0` for an empty histogram.
    pub fn percentile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if cum + c >= rank {
                if i == self.bounds.len() {
                    // Overflow bucket: no upper bound, report the max.
                    return self.max();
                }
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                let frac = (rank - cum) as f64 / c as f64;
                let est = lower + (upper - lower) * frac;
                return est.clamp(self.min(), self.max());
            }
            cum += c;
        }
        self.max()
    }
}

/// Applies `f` to an atomically-stored `f64` via a CAS loop.
fn update_float(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

enum Metric {
    Counter(Arc<AtomicU64>),
    /// Gauge value as `f64` bits.
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Histogram>),
}

/// A name-keyed metric registry. Lookup takes a short-held mutex; the
/// returned atomics are then updated lock-free, so hot paths that batch
/// their adds (one `counter_add` per corpus/epoch, not per token) see
/// negligible contention.
pub struct Registry {
    metrics: Mutex<HashMap<String, Metric>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            metrics: Mutex::new(HashMap::new()),
        }
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let cell = {
            let mut m = self.metrics.lock().expect("registry poisoned");
            match m
                .entry(name.to_string())
                .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))))
            {
                Metric::Counter(c) => Arc::clone(c),
                _ => panic!("metric {name} is not a counter"),
            }
        };
        cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value of counter `name` (`0` when absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        let m = self.metrics.lock().expect("registry poisoned");
        match m.get(name) {
            Some(Metric::Counter(c)) => c.load(Ordering::Relaxed),
            _ => 0,
        }
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        let cell = {
            let mut m = self.metrics.lock().expect("registry poisoned");
            match m
                .entry(name.to_string())
                .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))))
            {
                Metric::Gauge(g) => Arc::clone(g),
                _ => panic!("metric {name} is not a gauge"),
            }
        };
        cell.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Records `value` into the histogram `name` (created with
    /// [`Histogram::default_bounds`] on first use).
    pub fn observe(&self, name: &str, value: f64) {
        let hist = self.histogram(name);
        hist.observe(value);
    }

    /// The histogram `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m.entry(name.to_string()).or_insert_with(|| {
            Metric::Histogram(Arc::new(Histogram::new(Histogram::default_bounds())))
        }) {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name} is not a histogram"),
        }
    }

    /// Renders every metric in Prometheus text exposition style, sorted
    /// by name for deterministic output. Histograms render in the native
    /// Prometheus histogram format — cumulative `_bucket{le="…"}` samples
    /// ending in the explicit `le="+Inf"` overflow bucket, plus `_sum`
    /// and `_count` — so observations past the top finite bound are
    /// visible instead of silently folded into it. To keep the default
    /// 30-bound decade series readable, all-zero leading buckets and
    /// saturated trailing buckets are elided (one zero bucket is kept
    /// before the first occupied one so consumers can interpolate);
    /// `+Inf` is always emitted.
    pub fn render_prometheus(&self) -> String {
        let m = self.metrics.lock().expect("registry poisoned");
        let mut names: Vec<&String> = m.keys().collect();
        names.sort();
        let mut out = String::new();
        let mut typed: Vec<String> = Vec::new();
        for name in names {
            let (family, labels) = split_labels(name);
            if !typed.iter().any(|f| f == family) {
                let kind = match &m[name.as_str()] {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {family} {kind}\n"));
                typed.push(family.to_string());
            }
            match &m[name.as_str()] {
                Metric::Counter(c) => {
                    out.push_str(&format!("{name} {}\n", c.load(Ordering::Relaxed)));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "{name} {}\n",
                        fmt_f64(f64::from_bits(g.load(Ordering::Relaxed)))
                    ));
                }
                Metric::Histogram(h) => {
                    render_histogram(family, labels, h, &mut out);
                }
            }
        }
        out
    }
}

/// One histogram in Prometheus text format: elided cumulative buckets,
/// the mandatory `+Inf` bucket, `_sum`, and `_count`.
fn render_histogram(family: &str, labels: Option<&str>, h: &Histogram, out: &mut String) {
    let counts = h.bucket_counts();
    let total: u64 = counts.iter().sum();
    let bounds = h.bounds();
    // Cumulative counts over the finite bounds only; the +Inf line uses
    // the grand total.
    let mut cum = 0u64;
    let cumulative: Vec<u64> = bounds
        .iter()
        .enumerate()
        .map(|(i, _)| {
            cum += counts[i];
            cum
        })
        .collect();
    let first_occupied = cumulative.iter().position(|&c| c > 0);
    let first_saturated = cumulative
        .iter()
        .position(|&c| c == total)
        .unwrap_or(bounds.len());
    if let Some(first) = first_occupied {
        let lo = first.saturating_sub(1);
        let hi = first_saturated.min(bounds.len() - 1);
        for i in lo..=hi {
            let sample = bucket_sample(family, labels, &fmt_f64(bounds[i]));
            out.push_str(&format!("{sample} {}\n", cumulative[i]));
        }
    }
    out.push_str(&format!(
        "{} {total}\n",
        bucket_sample(family, labels, "+Inf")
    ));
    let suffix = |s: &str| match labels {
        Some(l) => format!("{family}{s}{{{l}}}"),
        None => format!("{family}{s}"),
    };
    out.push_str(&format!("{} {}\n", suffix("_sum"), fmt_f64(h.sum())));
    out.push_str(&format!("{} {}\n", suffix("_count"), h.count()));
}

/// Splits `name{k="v"}` into `(family, Some(inner labels))`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(i) => (&name[..i], Some(name[i + 1..].trim_end_matches('}'))),
        None => (name, None),
    }
}

/// One `family_bucket{…,le="<le>"}` sample name, merging any inline
/// labels the metric was registered with.
fn bucket_sample(family: &str, labels: Option<&str>, le: &str) -> String {
    match labels {
        Some(l) if !l.is_empty() => format!("{family}_bucket{{{l},le=\"{le}\"}}"),
        _ => format!("{family}_bucket{{le=\"{le}\"}}"),
    }
}

/// Formats a float the way Prometheus expects: plain decimal, no
/// exponent for the magnitudes we emit.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_places_values_by_upper_bound() {
        let h = Histogram::new(vec![1.0, 2.0, 5.0]);
        for v in [0.5, 1.0, 1.5, 2.0, 3.0, 100.0] {
            h.observe(v);
        }
        let counts: Vec<u64> = h
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // <=1: {0.5, 1.0}; <=2: {1.5, 2.0}; <=5: {3.0}; overflow: {100.0}
        assert_eq!(counts, vec![2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert!((h.sum() - 108.0).abs() < 1e-9);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 100.0);
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        let h = Histogram::new(vec![10.0, 20.0, 30.0]);
        // 10 values in (0,10], 10 in (10,20].
        for i in 1..=10 {
            h.observe(i as f64);
            h.observe(10.0 + i as f64);
        }
        // p50: rank 10 of 20 -> last value of bucket 0 -> upper bound 10.
        assert!((h.percentile(0.5) - 10.0).abs() < 1e-9);
        // p90: rank 18 of 20 -> 8/10 into bucket (10,20] -> 18.
        assert!((h.percentile(0.9) - 18.0).abs() < 1e-9);
        // p99: rank 20 -> bucket upper bound 20.
        assert!((h.percentile(0.99) - 20.0).abs() < 1e-9);
        // Monotone.
        assert!(h.percentile(0.5) <= h.percentile(0.9));
        assert!(h.percentile(0.9) <= h.percentile(0.99));
    }

    #[test]
    fn percentile_edge_cases() {
        let h = Histogram::new(vec![1.0, 10.0]);
        assert_eq!(h.percentile(0.5), 0.0, "empty histogram");
        h.observe(4.0);
        // Single value: every quantile is clamped to the one observation.
        assert_eq!(h.percentile(0.0), 4.0);
        assert_eq!(h.percentile(0.5), 4.0);
        assert_eq!(h.percentile(1.0), 4.0);
        // Overflow values report the observed max.
        h.observe(500.0);
        assert_eq!(h.percentile(0.99), 500.0);
    }

    #[test]
    fn uniform_data_percentiles_are_plausible() {
        let h = Histogram::new(Histogram::default_bounds());
        for i in 1..=1000 {
            h.observe(i as f64 / 10.0); // 0.1 .. 100.0
        }
        let p50 = h.percentile(0.5);
        let p90 = h.percentile(0.9);
        let p99 = h.percentile(0.99);
        assert!((40.0..=60.0).contains(&p50), "p50 {p50}");
        assert!((80.0..=100.0).contains(&p90), "p90 {p90}");
        assert!((90.0..=100.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn default_bounds_are_ascending() {
        let b = Histogram::default_bounds();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(b.first().copied(), Some(0.001));
        assert_eq!(b.last().copied(), Some(5e6));
    }

    #[test]
    fn registry_counter_and_gauge_roundtrip() {
        let r = Registry::new();
        r.counter_add("c_total", 3);
        r.counter_add("c_total", 4);
        assert_eq!(r.counter_value("c_total"), 7);
        assert_eq!(r.counter_value("missing"), 0);
        r.gauge_set("g", 2.5);
        r.gauge_set("g", 1.5);
        let prom = r.render_prometheus();
        assert!(prom.contains("# TYPE c_total counter"));
        assert!(prom.contains("c_total 7"));
        assert!(prom.contains("# TYPE g gauge"));
        assert!(prom.contains("g 1.5"));
    }

    #[test]
    fn prometheus_histogram_renders_cumulative_buckets() {
        let r = Registry::new();
        r.observe("lat_ms", 5.0);
        r.observe("lat_ms", 15.0);
        let prom = r.render_prometheus();
        assert!(prom.contains("# TYPE lat_ms histogram"), "{prom}");
        // Default 1-2-5 bounds: 5.0 lands in le="5", 15.0 in le="20".
        assert!(prom.contains("lat_ms_bucket{le=\"5\"} 1"), "{prom}");
        assert!(prom.contains("lat_ms_bucket{le=\"20\"} 2"), "{prom}");
        assert!(prom.contains("lat_ms_bucket{le=\"+Inf\"} 2"), "{prom}");
        assert!(prom.contains("lat_ms_sum 20"), "{prom}");
        assert!(prom.contains("lat_ms_count 2"), "{prom}");
        // Elision: the saturated tail is cut, so the biggest default
        // bound never appears for in-range data.
        assert!(!prom.contains("le=\"5000000\""), "{prom}");
    }

    #[test]
    fn overflow_observations_surface_in_inf_bucket() {
        let h = Histogram::new(vec![1.0, 10.0]);
        h.observe(0.5);
        h.observe(1e9); // past every finite bound
        assert_eq!(h.overflow_count(), 1);
        assert_eq!(h.bucket_counts(), vec![1, 0, 1]);
        // p99 reports the observed max, not the top finite bound.
        assert_eq!(h.percentile(0.99), 1e9);
        let r = Registry::new();
        r.observe("spill", 0.5);
        r.observe("spill", 1e9);
        let prom = r.render_prometheus();
        // The finite tail is saturated at 1 of 2; +Inf carries the rest.
        assert!(prom.contains("spill_bucket{le=\"10\"} 1"), "{prom}");
        assert!(prom.contains("spill_bucket{le=\"+Inf\"} 2"), "{prom}");
        assert!(prom.contains("spill_count 2"), "{prom}");
    }

    #[test]
    fn empty_histogram_still_exposes_inf_bucket() {
        let r = Registry::new();
        let _ = r.histogram("idle_ms");
        let prom = r.render_prometheus();
        assert!(prom.contains("idle_ms_bucket{le=\"+Inf\"} 0"), "{prom}");
        assert!(prom.contains("idle_ms_count 0"), "{prom}");
    }

    #[test]
    fn inline_labels_merge_with_bucket_labels() {
        let r = Registry::new();
        r.counter_add("hits_total{cache=\"phrases\"}", 2);
        r.observe("stage_ms{stage=\"train\"}", 7.5);
        let prom = r.render_prometheus();
        assert!(prom.contains("# TYPE hits_total counter"), "{prom}");
        assert!(prom.contains("hits_total{cache=\"phrases\"} 2"), "{prom}");
        assert!(
            prom.contains("stage_ms_bucket{stage=\"train\",le=\"10\"} 1"),
            "{prom}"
        );
        assert!(
            prom.contains("stage_ms_bucket{stage=\"train\",le=\"+Inf\"} 1"),
            "{prom}"
        );
        assert!(prom.contains("stage_ms_sum{stage=\"train\"} 7.5"), "{prom}");
        assert!(prom.contains("stage_ms_count{stage=\"train\"} 1"), "{prom}");
    }

    #[test]
    fn concurrent_observations_are_exact() {
        let h = Histogram::new(Histogram::default_bounds());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1000 {
                        h.observe(1.0 + (i % 10) as f64);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        let expected: f64 = 4.0 * (0..1000).map(|i| 1.0 + (i % 10) as f64).sum::<f64>();
        assert!((h.sum() - expected).abs() < 1e-6);
    }
}
