//! The JSONL event sink: the event model and its hand-rolled JSON
//! serialization (this crate is dependency-free, so no serde).
//!
//! One event is one JSON object on one line:
//!
//! ```json
//! {"type":"span","path":"cell/train","name":"train","thread":3,"start_us":120,"dur_us":4500,"attrs":{"domain":"Earnings"}}
//! {"type":"log","level":"info","msg":"wrote results.json","ts_us":99,"thread":0}
//! ```

use crate::logger::Level;
use crate::span::SpanRecord;

/// An entry in the event log.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A closed span.
    Span(SpanRecord),
    /// A log line that passed through the logger.
    Log {
        /// Severity.
        level: Level,
        /// The formatted message.
        msg: String,
        /// Microseconds since the collector's epoch.
        ts_us: u64,
        /// Dense id of the logging thread.
        thread: u64,
    },
}

/// Serializes one event as a JSON object (no trailing newline).
pub fn to_json_line(event: &Event, out: &mut String) {
    match event {
        Event::Span(r) => {
            out.push_str("{\"type\":\"span\",\"path\":");
            push_json_str(&r.path, out);
            out.push_str(",\"name\":");
            push_json_str(r.name, out);
            out.push_str(&format!(
                ",\"thread\":{},\"start_us\":{},\"dur_us\":{}",
                r.thread, r.start_us, r.dur_us
            ));
            if !r.attrs.is_empty() {
                out.push_str(",\"attrs\":{");
                for (i, (k, v)) in r.attrs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_str(k, out);
                    out.push(':');
                    push_json_str(v, out);
                }
                out.push('}');
            }
            out.push('}');
        }
        Event::Log {
            level,
            msg,
            ts_us,
            thread,
        } => {
            out.push_str("{\"type\":\"log\",\"level\":");
            push_json_str(level.name(), out);
            out.push_str(",\"msg\":");
            push_json_str(msg, out);
            out.push_str(&format!(",\"ts_us\":{ts_us},\"thread\":{thread}}}"));
        }
    }
}

/// Appends `s` as a JSON string literal, escaping quotes, backslashes,
/// and control characters.
pub(crate) fn push_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(e: &Event) -> String {
        let mut s = String::new();
        to_json_line(e, &mut s);
        s
    }

    #[test]
    fn span_event_serializes_with_attrs() {
        let e = Event::Span(SpanRecord {
            path: "cell/train".into(),
            name: "train",
            thread: 3,
            start_us: 120,
            dur_us: 4500,
            attrs: vec![
                ("domain", "Earnings".to_string()),
                ("size", "50".to_string()),
            ],
        });
        assert_eq!(
            line(&e),
            r#"{"type":"span","path":"cell/train","name":"train","thread":3,"start_us":120,"dur_us":4500,"attrs":{"domain":"Earnings","size":"50"}}"#
        );
    }

    #[test]
    fn span_event_omits_empty_attrs() {
        let e = Event::Span(SpanRecord {
            path: "a".into(),
            name: "a",
            thread: 0,
            start_us: 0,
            dur_us: 1,
            attrs: Vec::new(),
        });
        assert!(!line(&e).contains("attrs"));
    }

    #[test]
    fn log_event_escapes_specials() {
        let e = Event::Log {
            level: Level::Warn,
            msg: "path \"C:\\tmp\"\nnext\u{1}".into(),
            ts_us: 7,
            thread: 1,
        };
        assert_eq!(
            line(&e),
            r#"{"type":"log","level":"warn","msg":"path \"C:\\tmp\"\nnext\u0001","ts_us":7,"thread":1}"#
        );
    }
}
