//! Trace exporters beyond the native JSONL: Chrome trace-event JSON
//! (loadable in Perfetto / `chrome://tracing`) and collapsed-stack
//! flamegraph format.
//!
//! The Chrome export puts each recording thread on its own track,
//! labeled with its OS thread name (`fieldswap-pool-3`,
//! `fieldswap-grid-0`, …), so the worker-pool utilization from the
//! parallel grid/training is directly visible on the timeline. Spans
//! become `"X"` (complete) events, log lines become `"i"` (instant)
//! events.
//!
//! The collapsed-stack export writes one `path;seg;seg self_us` line
//! per aggregated span node — the input format of the classic
//! `flamegraph.pl` and of most modern flamegraph viewers.

use crate::sink::{push_json_str, Event};
use crate::span::{aggregate_spans, thread_names, SpanRecord};

/// Renders events as a Chrome trace-event JSON document (the
/// `{"traceEvents":[...]}` object form). Timestamps and durations are
/// microseconds since the collector's epoch, which is what the
/// `ts`/`dur` fields expect.
pub fn render_chrome_trace(events: &[Event]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push_sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push_str("\n  ");
    };
    // Metadata first: name each thread's track. Only threads that
    // actually recorded events have entries.
    for (tid, name) in thread_names() {
        push_sep(&mut out);
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":"
        ));
        push_json_str(&name, &mut out);
        out.push_str("}}");
    }
    for e in events {
        push_sep(&mut out);
        match e {
            Event::Span(r) => push_complete_event(r, &mut out),
            Event::Log {
                level,
                msg,
                ts_us,
                thread,
            } => {
                out.push_str("{\"name\":");
                push_json_str(level.name(), &mut out);
                out.push_str(&format!(
                    ",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{thread},\"ts\":{ts_us},\"args\":{{\"msg\":"
                ));
                push_json_str(msg, &mut out);
                out.push_str("}}");
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

fn push_complete_event(r: &SpanRecord, out: &mut String) {
    out.push_str("{\"name\":");
    push_json_str(r.name, out);
    out.push_str(",\"cat\":");
    // Category = the parent path, so Perfetto's filter box can slice by
    // subtree ("cell", "cell/train", ...).
    let parent = r.path.rfind('/').map(|p| &r.path[..p]).unwrap_or("root");
    push_json_str(parent, out);
    out.push_str(&format!(
        ",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}",
        r.thread, r.start_us, r.dur_us
    ));
    if !r.attrs.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in r.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(k, out);
            out.push(':');
            push_json_str(v, out);
        }
        out.push('}');
    }
    out.push('}');
}

/// Renders the aggregated span tree in collapsed-stack flamegraph
/// format: one `a;b;c self_us` line per path, weights in microseconds
/// of *self* time so the flame widths sum correctly.
pub fn render_collapsed(events: &[Event]) -> String {
    let records: Vec<&SpanRecord> = events
        .iter()
        .filter_map(|e| match e {
            Event::Span(r) => Some(r),
            _ => None,
        })
        .collect();
    let mut out = String::new();
    for node in aggregate_spans(records.into_iter()) {
        let self_us = node.self_us();
        if self_us == 0 {
            continue;
        }
        out.push_str(&node.path.replace('/', ";"));
        out.push_str(&format!(" {self_us}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logger::Level;
    use crate::Collector;

    fn span(path: &str, name: &'static str, thread: u64, start: u64, dur: u64) -> Event {
        Event::Span(SpanRecord {
            path: path.to_string(),
            name,
            thread,
            start_us: start,
            dur_us: dur,
            attrs: Vec::new(),
        })
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let events = [
            span("cell", "cell", 0, 0, 100),
            span("cell/train", "train", 1, 10, 60),
            Event::Log {
                level: Level::Info,
                msg: "note \"quoted\"".into(),
                ts_us: 42,
                thread: 0,
            },
        ];
        let doc = render_chrome_trace(&events);
        assert!(doc.starts_with("{\"traceEvents\":["), "{doc}");
        assert!(doc.trim_end().ends_with("]}"), "{doc}");
        assert!(
            doc.contains("\"name\":\"train\",\"cat\":\"cell\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":10,\"dur\":60"),
            "{doc}"
        );
        assert!(doc.contains("\"ph\":\"i\""), "{doc}");
        assert!(doc.contains(r#"note \"quoted\""#), "{doc}");
        // Balanced braces/brackets: a cheap structural sanity check for
        // the hand-rolled serializer.
        let open = doc.matches('{').count();
        let close = doc.matches('}').count();
        assert_eq!(open, close, "{doc}");
    }

    #[test]
    fn chrome_trace_names_recording_threads() {
        let c = Collector::new();
        c.enable_tracing();
        std::thread::scope(|s| {
            std::thread::Builder::new()
                .name("export-test-worker".into())
                .spawn_scoped(s, || drop(c.span("w")))
                .unwrap();
        });
        let doc = render_chrome_trace(&c.events());
        assert!(doc.contains("\"ph\":\"M\""), "{doc}");
        assert!(doc.contains("export-test-worker"), "{doc}");
    }

    #[test]
    fn collapsed_stacks_use_self_time() {
        let events = [
            span("cell", "cell", 0, 0, 100),
            span("cell/train", "train", 0, 10, 60),
            span("cell/eval", "eval", 0, 70, 40),
        ];
        let text = render_collapsed(&events);
        // cell self = 100 - (60 + 40) = 0 -> elided; children keep full
        // durations.
        assert!(!text.contains("cell 0"), "{text}");
        assert!(text.contains("cell;train 60"), "{text}");
        assert!(text.contains("cell;eval 40"), "{text}");
    }

    #[test]
    fn empty_event_lists_render_cleanly() {
        assert_eq!(render_collapsed(&[]), "");
        let doc = render_chrome_trace(&[]);
        assert!(doc.contains("traceEvents"), "{doc}");
    }
}
